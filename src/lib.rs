//! # ode — a Rust reproduction of the Ode active database
//!
//! This workspace reimplements *The Ode Active Database: Trigger Semantics
//! and Implementation* (Lieuwen, Gehani, Arlein; ICDE 1996): an object
//! database whose **triggers** pair *composite events* — recognised by
//! finite state machines compiled from a regular-expression-like event
//! algebra — with actions, under the full set of ECA coupling modes.
//!
//! The facade re-exports the three layers:
//!
//! * [`storage`] (`ode-storage`) — the EOS-like disk engine and Dali-like
//!   main-memory engine: slotted pages, buffer pool, WAL + recovery,
//!   strict 2PL with deadlock detection, transactions with commit
//!   dependencies, and a persistent hash index.
//! * [`events`] (`ode-events`) — basic events, the run-time `eventRep`
//!   registry of globally unique event integers, the event-expression
//!   parser, and the NFA→DFA compiler with mask states (the paper's
//!   Figure 1 machine compiles exactly).
//! * [`core`] (`ode-core`) — the object manager and trigger run-time:
//!   classes, persistent objects and pointers, wrapper-function event
//!   posting, trigger activation/deactivation, coupling modes,
//!   transaction events, plus the paper's future-work extensions (local
//!   rules, timed triggers, inter-object triggers).
//!
//! A fourth crate, [`obs`] (`ode-obs`), threads a lock-free metrics
//! registry and optional tracing hooks through all three:
//! `Database::stats()` snapshots every engine counter (lock waits, WAL
//! fsyncs, FSM transitions, firings by coupling mode, …) and
//! `MetricsSnapshot::render_prometheus()` formats them for scraping.
//!
//! ## Quickstart
//!
//! ```
//! use ode::prelude::*;
//! use bytes::BytesMut;
//!
//! #[derive(Debug, Clone)]
//! struct Thermometer { celsius: f32 }
//!
//! impl Encode for Thermometer {
//!     fn encode(&self, buf: &mut BytesMut) { self.celsius.encode(buf); }
//! }
//! impl Decode for Thermometer {
//!     fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
//!         Ok(Thermometer { celsius: f32::decode(buf)? })
//!     }
//! }
//! impl OdeObject for Thermometer {
//!     const CLASS: &'static str = "Thermometer";
//! }
//!
//! let db = Database::volatile();
//! let class = ClassBuilder::new("Thermometer")
//!     .after_event("SetTemp")
//!     .mask("TooHot", |ctx| {
//!         let t: Thermometer = ctx.object()?;
//!         Ok(t.celsius > 100.0)
//!     })
//!     .trigger("Alarm", "after SetTemp & TooHot()",
//!              CouplingMode::Immediate, Perpetual::Yes,
//!              |ctx| Err(ctx.tabort("too hot")))
//!     .build(db.registry())
//!     .unwrap();
//! db.register_class(&class).unwrap();
//!
//! let sensor = db.with_txn(|txn| {
//!     let s = db.pnew(txn, &Thermometer { celsius: 20.0 })?;
//!     db.activate(txn, s, "Alarm", &())?;
//!     Ok(s)
//! }).unwrap();
//!
//! // Fine:
//! db.with_txn(|txn| db.invoke(txn, sensor, "SetTemp",
//!     |t: &mut Thermometer| { t.celsius = 90.0; Ok(()) })).unwrap();
//! // Fires the alarm, aborting the transaction:
//! let err = db.with_txn(|txn| db.invoke(txn, sensor, "SetTemp",
//!     |t: &mut Thermometer| { t.celsius = 120.0; Ok(()) })).unwrap_err();
//! assert!(err.is_abort());
//! ```

pub use ode_core as core;
pub use ode_events as events;
pub use ode_obs as obs;
pub use ode_storage as storage;

/// The commonly needed names in one import.
pub mod prelude {
    pub use ode_core::{
        BasicEvent, ClassBuilder, CouplingMode, Database, Decode, Encode, EngineKind,
        InterClassBuilder, MonitoredClassBuilder, MonitoredSpace, OdeClass, OdeError, OdeObject,
        Perpetual, PersistentPtr, StorageOptions, TriggerCtx, TriggerId, TxnId,
    };
    pub use ode_obs::{Metrics, MetricsSnapshot, TraceEvent, TraceSink};
}

pub use prelude::*;
