//! Snapshot isolation over *armed triggers*: randomized reader/writer
//! interleavings (including deliberate and deadlock aborts) must never
//! expose a torn trigger statenum or a dirty read to a read-only
//! transaction.
//!
//! The writers maintain two invariants over every *committed* state:
//!
//! * the two counters are updated together, so `left == right` always;
//! * each committed posting cycle runs the `Watch` FSM all the way around
//!   (`Peek` arms it, `Seal` fires it), so the persistent `statenum` is
//!   always back at the perpetual machine's rest position — never the
//!   mid-cycle armed state.
//!
//! A snapshot reader observing `left != right`, an armed statenum, or a
//! value that changes between two reads of the same transaction has seen
//! an uncommitted or torn intermediate — exactly what MVCC must rule out.
//! Run at shard count 1 (the old single-mutex concurrency core) and 8.

use bytes::BytesMut;
use ode::core::{ClassBuilder, OdeError};
use ode::prelude::*;
use ode::storage::StorageOptions;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Barrier};

#[derive(Debug, Clone)]
struct Meter {
    value: i64,
}
impl Encode for Meter {
    fn encode(&self, buf: &mut BytesMut) {
        self.value.encode(buf);
    }
}
impl Decode for Meter {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Meter {
            value: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Meter {
    const CLASS: &'static str = "Meter";
}

/// Tiny deterministic PRNG so the interleavings vary without a rand dep.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn meter_class(db: &Database) {
    let td = ClassBuilder::new("Meter")
        .after_event("Peek")
        .user_event("Seal")
        .trigger(
            "Watch",
            "after Peek, Seal",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
}

fn run_interleavings(shards: usize) {
    let db = Arc::new(Database::volatile_with(StorageOptions {
        shards,
        ..StorageOptions::memory()
    }));
    meter_class(&db);
    let (meter, left, right, watch) = db
        .with_txn(|txn| {
            let m = db.pnew(txn, &Meter { value: 0 })?;
            let l = db.pnew(txn, &Meter { value: 0 })?;
            let r = db.pnew(txn, &Meter { value: 0 })?;
            let id = db.activate(txn, m, "Watch", &())?;
            Ok((m, l, r, id))
        })
        .unwrap();

    // One committed warm-up cycle pins down the FSM position every
    // committed transaction returns to: the perpetual machine rests at
    // its accept state, distinct from the mid-cycle armed state that a
    // torn or dirty read would expose.
    db.with_txn(|txn| {
        db.invoke(txn, meter, "Peek", |_m: &mut Meter| Ok(()))?;
        db.post_user_event(txn, meter, "Seal")
    })
    .unwrap();
    let cycle_state = db
        .with_read_txn(|txn| db.trigger_statenum(txn, watch))
        .unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(8));
    let commits = Arc::new(AtomicU32::new(0));

    // 4 writer threads: full Peek+Seal trigger cycle plus a paired
    // counter bump, with randomized deliberate aborts at both torn
    // points (after the arm, after the first counter write).
    let writers: Vec<_> = (0..4u64)
        .map(|w| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            let commits = Arc::clone(&commits);
            std::thread::spawn(move || {
                let mut rng = Lcg(0x9e3779b97f4a7c15 ^ w);
                barrier.wait();
                for _ in 0..120 {
                    let roll = rng.next() % 8;
                    let result = db.with_txn(|txn| {
                        db.invoke(txn, meter, "Peek", |_m: &mut Meter| Ok(()))?;
                        if roll == 0 {
                            // Abort with the FSM armed mid-cycle.
                            return Err(OdeError::Action("armed abort".into()));
                        }
                        db.post_user_event(txn, meter, "Seal")?;
                        db.update_with(txn, left, |m: &mut Meter| m.value += 1)?;
                        if roll == 1 {
                            // Abort between the paired counter writes.
                            return Err(OdeError::Action("torn abort".into()));
                        }
                        db.update_with(txn, right, |m: &mut Meter| m.value += 1)?;
                        Ok(())
                    });
                    match result {
                        Ok(()) => {
                            commits.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            // Deliberate aborts and deadlock victims only.
                            assert!(
                                e.is_abort() || matches!(e, OdeError::Action(_)),
                                "unexpected writer failure: {e}"
                            );
                        }
                    }
                }
            })
        })
        .collect();

    // 4 reader threads: every snapshot must be committed-consistent.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                barrier.wait();
                let mut checks = 0u32;
                while !done.load(Ordering::Acquire) {
                    let (l, r, statenum, l_again) = db
                        .with_read_txn(|txn| {
                            let l = db.read::<Meter>(txn, left)?.value;
                            let r = db.read::<Meter>(txn, right)?.value;
                            let statenum = db.trigger_statenum(txn, watch)?;
                            let l_again = db.read::<Meter>(txn, left)?.value;
                            Ok((l, r, statenum, l_again))
                        })
                        .unwrap();
                    assert_eq!(l, r, "torn counter pair leaked to a snapshot");
                    assert_eq!(statenum, cycle_state, "mid-cycle trigger statenum leaked");
                    assert_eq!(l, l_again, "snapshot read was not repeatable");
                    checks += 1;
                    std::thread::yield_now();
                }
                checks
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }

    // Final state: the counters equal the number of committed cycles and
    // a fresh snapshot agrees with a locking read.
    let committed = commits.load(Ordering::SeqCst) as i64;
    let (l, r, statenum) = db
        .with_read_txn(|txn| {
            Ok((
                db.read::<Meter>(txn, left)?.value,
                db.read::<Meter>(txn, right)?.value,
                db.trigger_statenum(txn, watch)?,
            ))
        })
        .unwrap();
    assert_eq!(l, committed);
    assert_eq!(r, committed);
    assert_eq!(statenum, cycle_state);
    let l_locked = db
        .with_txn(|txn| Ok(db.read::<Meter>(txn, left)?.value))
        .unwrap();
    assert_eq!(l_locked, committed);
    // Quiesced: the version store must have drained.
    assert_eq!(db.storage().version_stats().entries, 0);
}

#[test]
fn snapshots_never_tear_trigger_state_single_shard() {
    run_interleavings(1);
}

#[test]
fn snapshots_never_tear_trigger_state_eight_shards() {
    run_interleavings(8);
}
