//! Golden test: malformed DDL produces stable, byte-accurate error
//! offsets.
//!
//! Each statement below is executed against a fresh session holding the
//! Figure 1 `CredCard` class; the error (offset plus message, with a
//! caret line pointing into the statement) is rendered and compared to
//! `tests/golden/ddl_errors.txt`. Regenerate with
//! `BLESS=1 cargo test --test ddl_golden`.

use ode_core::Engine;

const MALFORMED: &[&str] = &[
    // Statement-level syntax.
    "CREATE TRIGGERS T ON CredCard WHEN after Buy COUPLING end DO ABORT",
    "CREATE CLASS",
    "MAKE ME A SANDWICH",
    "CREATE CLASS Bad { FIELD x; FIELD x; }",
    "CREATE CLASS Bad { KNOB x; }",
    "GET 3:0:0",
    "NEW CredCard SET curr_bal",
    "BEGIN READ",
    // Event-expression errors are rebased onto the statement text.
    "CREATE TRIGGER T ON CredCard WHEN after Typo COUPLING end DO ABORT 'x'",
    "CREATE TRIGGER T ON CredCard WHEN after Buy & NoMask() COUPLING end DO ABORT 'x'",
    "CREATE TRIGGER T ON CredCard WHEN after Buy COUPLING sideways DO ABORT 'x'",
    "CREATE TRIGGER T ON CredCard WHEN after Buy DO ABORT 'x'",
    // Expression-language errors carry offsets too.
    "CREATE CLASS Bad { FIELD a; MASK M WHEN missing > 1; }",
    "CREATE CLASS Bad { FIELD a; MASK M WHEN a + 1; }",
    "CREATE TRIGGER T ON CredCard WHEN after Buy COUPLING end DO SET nope = 1",
    // Lexer errors.
    "CREATE DATABASE \u{1F4A3}",
    "POST 1:0 'unterminated",
    // Tracing/introspection statement surface.
    "SHOW EVERYTHING",
    "TRACE MAYBE",
    "TRACE SAMPLE 0",
    "TRACE SAMPLE 2.5",
    "EXPLAIN EXPLAIN SHOW DATABASES",
    "EXPLAIN",
    // Prepared-statement surface (protocol v2).
    "PREPARE",
    "PREPARE p",
    "PREPARE p AS PREPARE q AS BEGIN",
    "PREPARE p AS EXPLAIN BEGIN",
    "EXECUTE p WITH",
    "CREATE CLASS Bad { FIELD a; MASK M WHEN a > $1; }",
    "NEW CredCard SET curr_bal = $1",
];

fn render() -> String {
    let engine = Engine::volatile();
    let mut session = engine.session();
    session.execute("CREATE DATABASE golden").unwrap();
    session.execute("USE golden").unwrap();
    session
        .execute(
            "CREATE CLASS CredCard { \
             FIELD cred_lim = 1000; FIELD curr_bal; \
             EVENT AFTER Buy; EVENT AFTER PayBill; \
             MASK OverLimit WHEN curr_bal > cred_lim; }",
        )
        .unwrap();
    let mut out = String::new();
    for stmt in MALFORMED {
        let err = session
            .execute(stmt)
            .expect_err("malformed statement accepted");
        out.push_str(stmt);
        out.push('\n');
        if let Some(at) = err.at {
            // Caret line pointing at the offending byte.
            for _ in 0..at.min(stmt.len()) {
                out.push(' ');
            }
            out.push_str("^\n");
        }
        out.push_str(&format!("error: {err}\n\n"));
    }
    out
}

#[test]
fn malformed_ddl_errors_match_golden_file() {
    let rendered = render();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/ddl_errors.txt");
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(path).expect("golden file (run with BLESS=1 to create)");
    assert_eq!(
        rendered, expected,
        "DDL error rendering drifted; re-bless with BLESS=1 if intentional"
    );
}
