//! Engine parity: "it is fully source code compatible with disk-based Ode
//! — they even share the same compiler. The two systems also share a great
//! deal of run-time system code" (§5.6). The same trigger scenario must
//! behave identically on the EOS-like disk engine, the Dali-like
//! main-memory engine, and the volatile store — and leave the trigger
//! structures internally consistent.

use bytes::BytesMut;
use ode::core::ClassBuilder;
use ode::prelude::*;
use ode_testutil::TempDir;

#[derive(Debug, Clone, PartialEq)]
struct Meter {
    reading: i64,
    alerts: Vec<String>,
}
impl Encode for Meter {
    fn encode(&self, buf: &mut BytesMut) {
        self.reading.encode(buf);
        self.alerts.encode(buf);
    }
}
impl Decode for Meter {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Meter {
            reading: i64::decode(buf)?,
            alerts: Vec::<String>::decode(buf)?,
        })
    }
}
impl OdeObject for Meter {
    const CLASS: &'static str = "Meter";
}

fn define(db: &Database) {
    let td = ClassBuilder::new("Meter")
        .after_event("Sample")
        .user_event("Reset")
        .mask("High", |ctx| {
            let m: Meter = ctx.object()?;
            Ok(m.reading > 100)
        })
        .trigger(
            // Two consecutive high samples with no Reset between them.
            "Spike",
            "(after Sample & High()), (after Sample & High())",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| ctx.update_object(|m: &mut Meter| m.alerts.push("spike".to_string())),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
}

/// Run the scenario; return the final object state.
fn scenario(db: &Database) -> Meter {
    define(db);
    let meter = db
        .with_txn(|txn| {
            let m = db.pnew(
                txn,
                &Meter {
                    reading: 0,
                    alerts: Vec::new(),
                },
            )?;
            db.activate(txn, m, "Spike", &())?;
            Ok(m)
        })
        .unwrap();
    let sample = |r: i64| {
        db.with_txn(|txn| {
            db.invoke(txn, meter, "Sample", |m: &mut Meter| {
                m.reading = r;
                Ok(())
            })
        })
        .unwrap();
    };
    sample(150); // high
    sample(50); // breaks the pair
    sample(150); // high
    sample(200); // high -> spike #1
    db.with_txn(|txn| db.post_user_event(txn, meter, "Reset"))
        .unwrap();
    sample(300); // high
    sample(300); // high -> spike #2
                 // One aborted high pair that must not count.
    let _ = db
        .with_txn(|txn| {
            db.invoke(txn, meter, "Sample", |m: &mut Meter| {
                m.reading = 999;
                Ok(())
            })?;
            Err::<(), _>(OdeError::tabort("rollback"))
        })
        .unwrap_err();
    sample(10);

    db.with_txn(|txn| {
        let report = db.verify_integrity(txn)?;
        assert!(report.is_healthy(), "integrity: {report:?}");
        db.read(txn, meter)
    })
    .unwrap()
}

#[test]
fn all_engines_agree() {
    let volatile = scenario(&Database::volatile());

    let disk_dir = TempDir::new("parity-disk");
    let disk = scenario(
        &Database::create(
            disk_dir.path(),
            StorageOptions {
                engine: EngineKind::Disk,
                ..StorageOptions::default()
            },
        )
        .unwrap(),
    );

    let mem_dir = TempDir::new("parity-mem");
    let mem = scenario(
        &Database::create(
            mem_dir.path(),
            StorageOptions {
                engine: EngineKind::Memory,
                ..StorageOptions::default()
            },
        )
        .unwrap(),
    );

    assert_eq!(volatile, disk);
    assert_eq!(volatile, mem);
    assert_eq!(volatile.alerts, vec!["spike", "spike"]);
    assert_eq!(volatile.reading, 10);
}
