//! The flight recorder end to end: the golden causal-chain test
//! (ISSUE 4's acceptance criterion) reconstructs one Figure-1
//! `AutoRaiseLimit` firing from `Database::flight_log()` — posted
//! `after Buy` event, `MoreCred()` mask pseudo-event, FSM state numbers
//! before/after, the firing, its coupling-mode system transaction, and
//! the durable commit LSN — and the contention tests pin down the
//! lock-free ring's guarantees under concurrent writers.

use bytes::BytesMut;
use ode::core::ClassBuilder;
use ode::obs::{FlightEvent, FlightRecord, FlightRecorder, Metrics};
use ode::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone, PartialEq)]
struct CredCard {
    cred_lim: f32,
    curr_bal: f32,
}

impl Encode for CredCard {
    fn encode(&self, buf: &mut BytesMut) {
        self.cred_lim.encode(buf);
        self.curr_bal.encode(buf);
    }
}
impl Decode for CredCard {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(CredCard {
            cred_lim: f32::decode(buf)?,
            curr_bal: f32::decode(buf)?,
        })
    }
}
impl OdeObject for CredCard {
    const CLASS: &'static str = "CredCard";
}

/// A minimal Figure-1 world: just `AutoRaiseLimit`, dependent-coupled so
/// its firing spawns a system transaction with a commit dependency.
fn figure_1_world(db: &Database) -> PersistentPtr<CredCard> {
    let td = ClassBuilder::new("CredCard")
        .after_event("PayBill")
        .after_event("Buy")
        .mask("MoreCred", |ctx| {
            let card: CredCard = ctx.object()?;
            Ok(card.curr_bal > 0.8 * card.cred_lim)
        })
        .trigger(
            "AutoRaiseLimit",
            "relative((after Buy & MoreCred()), after PayBill)",
            CouplingMode::Dependent,
            Perpetual::No,
            |ctx| {
                let amount: f32 = ctx.params()?;
                ctx.update_object(|card: &mut CredCard| card.cred_lim += amount)
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    db.with_txn(|txn| {
        let card = db.pnew(
            txn,
            &CredCard {
                cred_lim: 1000.0,
                curr_bal: 0.0,
            },
        )?;
        db.activate(txn, card, "AutoRaiseLimit", &100.0f32)?;
        Ok(card)
    })
    .unwrap()
}

/// Index of the first record at or after `from` matching `pred`.
fn find_from(
    log: &[FlightRecord],
    from: usize,
    pred: impl Fn(&FlightEvent) -> bool,
) -> Option<usize> {
    log[from..]
        .iter()
        .position(|r| pred(&r.event))
        .map(|i| from + i)
}

#[test]
fn golden_causal_chain_for_an_auto_raise_limit_firing() {
    let dir = ode_testutil::TempDir::new("flight-golden");
    let db = Database::create(dir.path(), StorageOptions::default()).unwrap();
    let card = figure_1_world(&db);

    // One billing cycle in one user transaction: the Buy arms the mask
    // path (900 > 80% of 1000), the PayBill completes the `relative`
    // expression; the dependent firing then runs in a system transaction
    // that commits against this transaction's durability.
    let user_txn = db.begin().unwrap();
    db.invoke(user_txn, card, "Buy", |c: &mut CredCard| {
        c.curr_bal += 900.0;
        Ok(())
    })
    .unwrap();
    db.invoke(user_txn, card, "PayBill", |c: &mut CredCard| {
        c.curr_bal -= 900.0;
        Ok(())
    })
    .unwrap();
    db.commit(user_txn).unwrap();

    let log = db.flight_log();

    // 1. The posted `after Buy` basic event.
    let posted = find_from(&log, 0, |e| matches!(e, FlightEvent::EventPosted { .. }))
        .expect("EventPosted in flight log");

    // 2. The real `after Buy` transition out of Figure 1's start state 0
    //    into the mask-pending state 1.
    let buy_adv = find_from(&log, posted, |e| {
        matches!(
            e,
            FlightEvent::FsmAdvanced {
                trigger,
                from_state: 0,
                pseudo: None,
                ..
            } if trigger.as_str() == "AutoRaiseLimit"
        )
    })
    .expect("real Buy advance from state 0");
    let FlightEvent::FsmAdvanced {
        to_state: mask_state,
        ..
    } = log[buy_adv].event
    else {
        unreachable!()
    };
    assert_eq!(mask_state, 1, "Buy lands in the mask-pending state");

    // 3. The MoreCred() mask quiesced as a True pseudo-event into the
    //    armed state 2 (§5.4.5).
    let mask_adv = find_from(&log, buy_adv + 1, |e| {
        matches!(
            e,
            FlightEvent::FsmAdvanced {
                pseudo: Some(true),
                ..
            }
        )
    })
    .expect("True(MoreCred) pseudo-event advance");
    let FlightEvent::FsmAdvanced {
        from_state,
        to_state: armed_state,
        ..
    } = log[mask_adv].event
    else {
        unreachable!()
    };
    assert_eq!(from_state, mask_state, "pseudo-event chains off the Buy");
    assert_eq!(armed_state, 2, "True(MoreCred) arms Figure 1's state 2");

    // 4. The `after PayBill` transition out of the armed state reaches
    //    the accept state and produces the firing.
    let paybill_adv = find_from(&log, mask_adv + 1, |e| {
        matches!(
            e,
            FlightEvent::FsmAdvanced {
                from_state: 2,
                pseudo: None,
                ..
            }
        )
    })
    .expect("PayBill advance out of the armed state");

    // 5. The dependent-coupled firing itself.
    let fired = find_from(&log, paybill_adv + 1, |e| {
        matches!(
            e,
            FlightEvent::TriggerFired { trigger, coupling }
                if trigger.as_str() == "AutoRaiseLimit" && coupling.as_str() == "dependent"
        )
    })
    .expect("dependent TriggerFired");

    // 6. The system transaction it ran in, with the commit dependency on
    //    the detecting user transaction. (The firing is scheduled at
    //    PayBill time but executes inside the system transaction, so
    //    SystemTxnStarted precedes TriggerFired in the log.)
    let stxn_started = find_from(&log, paybill_adv + 1, |e| {
        matches!(
            e,
            FlightEvent::SystemTxnStarted { parent: Some(p), coupling, .. }
                if *p == user_txn.0 && coupling.as_str() == "dependent"
        )
    })
    .expect("dependent SystemTxnStarted with the user txn as parent");
    assert!(
        stxn_started < fired,
        "the firing runs inside the system transaction"
    );
    let FlightEvent::SystemTxnStarted { txn: stxn, .. } = log[stxn_started].event else {
        unreachable!()
    };

    // 7. Both the user transaction and the system transaction became
    //    durable, at increasing LSNs (the system txn's Commit record is
    //    appended after its parent's).
    let user_durable = find_from(
        &log,
        0,
        |e| matches!(e, FlightEvent::CommitDurable { txn, .. } if *txn == user_txn.0),
    )
    .expect("user CommitDurable");
    let stxn_durable = find_from(
        &log,
        0,
        |e| matches!(e, FlightEvent::CommitDurable { txn, .. } if *txn == stxn),
    )
    .expect("system txn CommitDurable");
    let (
        FlightEvent::CommitDurable { lsn: user_lsn, .. },
        FlightEvent::CommitDurable { lsn: stxn_lsn, .. },
    ) = (log[user_durable].event, log[stxn_durable].event)
    else {
        unreachable!()
    };
    assert!(
        user_lsn > 0 && stxn_lsn > user_lsn,
        "{user_lsn} vs {stxn_lsn}"
    );

    // The whole chain is causally ordered in the log, with monotone
    // timestamps and dense sequence numbers.
    let chain = [posted, buy_adv, mask_adv, paybill_adv, stxn_started, fired];
    for pair in chain.windows(2) {
        assert!(pair[0] < pair[1]);
        assert!(log[pair[0]].nanos <= log[pair[1]].nanos);
        assert!(log[pair[0]].seq < log[pair[1]].seq);
    }

    // And the action really ran, dependently, after commit.
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 1100.0);
        Ok(())
    })
    .unwrap();
}

#[test]
fn recorder_can_be_disabled_and_reenabled() {
    let db = Database::volatile();
    let card = figure_1_world(&db);
    db.metrics().set_flight_enabled(false);
    let before = db.flight_log().len();
    db.with_txn(|txn| {
        db.invoke(txn, card, "Buy", |c: &mut CredCard| {
            c.curr_bal += 1.0;
            Ok(())
        })
    })
    .unwrap();
    assert_eq!(db.flight_log().len(), before, "disabled recorder is silent");
    db.metrics().set_flight_enabled(true);
    db.with_txn(|txn| {
        db.invoke(txn, card, "Buy", |c: &mut CredCard| {
            c.curr_bal += 1.0;
            Ok(())
        })
    })
    .unwrap();
    assert!(
        db.flight_log().len() > before,
        "re-enabled recorder records"
    );
}

/// N concurrent writers: after they all finish, the ring holds exactly
/// the most recent `capacity` records — none lost, none torn — and each
/// writer's surviving records keep its own program order (per-writer
/// timestamps and payload counters both increase with the global
/// sequence number, across wraparound).
#[test]
fn contention_never_loses_the_most_recent_window() {
    const WRITERS: u64 = 8;
    const PER_WRITER: u64 = 4_000;
    const CAP: usize = 1024;
    let rec = Arc::new(FlightRecorder::with_capacity(CAP));
    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    // Payload encodes (writer, iteration) so a torn read
                    // would be detectable as an impossible pair.
                    rec.record(FlightEvent::TxnCommit {
                        txn: w * 1_000_000 + i,
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let head = rec.head();
    assert_eq!(head, WRITERS * PER_WRITER);
    let log = rec.snapshot();
    // Quiescent ring: the full window survives — the most recent CAP
    // records are all present, in order, with dense sequence numbers.
    assert_eq!(log.len(), CAP, "no records lost after writers quiesce");
    for (slot, r) in log.iter().enumerate() {
        assert_eq!(r.seq, head - CAP as u64 + slot as u64);
        let (w, i) = match r.event {
            FlightEvent::TxnCommit { txn } => (txn / 1_000_000, txn % 1_000_000),
            ref other => panic!("foreign record {other:?}"),
        };
        assert!(w < WRITERS && i < PER_WRITER, "torn payload: w={w} i={i}");
    }
    // Per-writer program order survives wraparound: for each writer, the
    // iteration counter and the timestamp both increase with seq.
    for w in 0..WRITERS {
        let mine: Vec<&FlightRecord> = log
            .iter()
            .filter(|r| matches!(r.event, FlightEvent::TxnCommit { txn } if txn / 1_000_000 == w))
            .collect();
        for pair in mine.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let (ia, ib) = match (a.event, b.event) {
                (FlightEvent::TxnCommit { txn: ta }, FlightEvent::TxnCommit { txn: tb }) => {
                    (ta % 1_000_000, tb % 1_000_000)
                }
                _ => unreachable!(),
            };
            assert!(ib > ia, "writer {w} out of program order");
            assert!(
                b.nanos >= a.nanos,
                "writer {w} timestamps ran backwards across wraparound"
            );
        }
    }
}

/// Snapshots taken while writers are lapping the ring never surface torn
/// records: every record a concurrent reader sees carries a coherent
/// (writer, iteration) payload and a sequence number inside the live
/// window.
#[test]
fn concurrent_snapshots_are_never_torn() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 20_000;
    const CAP: usize = 64; // tiny ring: constant lapping
    let rec = Arc::new(FlightRecorder::with_capacity(CAP));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || {
                for i in 0..PER_WRITER {
                    rec.record(FlightEvent::TxnCommit {
                        txn: w * 1_000_000 + i,
                    });
                }
            })
        })
        .collect();
    let reader = {
        let rec = Arc::clone(&rec);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                for r in rec.snapshot() {
                    seen += 1;
                    let (w, i) = match r.event {
                        FlightEvent::TxnCommit { txn } => (txn / 1_000_000, txn % 1_000_000),
                        other => panic!("torn/foreign record {other:?}"),
                    };
                    assert!(w < WRITERS, "torn writer id {w}");
                    assert!(i < PER_WRITER, "torn iteration {i}");
                }
            }
            seen
        })
    };
    for h in writers {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Release);
    let seen = reader.join().unwrap();
    assert!(seen > 0, "reader must observe records while lapped");
    // Final quiescent snapshot: full window, dense seqs.
    let log = rec.snapshot();
    assert_eq!(log.len(), CAP);
    for pair in log.windows(2) {
        assert_eq!(pair[1].seq, pair[0].seq + 1);
    }
}

/// `Metrics::emit` feeds the same ring the engine dumps on anomalies.
#[test]
fn emit_and_dump_share_one_ring() {
    let m = Metrics::new();
    m.emit(|| TraceEvent::TxnCommit { txn: 77 });
    m.dump_flight("test anomaly");
    let dumps = m.flight_dumps();
    assert_eq!(dumps.len(), 1);
    assert_eq!(dumps[0].reason, "test anomaly");
    assert!(dumps[0]
        .records
        .iter()
        .any(|r| matches!(r.event, FlightEvent::TxnCommit { txn: 77 })));
}
