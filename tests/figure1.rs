//! Experiment F1: reproduce the paper's **Figure 1** — the extended FSM
//! for the `AutoRaiseLimit` trigger
//! `relative((after Buy & MoreCred()), after PayBill)`.
//!
//! The paper's figure (states 0–3):
//!
//! ```text
//! state 0 (start):  after Buy → 1;  BigBuy || after PayBill → 0
//! state 1 (mask *): evaluates MoreCred(); False → 0; True → 2
//! state 2:          after PayBill → 3;  BigBuy || after Buy → 2
//! state 3 (accept)
//! ```

use ode::events::ast::Alphabet;
use ode::events::dfa::Dfa;
use ode::events::event::{EventId, MaskId, Symbol};
use ode::events::parser::parse;

/// The CredCard alphabet in the paper's eventRep order (§5.2):
/// `CredCardEvents[] = { BigBuy, after PayBill, after Buy }`.
fn cred_card_alphabet() -> Alphabet {
    let mut al = Alphabet::new();
    al.add_event(EventId(0), "BigBuy");
    al.add_event(EventId(1), "after PayBill");
    al.add_event(EventId(2), "after Buy");
    al.add_mask("MoreCred");
    al
}

#[test]
fn figure_1_machine_is_reproduced_exactly() {
    let al = cred_card_alphabet();
    let te = parse("relative((after Buy & MoreCred()), after PayBill)", &al).unwrap();
    let fsm = Dfa::compile(&te, &al);

    let bigbuy = Symbol::Event(EventId(0));
    let paybill = Symbol::Event(EventId(1));
    let buy = Symbol::Event(EventId(2));
    let m = MaskId(0);

    // Print the machine so the bench/test log shows the reproduction.
    println!("{}", fsm.render(&al));

    // Exactly the four states of Figure 1, numbered identically.
    assert_eq!(fsm.len(), 4);
    assert_eq!(fsm.start(), 0);

    // State 0 — start.
    let s0 = &fsm.states()[0];
    assert!(!s0.accept && s0.masks.is_empty());
    assert_eq!(s0.next(buy), Some(1));
    assert_eq!(s0.next(bigbuy), Some(0));
    assert_eq!(s0.next(paybill), Some(0));

    // State 1 — the mask state ("marked with * to indicate that it must
    // evaluate the MoreCred() mask to produce pseudo-events").
    let s1 = &fsm.states()[1];
    assert_eq!(s1.masks, vec![m]);
    assert_eq!(s1.next(Symbol::False(m)), Some(0));
    assert_eq!(s1.next(Symbol::True(m)), Some(2));

    // State 2 — armed; "BigBuy || after Buy" self-loops.
    let s2 = &fsm.states()[2];
    assert!(!s2.accept && s2.masks.is_empty());
    assert_eq!(s2.next(paybill), Some(3));
    assert_eq!(s2.next(bigbuy), Some(2));
    assert_eq!(s2.next(buy), Some(2));

    // State 3 — accept.
    assert!(fsm.states()[3].accept);
}

/// Golden test: the full rendered machine, byte for byte, against a
/// checked-in dump. Any change to the compilation pipeline (subset
/// construction, pruning, mask elimination, minimisation, renumbering)
/// that perturbs the Figure 1 machine shows up as a readable diff in
/// `tests/golden/figure1_auto_raise_limit.txt`.
#[test]
fn figure_1_machine_dump_matches_golden_file() {
    let al = cred_card_alphabet();
    let te = parse("relative((after Buy & MoreCred()), after PayBill)", &al).unwrap();
    let fsm = Dfa::compile(&te, &al);
    let expected = include_str!("golden/figure1_auto_raise_limit.txt");
    assert_eq!(
        fsm.render(&al),
        expected,
        "compiled machine diverged from the checked-in Figure 1 dump"
    );
}

#[test]
fn figure_1_walkthrough_matches_trigger_semantics() {
    let al = cred_card_alphabet();
    let te = parse("relative((after Buy & MoreCred()), after PayBill)", &al).unwrap();
    let fsm = Dfa::compile(&te, &al);

    // Buy with a failing mask returns to the start state.
    let out = fsm.post(0, EventId(2), |_| false);
    assert_eq!(out.state, 0);
    // Buy with MoreCred() true arms the machine.
    let out = fsm.post(0, EventId(2), |_| true);
    assert_eq!(out.state, 2);
    // Any number of other events keeps it armed…
    let out = fsm.post(2, EventId(0), |_| unreachable!("no mask pending"));
    assert_eq!(out.state, 2);
    // …until PayBill accepts.
    let out = fsm.post(2, EventId(1), |_| unreachable!("no mask pending"));
    assert!(out.accepted);
}

#[test]
fn deny_credit_machine_is_three_states() {
    // The paper's other trigger, DenyCredit: after Buy & (currBal>credLim).
    let mut al = cred_card_alphabet();
    al.add_mask("OverLimit");
    let te = parse("after Buy & OverLimit()", &al).unwrap();
    let fsm = Dfa::compile(&te, &al);
    assert_eq!(fsm.len(), 3);
    let m = al.mask_id("OverLimit").unwrap();
    assert_eq!(fsm.states()[1].masks, vec![m]);
    assert!(fsm.states()[2].accept);
}
