//! Experiment E4 (functional half): "triggers turn read access into write
//! access, increasing both the amount of time the transactions spend
//! waiting for locks and the likelihood of deadlock" (§6).
//!
//! Two concurrent transactions that only *read* (via a declared member
//! event) the same object coexist fine without triggers — shared locks are
//! compatible. With an active trigger, each read advances the trigger's
//! FSM, which writes the trigger-state record; the S→X pattern on the
//! shared state collides, producing waits and deadlock victims. The bench
//! `lock_amplification` measures the magnitude; this test pins down the
//! mechanism.

use bytes::BytesMut;
use ode::core::ClassBuilder;
use ode::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};

#[derive(Debug, Clone)]
struct Gauge {
    value: i64,
}
impl Encode for Gauge {
    fn encode(&self, buf: &mut BytesMut) {
        self.value.encode(buf);
    }
}
impl Decode for Gauge {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Gauge {
            value: i64::decode(buf)?,
        })
    }
}
impl OdeObject for Gauge {
    const CLASS: &'static str = "Gauge";
}

fn gauge_class(db: &Database, with_trigger: bool) {
    let mut builder = ClassBuilder::new("Gauge")
        .after_event("Peek")
        .user_event("Seal");
    if with_trigger {
        builder = builder.trigger(
            // The Peek arms the machine, the Seal completes it, so the
            // persistent FSM state toggles on every posting — each one is
            // the §6 "read that becomes a write".
            "Watch",
            "after Peek, Seal",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |_| Ok(()),
        );
    }
    let td = builder.build(db.registry()).unwrap();
    db.register_class(&td).unwrap();
}

fn run_concurrent_peeks(
    with_trigger: bool,
) -> (
    ode::storage::lock::LockStats,
    ode::obs::MetricsSnapshot,
    u32,
) {
    let db = Arc::new(Database::volatile());
    gauge_class(&db, with_trigger);
    let gauge = db
        .with_txn(|txn| {
            let g = db.pnew(txn, &Gauge { value: 0 })?;
            if with_trigger {
                db.activate(txn, g, "Watch", &())?;
            }
            Ok(g)
        })
        .unwrap();

    // Registry first, then the LockStats view: the view is a baseline
    // subtracted from the registry, so rebasing it must see the registry's
    // post-reset (zero) counters.
    db.metrics().reset();
    db.storage().reset_lock_stats();
    let aborts = Arc::new(AtomicU32::new(0));
    let barrier = Arc::new(Barrier::new(4));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            let aborts = Arc::clone(&aborts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..300 {
                    let result = db.with_txn(|txn| {
                        db.invoke(txn, gauge, "Peek", |_g: &mut Gauge| Ok(()))?;
                        if with_trigger {
                            db.post_user_event(txn, gauge, "Seal")?;
                        }
                        Ok(())
                    });
                    if let Err(e) = result {
                        assert!(e.is_abort(), "only deadlock aborts expected: {e}");
                        aborts.fetch_add(1, Ordering::SeqCst);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    (
        db.storage().lock_stats(),
        db.stats(),
        aborts.load(Ordering::SeqCst),
    )
}

#[test]
fn concurrent_readers_without_triggers_never_conflict() {
    let (stats, snap, aborts) = run_concurrent_peeks(false);
    assert_eq!(stats.deadlocks, 0);
    assert_eq!(aborts, 0);
    // Reads are shared: no upgrades needed — in the legacy per-manager
    // stats and in the engine-wide metrics registry alike.
    assert_eq!(stats.upgrades, 0);
    assert_eq!(snap.lock_upgrades, 0);
    assert_eq!(snap.lock_deadlock_victims, 0);
    // The workload still *did* something observable.
    assert!(snap.lock_shared_acquisitions > 0);
    assert!(snap.events_posted > 0);
}

/// The MVCC escape hatch from §6: a *snapshot* reader never enters the
/// lock manager, so armed triggers cannot amplify it into a writer. 16
/// concurrent read-only transactions over the monitored object record
/// zero waits, zero deadlock retries, and zero S→X upgrades — in fact
/// zero lock-manager traffic of any kind.
#[test]
fn snapshot_readers_take_no_locks_even_with_triggers_armed() {
    let db = Arc::new(Database::volatile());
    gauge_class(&db, true);
    let gauge = db
        .with_txn(|txn| {
            let g = db.pnew(txn, &Gauge { value: 7 })?;
            db.activate(txn, g, "Watch", &())?;
            Ok(g)
        })
        .unwrap();

    db.metrics().reset();
    db.storage().reset_lock_stats();
    let barrier = Arc::new(Barrier::new(16));
    let threads: Vec<_> = (0..16)
        .map(|_| {
            let db = Arc::clone(&db);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..200 {
                    // No retry wrapper: snapshot readers cannot deadlock,
                    // so any error here is a real failure.
                    let g = db
                        .with_read_txn(|txn| db.read::<Gauge>(txn, gauge))
                        .unwrap();
                    assert_eq!(g.value, 7);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = db.storage().lock_stats();
    let snap = db.stats();
    // Zero lock-manager traffic: not merely "no conflicts" but no grants
    // at all — the reads were served from the version chains / latched
    // pages, so there was nothing to wait on, upgrade, or deadlock over.
    assert_eq!(
        stats.immediate_grants, 0,
        "readers entered the lock manager"
    );
    assert_eq!(stats.waits, 0);
    assert_eq!(stats.deadlocks, 0);
    assert_eq!(stats.upgrades, 0);
    assert_eq!(snap.lock_shared_acquisitions, 0);
    assert_eq!(snap.lock_upgrades, 0);
    assert_eq!(snap.lock_deadlock_victims, 0);
    assert_eq!(snap.lock_wait_micros.count, 0);
    // The workload really ran, and it ran on the snapshot path.
    assert!(snap.snapshot_reads >= 16 * 200);
}

#[test]
fn triggers_amplify_reads_into_write_conflicts() {
    // Observing a conflict needs two threads inside the same lock window,
    // which a loaded single-core host can fail to schedule in any one
    // round (every thread runs its whole timeslice uncontended), so retry
    // a few rounds before declaring the amplification missing.
    for round in 0.. {
        let (stats, snap, aborts) = run_concurrent_peeks(true);
        // The §6 mechanism itself is deterministic: every posting advances
        // the persistent FSM state, whose read-modify-write is an S→X
        // upgrade.
        assert!(stats.upgrades > 0, "expected S→X upgrades, got {stats:?}");
        assert_eq!(
            snap.lock_upgrades, stats.upgrades,
            "metrics registry and LockStats count the same upgrade sites"
        );
        // Both counters were reset together, so victims agree too.
        assert_eq!(snap.lock_deadlock_victims, stats.deadlocks);
        // The trigger machinery forces writes on behalf of reads: waits
        // and/or deadlock aborts appear.
        if stats.waits > 0 || stats.deadlocks > 0 || aborts > 0 {
            return;
        }
        assert!(
            round < 9,
            "expected lock amplification in 10 rounds, got {stats:?} aborts={aborts}"
        );
    }
}
