//! End-to-end statement tracing: `EXPLAIN`/`SHOW TRACE`/`TRACE` over
//! the session and wire layers, the slow-statement log's counter, the
//! multi-database Prometheus merge, and the `SHOW CLASSES` /
//! `SHOW TRIGGERS` catalog surface.

use ode_core::Engine;
use ode_server::Server;
use ode_storage::StorageOptions;
use ode_testutil::{TempDir, WireClient};
use std::collections::{HashMap, HashSet};

const SCHEMA: &[&str] = &[
    "CREATE CLASS CredCard { \
        FIELD cred_lim = 1000; FIELD curr_bal = 0; FIELD good_hist = 1; \
        EVENT AFTER Buy; EVENT AFTER PayBill; \
        MASK OverLimit WHEN curr_bal > cred_lim; \
        MASK MoreCred WHEN curr_bal > 0.8 * cred_lim AND good_hist == 1; }",
    "CREATE TRIGGER AutoRaiseLimit ON CredCard \
        WHEN relative((after Buy & MoreCred()), after PayBill) \
        COUPLING immediate DO SET cred_lim = cred_lim + PARAM",
    "CREATE TRIGGER SettleDependent ON CredCard PERPETUAL \
        WHEN after PayBill COUPLING dependent DO SET good_hist = 1",
];

/// The acceptance test: a Figure-1 firing driven over the wire, with
/// `EXPLAIN` returning the full causal span tree in one round trip —
/// statement → post → FSM advances → the dependent system transaction
/// → the WAL commit with its LSN (hence a disk-rooted engine).
#[test]
fn explain_over_the_wire_returns_the_causal_span_tree() {
    let dir = TempDir::new("explain-wire");
    let engine = Engine::open(dir.path(), StorageOptions::default()).unwrap();
    let server = Server::start(engine, "127.0.0.1:0", "t").unwrap();
    let mut c = WireClient::connect(&server.addr().to_string(), "t").unwrap();
    c.exec("CREATE DATABASE bank");
    c.exec("USE bank");
    for stmt in SCHEMA {
        c.exec(stmt);
    }
    let card = c.exec("NEW CredCard");
    c.exec(&format!("ACTIVATE AutoRaiseLimit ON {card} WITH 1000"));
    c.exec(&format!("ACTIVATE SettleDependent ON {card}"));

    // Arm the relative trigger (Buy advances AutoRaiseLimit's FSM)…
    let buy = c.exec(&format!(
        "EXPLAIN CALL {card} Buy SET curr_bal = curr_bal + 900"
    ));
    assert!(buy.contains("statement EXPLAIN"), "{buy}");
    assert!(buy.contains("parse"), "{buy}");
    assert!(buy.contains("post after Buy anchor="), "{buy}");
    assert!(
        buy.contains("fsm_advance AutoRaiseLimit from=0 to="),
        "{buy}"
    );
    assert!(buy.contains("commit txn="), "{buy}");

    // …then PayBill completes it: the immediate action, the dependent
    // system transaction, and both commits (with LSNs) appear as one
    // causal tree under the statement span.
    let pay = c.exec(&format!(
        "EXPLAIN CALL {card} PayBill SET curr_bal = curr_bal - 100"
    ));
    assert!(pay.starts_with("trace "), "{pay}");
    assert!(pay.contains("statement EXPLAIN"), "{pay}");
    assert!(pay.contains("post after PayBill anchor="), "{pay}");
    assert!(pay.contains("fsm_advance AutoRaiseLimit from="), "{pay}");
    assert!(pay.contains("action AutoRaiseLimit"), "{pay}");
    assert!(
        pay.contains("fsm_advance SettleDependent from=0 to="),
        "{pay}"
    );
    assert!(pay.contains("system_txn dependent txn="), "{pay}");
    assert!(pay.contains("depends_on="), "{pay}");
    assert!(pay.contains("lsn="), "{pay}");
    // The dependent system transaction commits *inside* the statement:
    // its spans are children, so they render deeper than the root.
    let stmt_indent = indent_of(&pay, "statement EXPLAIN");
    assert!(indent_of(&pay, "post after PayBill") > stmt_indent, "{pay}");
    assert!(
        indent_of(&pay, "system_txn dependent") > stmt_indent,
        "{pay}"
    );

    // The immediate firing really happened, visible through EXPLAIN's
    // payload passthrough: EXPLAIN GET returns result + tree.
    let get = c.exec(&format!("EXPLAIN GET {card} cred_lim"));
    assert!(get.starts_with("result: 2000\n"), "{get}");

    // SHOW TRACE returns the last traced statement's tree.
    c.exec("TRACE ON");
    c.exec(&format!("GET {card} curr_bal"));
    let trace = c.exec("SHOW TRACE");
    assert!(trace.contains("statement GET"), "{trace}");
    c.exec("TRACE OFF");
    server.shutdown();
}

fn indent_of(tree: &str, needle: &str) -> usize {
    let line = tree
        .lines()
        .find(|l| l.trim_start().starts_with(needle))
        .unwrap_or_else(|| panic!("no line starting {needle:?} in:\n{tree}"));
    line.len() - line.trim_start().len()
}

#[test]
fn trace_statements_control_sampling() {
    let engine = Engine::volatile();
    let mut s = engine.session();
    s.execute("CREATE DATABASE t").unwrap();
    s.execute("USE t").unwrap();
    assert!(s
        .execute("SHOW TRACE")
        .unwrap()
        .contains("no trace recorded"));

    // TRACE SAMPLE 2: first statement untraced, second traced.
    s.execute("TRACE SAMPLE 2").unwrap();
    s.execute("SHOW DATABASES").unwrap();
    assert!(
        s.execute("SHOW TRACE")
            .unwrap()
            .contains("no trace recorded"),
        "first sampled statement must not be traced"
    );
    // SHOW TRACE above was statement 2 of the sample window (traced,
    // but TRACE/SHOW TRACE never replace the stored tree); this one is
    // statement 1 of the next window, and the one after is traced.
    s.execute("SHOW DATABASES").unwrap();
    s.execute("SHOW DATABASES").unwrap();
    let trace = s.execute("SHOW TRACE").unwrap();
    assert!(trace.contains("statement SHOW"), "{trace}");

    s.execute("TRACE OFF").unwrap();
    s.execute("CREATE CLASS A { FIELD x; }").unwrap();
    let stale = s.execute("SHOW TRACE").unwrap();
    assert!(
        stale.contains("statement SHOW"),
        "TRACE OFF keeps the old tree: {stale}"
    );
}

/// A zero-microsecond slow-statement threshold forces tracing and
/// counts every statement in `ode_slow_statements`.
#[test]
fn slow_statement_log_counts_over_threshold_statements() {
    let mut opts = StorageOptions::memory();
    opts.slow_statement_micros = Some(0);
    let engine = Engine::volatile_with(opts);
    let mut s = engine.session();
    s.execute("CREATE DATABASE t").unwrap();
    s.execute("USE t").unwrap();
    s.execute("CREATE CLASS A { FIELD x = 7; }").unwrap();
    let oid = s.execute("NEW A").unwrap();
    s.execute(&format!("GET {oid} x")).unwrap();
    let db = engine.database("t").unwrap();
    assert!(
        db.stats().slow_statements >= 2,
        "threshold 0 must log every post-USE statement: {}",
        db.stats().slow_statements
    );
    // The forced trace is also retained for SHOW TRACE, without TRACE ON.
    assert!(s.execute("SHOW TRACE").unwrap().contains("statement GET"));
}

#[test]
fn show_classes_and_triggers_report_catalog_and_live_state() {
    let engine = Engine::volatile();
    let mut s = engine.session();
    s.execute("CREATE DATABASE bank").unwrap();
    s.execute("USE bank").unwrap();
    for stmt in SCHEMA {
        s.execute(stmt).unwrap();
    }
    let classes = s.execute("SHOW CLASSES").unwrap();
    assert!(classes.starts_with("CredCard events="), "{classes}");
    assert!(classes.contains("triggers=2"), "{classes}");

    let triggers = s.execute("SHOW TRIGGERS").unwrap();
    assert!(
        triggers.contains("AutoRaiseLimit ON CredCard ONCE COUPLING immediate active=0"),
        "{triggers}"
    );
    assert!(
        triggers.contains("SettleDependent ON CredCard PERPETUAL COUPLING dependent active=0"),
        "{triggers}"
    );

    let card = s.execute("NEW CredCard").unwrap();
    s.execute(&format!("ACTIVATE AutoRaiseLimit ON {card} WITH 500"))
        .unwrap();
    s.execute(&format!("ACTIVATE SettleDependent ON {card}"))
        .unwrap();
    let card2 = s.execute("NEW CredCard").unwrap();
    s.execute(&format!("ACTIVATE SettleDependent ON {card2}"))
        .unwrap();
    let triggers = s.execute("SHOW TRIGGERS").unwrap();
    assert!(
        triggers.contains("AutoRaiseLimit ON CredCard ONCE COUPLING immediate active=1"),
        "{triggers}"
    );
    assert!(
        triggers.contains("SettleDependent ON CredCard PERPETUAL COUPLING dependent active=2"),
        "{triggers}"
    );
}

// ---------------------------------------------------------------------
// Prometheus exposition conformance (label-aware)
// ---------------------------------------------------------------------

/// Label-aware exposition check: HELP/TYPE once per family, cumulative
/// bucket series per label set, `+Inf == _count` per label set.
fn assert_exposition_conformant(text: &str) {
    let mut helps = HashSet::new();
    let mut types = HashSet::new();
    for line in text.lines().filter(|l| l.starts_with('#')) {
        let mut parts = line.split_whitespace();
        let kind = parts.nth(1).unwrap();
        let name = parts.next().unwrap().to_string();
        match kind {
            "HELP" => assert!(helps.insert(name), "duplicate HELP in {line}"),
            "TYPE" => assert!(types.insert(name), "duplicate TYPE in {line}"),
            other => panic!("unexpected comment kind {other}"),
        }
    }
    // (base name, labels-without-le) → running bucket value / +Inf / count.
    let mut last_bucket: HashMap<(String, String), u64> = HashMap::new();
    let mut inf: HashMap<(String, String), u64> = HashMap::new();
    let mut counts: HashMap<(String, String), u64> = HashMap::new();
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').expect("name value");
        let value: u64 = value.parse().unwrap_or_else(|_| panic!("u64 in {line}"));
        let (base, labels) = match name.split_once('{') {
            Some((b, rest)) => (b, rest.trim_end_matches('}')),
            None => (name, ""),
        };
        let labels_no_le: String = labels
            .split(',')
            .filter(|kv| !kv.starts_with("le="))
            .collect::<Vec<_>>()
            .join(",");
        let family = if helps.contains(base) {
            base.to_string()
        } else if let Some(b) = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
        {
            b.to_string()
        } else if let Some(b) = base.strip_suffix("_count") {
            counts.insert((b.to_string(), labels_no_le.clone()), value);
            b.to_string()
        } else {
            base.to_string()
        };
        assert!(helps.contains(&family), "no HELP for {name} ({family})");
        assert!(types.contains(&family), "no TYPE for {name} ({family})");
        if base.ends_with("_bucket") {
            let key = (family.clone(), labels_no_le.clone());
            let prev = last_bucket.entry(key.clone()).or_insert(0);
            assert!(value >= *prev, "bucket series not cumulative at {line}");
            *prev = value;
            if labels.contains("le=\"+Inf\"") {
                inf.insert(key, value);
            }
        }
    }
    assert!(!inf.is_empty(), "histogram series must be present");
    for (key, inf_count) in inf {
        assert_eq!(
            counts.get(&key),
            Some(&inf_count),
            "+Inf bucket of {key:?} must equal its _count"
        );
    }
}

/// Two databases under one engine: every labeled family carries the
/// right `db="…"` label, families appear exactly once in the merged
/// page, and the engine-level session/statement gauges render after
/// them — all conformant.
#[test]
fn multi_database_prometheus_merge_is_conformant() {
    let engine = Engine::volatile();
    let mut s = engine.session();
    s.execute("CREATE DATABASE alpha").unwrap();
    s.execute("CREATE DATABASE beta").unwrap();
    for db in ["alpha", "beta"] {
        let mut s = engine.session();
        s.execute(&format!("USE {db}")).unwrap();
        s.execute("CREATE CLASS A { FIELD x = 1; }").unwrap();
        let oid = s.execute("NEW A").unwrap();
        s.execute(&format!("GET {oid} x")).unwrap();
    }
    let text = engine.render_prometheus();
    assert_exposition_conformant(&text);
    assert!(text.contains("ode_txn_commits{db=\"alpha\"}"), "{text}");
    assert!(text.contains("ode_txn_commits{db=\"beta\"}"), "{text}");
    assert!(
        text.contains("ode_statement_micros_bucket{db=\"alpha\",le="),
        "{text}"
    );
    // Engine-level families: open sessions, statements by verb.
    assert!(text.contains("# TYPE ode_sessions_open gauge"), "{text}");
    assert!(
        text.contains("ode_statements_total{verb=\"get\"} 2"),
        "{text}"
    );
    assert!(text.contains("ode_frames_oversized 0"), "{text}");

    // The METRICS statement serves the same merged page.
    let via_stmt = s.execute("METRICS").unwrap();
    assert_exposition_conformant(&via_stmt);
}

/// CI hook: the server-smoke job curls `GET /metrics` from the running
/// example into a file and validates it here (see
/// `.github/workflows/ci.yml`). Run explicitly with
/// `ODE_SCRAPE_FILE=… cargo test --test tracing -- --ignored scraped`.
#[test]
#[ignore = "needs ODE_SCRAPE_FILE from the CI scrape step"]
fn scraped_metrics_file_is_conformant() {
    let path = std::env::var("ODE_SCRAPE_FILE").expect("ODE_SCRAPE_FILE");
    let text = std::fs::read_to_string(&path).expect("read scrape file");
    assert_exposition_conformant(&text);
    assert!(
        text.contains("ode_firings_immediate{db=\"bank\"}"),
        "{text}"
    );
    assert!(text.contains("ode_sessions_open"), "{text}");
}
