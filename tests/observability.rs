//! Acceptance test for the engine-wide observability layer: replay the
//! paper's §4 credit-card example and assert that `Database::stats()`
//! reports non-zero counters from every layer — lock manager (waits),
//! event machinery (FSM transitions, mask evaluations), and trigger
//! run-time (firings by coupling mode) — plus the Prometheus rendering
//! and the trace-sink hook.

use bytes::BytesMut;
use ode::core::ClassBuilder;
use ode::prelude::*;
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, PartialEq)]
struct CredCard {
    cred_lim: f32,
    curr_bal: f32,
}

impl Encode for CredCard {
    fn encode(&self, buf: &mut BytesMut) {
        self.cred_lim.encode(buf);
        self.curr_bal.encode(buf);
    }
}
impl Decode for CredCard {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(CredCard {
            cred_lim: f32::decode(buf)?,
            curr_bal: f32::decode(buf)?,
        })
    }
}
impl OdeObject for CredCard {
    const CLASS: &'static str = "CredCard";
}

/// The §4 CredCard class: the paper's two triggers plus one audit trigger
/// per remaining coupling mode, so the replay exercises the whole
/// firings-by-mode family.
fn cred_card_world() -> (Database, PersistentPtr<CredCard>) {
    cred_card_world_on(Database::volatile())
}

fn cred_card_world_on(db: Database) -> (Database, PersistentPtr<CredCard>) {
    let td = ClassBuilder::new("CredCard")
        .user_event("BigBuy")
        .after_event("PayBill")
        .after_event("Buy")
        .mask("OverLimit", |ctx| {
            let card: CredCard = ctx.object()?;
            Ok(card.curr_bal > card.cred_lim)
        })
        .mask("MoreCred", |ctx| {
            let card: CredCard = ctx.object()?;
            Ok(card.curr_bal > 0.8 * card.cred_lim)
        })
        .trigger(
            "DenyCredit",
            "after Buy & OverLimit()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| Err(ctx.tabort("Over Limit")),
        )
        .trigger(
            "AutoRaiseLimit",
            "relative((after Buy & MoreCred()), after PayBill)",
            CouplingMode::Immediate,
            Perpetual::No,
            |ctx| {
                let amount: f32 = ctx.params()?;
                ctx.update_object(|card: &mut CredCard| card.cred_lim += amount)
            },
        )
        .trigger(
            "AuditAtEnd",
            "after Buy",
            CouplingMode::End,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .trigger(
            "SettleDependent",
            "after PayBill",
            CouplingMode::Dependent,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .trigger(
            "NotifyIndependent",
            "after PayBill",
            CouplingMode::Independent,
            Perpetual::Yes,
            |_| Ok(()),
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();
    let card = db
        .with_txn(|txn| {
            let card = db.pnew(
                txn,
                &CredCard {
                    cred_lim: 1000.0,
                    curr_bal: 0.0,
                },
            )?;
            db.activate(txn, card, "DenyCredit", &())?;
            db.activate(txn, card, "AutoRaiseLimit", &100.0f32)?;
            db.activate(txn, card, "AuditAtEnd", &())?;
            db.activate(txn, card, "SettleDependent", &())?;
            db.activate(txn, card, "NotifyIndependent", &())?;
            Ok(card)
        })
        .unwrap();
    (db, card)
}

/// One billing cycle: a big Buy that arms AutoRaiseLimit's mask path
/// (900 > 80% of 1000), then the PayBill that completes the `relative`
/// expression and raises the limit.
fn billing_cycle(db: &Database, card: PersistentPtr<CredCard>) {
    db.with_txn(|txn| {
        db.invoke(txn, card, "Buy", |c: &mut CredCard| {
            c.curr_bal += 900.0;
            Ok(())
        })?;
        db.invoke(txn, card, "PayBill", |c: &mut CredCard| {
            c.curr_bal -= 900.0;
            Ok(())
        })
    })
    .unwrap();
}

/// Force a deterministic shared-lock wait: the main thread holds the
/// card exclusively (an open update transaction) while a reader thread
/// blocks on it; the main thread commits only after the wait counter
/// proves the reader is queued.
fn force_lock_wait(db: &Arc<Database>, card: PersistentPtr<CredCard>) {
    let waits_before = db.stats().lock_shared_waits;
    let txn = db.begin().unwrap();
    db.update_with(txn, card, |c: &mut CredCard| c.curr_bal += 0.0)
        .unwrap();
    let barrier = Arc::new(Barrier::new(2));
    let reader = {
        let db = Arc::clone(db);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            db.with_txn(|txn| {
                let _ = db.read(txn, card)?;
                Ok(())
            })
            .unwrap();
        })
    };
    barrier.wait();
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.stats().lock_shared_waits == waits_before {
        assert!(
            Instant::now() < deadline,
            "reader never blocked on the exclusively held card"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    db.commit(txn).unwrap();
    reader.join().unwrap();
}

#[test]
fn credit_card_replay_populates_every_counter_family() {
    let (db, card) = cred_card_world();
    let db = Arc::new(db);

    billing_cycle(&db, card);
    force_lock_wait(&db, card);

    let snap = db.stats();

    // Lock manager: the forced reader wait, plus ordinary acquisitions.
    assert!(snap.lock_shared_waits > 0, "lock waits: {snap:?}");
    assert!(snap.lock_shared_acquisitions > 0);
    assert!(snap.lock_exclusive_acquisitions > 0);

    // Event machinery: five triggers compiled at registration; the Buy and
    // PayBill postings advanced their machines; MoreCred() and OverLimit()
    // were evaluated as mask pseudo-events.
    assert_eq!(snap.fsm_compiles, 5);
    assert!(snap.fsm_states >= 5);
    assert!(snap.fsm_transitions > 0, "FSM transitions: {snap:?}");
    assert!(snap.fsm_mask_evals > 0, "mask evaluations: {snap:?}");
    assert_eq!(
        snap.fsm_mask_evals,
        snap.fsm_true_events + snap.fsm_false_events
    );

    // Trigger run-time: every coupling mode fired exactly once during the
    // billing cycle (AutoRaiseLimit immediate, AuditAtEnd end,
    // SettleDependent dependent, NotifyIndependent !dependent).
    assert_eq!(snap.firings_immediate, 1, "{snap:?}");
    assert_eq!(snap.firings_end, 1);
    assert_eq!(snap.firings_dependent, 1);
    assert_eq!(snap.firings_independent, 1);
    assert_eq!(snap.trigger_activations, 5);
    // AutoRaiseLimit is once-only and fired, so it was deactivated…
    assert_eq!(snap.once_only_deactivations, 1);
    // …and its action really ran: the limit went up by the parameter.
    db.with_txn(|txn| {
        assert_eq!(db.read(txn, card)?.cred_lim, 1100.0);
        Ok(())
    })
    .unwrap();

    // Postings and transactions were counted too.
    assert!(snap.events_posted >= 2);
    assert!(snap.txn_commits > 0);
    assert_eq!(snap.detached_failures, 0);
}

#[test]
fn stats_render_as_wellformed_prometheus_text() {
    let (db, card) = cred_card_world();
    billing_cycle(&db, card);
    let text = db.stats().render_prometheus();
    // Every metric appears with HELP/TYPE headers and a u64 value.
    let mut values = std::collections::HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (name, value) = line.split_once(' ').expect("name value");
        assert!(name.starts_with("ode_"), "unprefixed metric {name}");
        values.insert(name.to_string(), value.parse::<u64>().unwrap());
    }
    assert!(text.contains("# TYPE ode_fsm_transitions counter"));
    assert!(text.contains("# HELP ode_lock_upgrades "));
    assert!(values["ode_fsm_transitions"] > 0);
    assert!(values["ode_fsm_mask_evals"] > 0);
    assert_eq!(values["ode_firings_immediate"], 1);
    assert_eq!(values["ode_firings_end"], 1);
    assert_eq!(values["ode_firings_dependent"], 1);
    assert_eq!(values["ode_firings_independent"], 1);
    // The latency histograms render as histogram series, not counters.
    assert!(text.contains("# TYPE ode_lock_wait_micros histogram"));
    assert!(text.contains("# TYPE ode_commit_flush_wait_micros histogram"));
    assert!(text.contains("ode_lock_wait_micros_bucket{le=\"+Inf\"}"));
    assert!(values.contains_key("ode_commit_flush_wait_micros_count"));
    // The billing cycle's postings landed in the post-latency histogram.
    assert!(values["ode_post_micros_count"] > 0);
    assert!(values["ode_action_micros_count"] > 0);
}

/// Acceptance: p50/p99 lock-wait and commit-flush-wait histograms carry
/// real samples on a durable database and appear in the Prometheus
/// exposition.
#[test]
fn latency_histograms_expose_percentiles() {
    let dir = ode_testutil::TempDir::new("obs-histograms");
    let opts = StorageOptions {
        fsync: true, // so fsync_micros sees real syncs
        ..StorageOptions::default()
    };
    let (db, card) = cred_card_world_on(Database::create(dir.path(), opts).unwrap());
    let db = Arc::new(db);
    billing_cycle(&db, card);
    force_lock_wait(&db, card);

    let snap = db.stats();
    // The forced reader wait was at least a millisecond: the histogram
    // saw it, and its percentiles reflect it.
    let lw = snap.lock_wait_micros;
    assert!(lw.count >= 1, "{lw:?}");
    assert!(lw.max >= 1_000, "forced wait under 1ms? {lw:?}");
    // Percentiles are bucket upper bounds; system transactions may add
    // shorter waits, so only order them rather than pin p50 itself.
    assert!(lw.p99() >= lw.p50());
    assert!(lw.percentile(1.0) >= lw.max, "p100 bound covers the max");

    // Durable commits waited on the WAL flush; fsyncs were timed.
    let cf = snap.commit_flush_wait_micros;
    assert!(cf.count >= 1, "durable commits must record flush waits");
    assert!(cf.sum > 0);
    assert!(snap.fsync_micros.count >= 1, "fsyncs must be timed");

    // Post and action latency histograms saw the billing cycle.
    assert!(snap.post_micros.count >= 2);
    assert!(snap.action_micros.count >= 1);

    let text = snap.render_prometheus();
    assert!(text.contains("ode_lock_wait_micros_bucket{le=\"+Inf\"}"));
    assert!(text.contains("ode_commit_flush_wait_micros_sum "));
    assert!(text.contains("# TYPE ode_fsync_micros histogram"));
}

/// Prometheus exposition conformance: every metric has HELP/TYPE
/// headers, histogram bucket series are cumulative-monotone, and the
/// `+Inf` bucket equals `_count`.
#[test]
fn prometheus_exposition_is_conformant() {
    let (db, card) = cred_card_world();
    billing_cycle(&db, card);
    let text = db.stats().render_prometheus();

    let mut helps = std::collections::HashSet::new();
    let mut types = std::collections::HashSet::new();
    for line in text.lines().filter(|l| l.starts_with('#')) {
        let mut parts = line.split_whitespace();
        let kind = parts.nth(1).unwrap();
        let name = parts.next().unwrap().to_string();
        match kind {
            "HELP" => assert!(helps.insert(name), "duplicate HELP in {line}"),
            "TYPE" => assert!(types.insert(name), "duplicate TYPE in {line}"),
            other => panic!("unexpected comment kind {other}"),
        }
    }

    let mut inf: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    let mut counts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    let mut last_bucket: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.split_once(' ').expect("name value");
        let value: u64 = value.parse().expect("u64 value");
        // Every sample's family must have HELP and TYPE headers. A name
        // with its own headers is a plain counter (even if it happens to
        // end in `_sum`, like `wal_group_size_sum`); otherwise it must be
        // a histogram series sample.
        let base = name.split('{').next().unwrap();
        let family = if helps.contains(base) {
            base.to_string()
        } else if let Some(b) = base.strip_suffix("_bucket") {
            b.to_string()
        } else if let Some(b) = base.strip_suffix("_sum") {
            b.to_string()
        } else if let Some(b) = base.strip_suffix("_count") {
            counts.insert(b.to_string(), value);
            b.to_string()
        } else {
            name.to_string()
        };
        assert!(helps.contains(&family), "no HELP for {name} ({family})");
        assert!(types.contains(&family), "no TYPE for {name} ({family})");
        if name.contains("_bucket{") {
            let prev = last_bucket.entry(family.clone()).or_insert(0);
            assert!(
                value >= *prev,
                "bucket series for {family} not cumulative at {line}"
            );
            *prev = value;
            if name.contains("le=\"+Inf\"") {
                inf.insert(family, value);
            }
        }
    }
    assert!(!inf.is_empty(), "histogram series must be present");
    for (family, inf_count) in inf {
        assert_eq!(
            counts.get(&family),
            Some(&inf_count),
            "+Inf bucket of {family} must equal its _count"
        );
    }
}

struct RecordingSink(Mutex<Vec<String>>);
impl TraceSink for RecordingSink {
    fn on_event(&self, event: &TraceEvent<'_>) {
        self.0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(format!("{event:?}"));
    }
}

#[test]
fn trace_sink_observes_the_replay() {
    let (db, card) = cred_card_world();
    let sink = Arc::new(RecordingSink(Mutex::new(Vec::new())));
    db.set_trace_sink(Some(sink.clone()));
    billing_cycle(&db, card);
    db.set_trace_sink(None);

    let seen = sink.0.lock().unwrap().join("\n");
    assert!(seen.contains("EventPosted"), "postings traced: {seen}");
    assert!(
        seen.contains("TriggerFired") && seen.contains("AutoRaiseLimit"),
        "firings traced with trigger names: {seen}"
    );
    assert!(
        seen.contains("\"immediate\"") && seen.contains("\"!dependent\""),
        "couplings labelled: {seen}"
    );
    assert!(seen.contains("TxnCommit"), "commits traced: {seen}");

    // Detached: events after this point are not delivered.
    let n = sink.0.lock().unwrap().len();
    billing_cycle(&db, card);
    assert_eq!(sink.0.lock().unwrap().len(), n);
}
