//! Concurrency stress: many threads mixing object writes, trigger
//! activations/deactivations, event postings, and aborts — then a full
//! integrity verification. Deadlock victims (which the §6 lock
//! amplification makes routine) are retried.

use bytes::BytesMut;
use ode::core::ClassBuilder;
use ode::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Barrier};

#[derive(Debug, Clone)]
struct Account {
    balance: i64,
    ops: u32,
}
impl Encode for Account {
    fn encode(&self, buf: &mut BytesMut) {
        self.balance.encode(buf);
        self.ops.encode(buf);
    }
}
impl Decode for Account {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Account {
            balance: i64::decode(buf)?,
            ops: u32::decode(buf)?,
        })
    }
}
impl OdeObject for Account {
    const CLASS: &'static str = "Account";
}

const ROUNDS: usize = 60;
const ACCOUNTS: usize = 6;

/// Thread count, overridable so CI can crank the contention up
/// (`ODE_STRESS_THREADS=16`) without slowing the default local run.
fn threads() -> usize {
    std::env::var("ODE_STRESS_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

#[test]
fn concurrent_mixed_workload_stays_consistent() {
    let threads = threads();
    let db = Arc::new(Database::volatile());
    let fired = Arc::new(AtomicU32::new(0));
    let f = Arc::clone(&fired);
    let td = ClassBuilder::new("Account")
        .after_event("Touch")
        .user_event("Mark")
        .trigger(
            "TouchThenMark",
            "after Touch, Mark",
            CouplingMode::Immediate,
            Perpetual::Yes,
            move |_| {
                f.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        )
        .build(db.registry())
        .unwrap();
    db.register_class(&td).unwrap();

    let accounts: Vec<PersistentPtr<Account>> = db
        .with_txn(|txn| {
            (0..ACCOUNTS)
                .map(|_| db.pnew(txn, &Account { balance: 0, ops: 0 }))
                .collect()
        })
        .unwrap();
    let accounts = Arc::new(accounts);

    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = Arc::clone(&db);
            let accounts = Arc::clone(&accounts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                // Deterministic per-thread mix over the shared accounts.
                for r in 0..ROUNDS {
                    let acc = accounts[(t * 7 + r) % ACCOUNTS];
                    let kind = (t + r) % 5;
                    let result = db.with_txn_retry(10_000, |txn| match kind {
                        0 => {
                            // Plain money movement.
                            db.update_with(txn, acc, |a| {
                                a.balance += 1;
                                a.ops += 1;
                            })
                        }
                        1 => {
                            // Activate a trigger (possibly many pile up).
                            db.activate(txn, acc, "TouchThenMark", &())?;
                            Ok(())
                        }
                        2 => {
                            // Post the arming + completing events.
                            db.invoke(txn, acc, "Touch", |a: &mut Account| {
                                a.ops += 1;
                                Ok(())
                            })?;
                            db.post_user_event(txn, acc, "Mark")
                        }
                        3 => {
                            // Deactivate everything on the object.
                            db.deactivate_all(txn, acc.oid())?;
                            Ok(())
                        }
                        _ => {
                            // Do work, then change our mind.
                            db.update_with(txn, acc, |a| a.balance += 1_000_000)?;
                            Err(OdeError::tabort("never mind"))
                        }
                    });
                    match result {
                        Ok(()) => {}
                        Err(e) if e.is_abort() => {} // our own tabort branch
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    db.with_txn(|txn| {
        // Structural invariants hold after the storm.
        let report = db.verify_integrity(txn)?;
        assert!(report.is_healthy(), "issues: {:#?}", report.issues);
        // The tabort branch never leaked its million.
        for &acc in accounts.iter() {
            let a = db.read(txn, acc)?;
            assert!(
                a.balance < 1_000_000,
                "aborted update leaked: {}",
                a.balance
            );
            assert!(a.balance >= 0);
        }
        Ok(())
    })
    .unwrap();
    // The lock manager saw real contention (sanity that the stress
    // stressed something).
    let stats = db.storage().lock_stats();
    assert!(stats.immediate_grants > 0);
}
