//! Quickstart: define a class with a trigger, store an object, watch the
//! trigger fire.
//!
//! Run with: `cargo run --example quickstart`

use bytes::BytesMut;
use ode::prelude::*;

/// A persistent class: a bank account.
#[derive(Debug, Clone)]
struct Account {
    owner: String,
    balance: i64,
}

impl Encode for Account {
    fn encode(&self, buf: &mut BytesMut) {
        self.owner.encode(buf);
        self.balance.encode(buf);
    }
}

impl Decode for Account {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Account {
            owner: String::decode(buf)?,
            balance: i64::decode(buf)?,
        })
    }
}

impl OdeObject for Account {
    const CLASS: &'static str = "Account";
}

fn main() -> ode::core::Result<()> {
    // A volatile in-memory database; Database::create(dir, …) gives a
    // durable one (disk or main-memory engine).
    let db = Database::volatile();

    // The class declaration — in O++ this was:
    //   event after Withdraw;
    //   trigger Overdraft() : perpetual after Withdraw & (balance < 0)
    //       ==> { ... tabort; }
    let account_class = ClassBuilder::new("Account")
        .after_event("Withdraw")
        .mask("Overdrawn", |ctx| {
            let acc: Account = ctx.object()?;
            Ok(acc.balance < 0)
        })
        .trigger(
            "Overdraft",
            "after Withdraw & Overdrawn()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| {
                let acc: Account = ctx.object()?;
                println!("  !! Overdraft trigger fired for {} — aborting", acc.owner);
                Err(ctx.tabort("overdraft"))
            },
        )
        .build(db.registry())?;
    db.register_class(&account_class)?;

    // Create a persistent object and activate the trigger on it.
    let account = db.with_txn(|txn| {
        let acc = db.pnew(
            txn,
            &Account {
                owner: "Robert".into(),
                balance: 100,
            },
        )?;
        db.activate(txn, acc, "Overdraft", &())?;
        Ok(acc)
    })?;
    println!("created {account:?} with the Overdraft trigger active");

    // A legal withdrawal commits.
    db.with_txn(|txn| {
        db.invoke(txn, account, "Withdraw", |acc: &mut Account| {
            acc.balance -= 60;
            Ok(())
        })
    })?;
    let balance = db.with_txn(|txn| Ok(db.read(txn, account)?.balance))?;
    println!("withdrew 60 -> balance {balance}");

    // An overdraft fires the trigger, which aborts the transaction.
    let err = db
        .with_txn(|txn| {
            db.invoke(txn, account, "Withdraw", |acc: &mut Account| {
                acc.balance -= 500;
                Ok(())
            })
        })
        .expect_err("the trigger must abort this");
    println!("withdrawing 500 failed as expected: {err}");

    let balance = db.with_txn(|txn| Ok(db.read(txn, account)?.balance))?;
    println!("balance after the aborted withdrawal is still {balance}");
    assert_eq!(balance, 40);
    Ok(())
}
