//! Inventory management with deferred constraints and detached auditing —
//! a tour of the four coupling modes (§4.2) and of transaction events
//! (§5.5) on a durable on-disk database.
//!
//! * `immediate`: a low-stock warning printed the moment stock dips.
//! * `end` (deferred): a stock-level constraint checked right before
//!   commit — intermediate states inside a transaction may violate it.
//! * `dependent`: a reorder is placed in a separate transaction, but only
//!   if the triggering transaction actually commits.
//! * `!dependent`: every attempted oversell is recorded for auditing even
//!   when the transaction is rolled back.
//!
//! Run with: `cargo run --example inventory`

use bytes::BytesMut;
use ode::prelude::*;

#[derive(Debug, Clone)]
struct Item {
    sku: String,
    stock: i32,
    reorder_level: i32,
}
impl Encode for Item {
    fn encode(&self, buf: &mut BytesMut) {
        self.sku.encode(buf);
        self.stock.encode(buf);
        self.reorder_level.encode(buf);
    }
}
impl Decode for Item {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Item {
            sku: String::decode(buf)?,
            stock: i32::decode(buf)?,
            reorder_level: i32::decode(buf)?,
        })
    }
}
impl OdeObject for Item {
    const CLASS: &'static str = "Item";
}

#[derive(Debug, Clone, Default)]
struct Ledger {
    reorders: Vec<String>,
    audit: Vec<String>,
}
impl Encode for Ledger {
    fn encode(&self, buf: &mut BytesMut) {
        self.reorders.encode(buf);
        self.audit.encode(buf);
    }
}
impl Decode for Ledger {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Ledger {
            reorders: Vec::<String>::decode(buf)?,
            audit: Vec::<String>::decode(buf)?,
        })
    }
}
impl OdeObject for Ledger {
    const CLASS: &'static str = "Ledger";
}

fn define_classes(db: &Database) -> ode::core::Result<()> {
    let ledger = ClassBuilder::new("Ledger").build(db.registry())?;
    db.register_class(&ledger)?;
    let item = ClassBuilder::new("Item")
        .after_event("Ship")
        .after_event("Receive")
        .mask("BelowReorder", |ctx| {
            let item: Item = ctx.object()?;
            Ok(item.stock < item.reorder_level)
        })
        .mask("Negative", |ctx| {
            let item: Item = ctx.object()?;
            Ok(item.stock < 0)
        })
        .trigger(
            "LowStockWarning",
            "after Ship & BelowReorder()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| {
                let item: Item = ctx.object()?;
                println!("  [immediate] low stock on {}: {}", item.sku, item.stock);
                Ok(())
            },
        )
        .trigger(
            // Constraint: stock must be non-negative *at commit time*.
            "NonNegativeStock",
            "after Ship & Negative()",
            CouplingMode::End,
            Perpetual::Yes,
            |ctx| {
                let item: Item = ctx.object()?;
                if item.stock < 0 {
                    println!("  [end] constraint violated for {} — aborting", item.sku);
                    Err(ctx.tabort("negative stock at commit"))
                } else {
                    // The violation healed before commit (e.g. a Receive
                    // later in the same transaction): fine.
                    println!("  [end] {} healed before commit: {}", item.sku, item.stock);
                    Ok(())
                }
            },
        )
        .trigger(
            "Reorder",
            "after Ship & BelowReorder()",
            CouplingMode::Dependent,
            Perpetual::Yes,
            |ctx| {
                let ledger: PersistentPtr<Ledger> = ctx.params()?;
                let item: Item = ctx.object()?;
                let line = format!("reorder {} (stock {})", item.sku, item.stock);
                println!("  [dependent] {line}");
                ctx.db()
                    .update_with(ctx.txn(), ledger, |l| l.reorders.push(line))
            },
        )
        .trigger(
            "AuditOversell",
            "after Ship & Negative()",
            CouplingMode::Independent,
            Perpetual::Yes,
            |ctx| {
                let ledger: PersistentPtr<Ledger> = ctx.params()?;
                let item: Item = ctx.object()?;
                let line = format!("oversell attempt on {}", item.sku);
                println!("  [!dependent] {line}");
                ctx.db()
                    .update_with(ctx.txn(), ledger, |l| l.audit.push(line))
            },
        )
        .build(db.registry())?;
    db.register_class(&item)?;
    Ok(())
}

fn main() -> ode::core::Result<()> {
    // A durable on-disk database under a temp directory.
    let dir = std::env::temp_dir().join(format!("ode-inventory-{}", std::process::id()));
    let db = Database::create(&dir, StorageOptions::default())?;
    define_classes(&db)?;

    let (widget, ledger) = db.with_txn(|txn| {
        let ledger = db.pnew(txn, &Ledger::default())?;
        let widget = db.pnew(
            txn,
            &Item {
                sku: "WIDGET".into(),
                stock: 10,
                reorder_level: 5,
            },
        )?;
        for trigger in [
            "LowStockWarning",
            "NonNegativeStock",
            "Reorder",
            "AuditOversell",
        ] {
            db.activate(txn, widget, trigger, &ledger)?;
        }
        Ok((widget, ledger))
    })?;

    let ship = |txn: TxnId, n: i32| {
        db.invoke(txn, widget, "Ship", |item: &mut Item| {
            item.stock -= n;
            Ok(())
        })
    };
    let receive = |txn: TxnId, n: i32| {
        db.invoke(txn, widget, "Receive", |item: &mut Item| {
            item.stock += n;
            Ok(())
        })
    };

    println!("ship 7 (dips below the reorder level):");
    db.with_txn(|txn| ship(txn, 7))?;

    println!("ship 5 then receive 20 in one transaction (transient negative heals):");
    db.with_txn(|txn| {
        ship(txn, 5)?;
        receive(txn, 20)
    })?;

    println!("ship 30 (oversell — the end constraint aborts at commit):");
    let err = db.with_txn(|txn| ship(txn, 30)).unwrap_err();
    println!("  transaction failed: {err}");

    db.with_txn(|txn| {
        let item = db.read(txn, widget)?;
        let ledger = db.read(txn, ledger)?;
        println!("final stock: {}", item.stock);
        println!(
            "reorders (dependent, committed only): {:#?}",
            ledger.reorders
        );
        println!("audit (!dependent, survives aborts): {:#?}", ledger.audit);
        assert_eq!(item.stock, 18, "3 + (-5+20) after the failed oversell");
        // Both committed transactions dipped below the reorder level at
        // detection time (the second only transiently), so the dependent
        // Reorder fired twice; the aborted oversell never reordered.
        assert_eq!(ledger.reorders.len(), 2, "committed dips reordered");
        assert_eq!(ledger.audit.len(), 2, "healed + aborted oversells audited");
        Ok(())
    })?;

    db.close()?;
    std::fs::remove_dir_all(&dir).ok();
    println!("done");
    Ok(())
}
