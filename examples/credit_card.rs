//! The paper's §4 credit-card monitoring example, complete: `CredCard`
//! with the `DenyCredit` and `AutoRaiseLimit` triggers, plus a
//! `!dependent` black-mark audit that survives the aborts `DenyCredit`
//! causes — the coupling-mode interplay §5.5 describes.
//!
//! Run with: `cargo run --example credit_card`

use bytes::BytesMut;
use ode::prelude::*;

#[derive(Debug, Clone)]
struct CredCard {
    holder: String,
    cred_lim: f32,
    curr_bal: f32,
    good_hist: bool,
}

impl CredCard {
    fn more_cred(&self) -> bool {
        // int MoreCred() { return (currBal > 0.8*credLim) && GoodCredHist(); }
        self.curr_bal > 0.8 * self.cred_lim && self.good_hist
    }
}

impl Encode for CredCard {
    fn encode(&self, buf: &mut BytesMut) {
        self.holder.encode(buf);
        self.cred_lim.encode(buf);
        self.curr_bal.encode(buf);
        self.good_hist.encode(buf);
    }
}
impl Decode for CredCard {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(CredCard {
            holder: String::decode(buf)?,
            cred_lim: f32::decode(buf)?,
            curr_bal: f32::decode(buf)?,
            good_hist: bool::decode(buf)?,
        })
    }
}
impl OdeObject for CredCard {
    const CLASS: &'static str = "CredCard";
}

/// Credit history lives in a separate object so black marks written by a
/// `!dependent` trigger survive the abort that DenyCredit forces.
#[derive(Debug, Clone, Default)]
struct CreditHistory {
    marks: Vec<String>,
}
impl Encode for CreditHistory {
    fn encode(&self, buf: &mut BytesMut) {
        self.marks.encode(buf);
    }
}
impl Decode for CreditHistory {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(CreditHistory {
            marks: Vec::<String>::decode(buf)?,
        })
    }
}
impl OdeObject for CreditHistory {
    const CLASS: &'static str = "CreditHistory";
}

fn main() -> ode::core::Result<()> {
    let db = Database::volatile();

    let history_class = ClassBuilder::new("CreditHistory").build(db.registry())?;
    db.register_class(&history_class)?;

    // persistent class CredCard { ...
    //   event after Buy, after PayBill, BigBuy;
    let cred_card = ClassBuilder::new("CredCard")
        .after_event("Buy")
        .after_event("PayBill")
        .user_event("BigBuy")
        .mask("OverLimit", |ctx| {
            let c: CredCard = ctx.object()?;
            Ok(c.curr_bal > c.cred_lim)
        })
        .mask("MoreCred", |ctx| {
            let c: CredCard = ctx.object()?;
            Ok(c.more_cred())
        })
        // trigger DenyCredit() : perpetual after Buy & (currBal > credLim)
        //     ==> { BlackMark("Over Limit", today()); tabort; }
        .trigger(
            "DenyCredit",
            "after Buy & OverLimit()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| {
                let c: CredCard = ctx.object()?;
                println!("  [DenyCredit] {} over limit — purchase denied", c.holder);
                Err(ctx.tabort("Over Limit"))
            },
        )
        // The black mark itself: a !dependent companion so the mark
        // persists even though DenyCredit aborts the transaction.
        .trigger(
            "BlackMark",
            "after Buy & OverLimit()",
            CouplingMode::Independent,
            Perpetual::Yes,
            |ctx| {
                let history: PersistentPtr<CreditHistory> = ctx.params()?;
                ctx.db().update_with(ctx.txn(), history, |h| {
                    h.marks.push("Over Limit".to_string());
                })
            },
        )
        // trigger AutoRaiseLimit(float amount) :
        //     relative((after Buy & MoreCred()), after PayBill)
        //     ==> RaiseLimit(amount);
        .trigger(
            "AutoRaiseLimit",
            "relative((after Buy & MoreCred()), after PayBill)",
            CouplingMode::Immediate,
            Perpetual::No,
            |ctx| {
                let amount: f32 = ctx.params()?;
                ctx.update_object(|c: &mut CredCard| {
                    println!(
                        "  [AutoRaiseLimit] {}: {} -> {}",
                        c.holder,
                        c.cred_lim,
                        c.cred_lim + amount
                    );
                    c.cred_lim += amount;
                })
            },
        )
        .build(db.registry())?;
    db.register_class(&cred_card)?;

    // Print the AutoRaiseLimit FSM — this is the paper's Figure 1.
    let (_, info) = cred_card.trigger("AutoRaiseLimit").unwrap();
    println!("AutoRaiseLimit compiles to the Figure 1 machine:");
    println!("{}", info.fsm.render(cred_card.alphabet()));

    // Issue a card and activate the triggers.
    let (card, history) = db.with_txn(|txn| {
        let history = db.pnew(txn, &CreditHistory::default())?;
        let card = db.pnew(
            txn,
            &CredCard {
                holder: "Narain".into(),
                cred_lim: 1000.0,
                curr_bal: 0.0,
                good_hist: true,
            },
        )?;
        db.activate(txn, card, "DenyCredit", &())?;
        db.activate(txn, card, "BlackMark", &history)?;
        // TriggerId AutoRaise = pcred->AutoRaiseLimit(1000.0);
        db.activate(txn, card, "AutoRaiseLimit", &1000.0f32)?;
        Ok((card, history))
    })?;

    let buy = |amount: f32| {
        db.with_txn(|txn| {
            db.invoke(txn, card, "Buy", |c: &mut CredCard| {
                c.curr_bal += amount;
                Ok(())
            })
        })
    };
    let pay_bill = |amount: f32| {
        db.with_txn(|txn| {
            db.invoke(txn, card, "PayBill", |c: &mut CredCard| {
                c.curr_bal -= amount;
                Ok(())
            })
        })
    };
    let show = || -> ode::core::Result<()> {
        db.with_txn(|txn| {
            let c = db.read(txn, card)?;
            let h = db.read(txn, history)?;
            println!(
                "  state: balance={:.0} limit={:.0} marks={:?}",
                c.curr_bal, c.cred_lim, h.marks
            );
            Ok(())
        })
    };

    println!("Buy 900 (within the limit; arms AutoRaiseLimit):");
    buy(900.0)?;
    show()?;

    println!("PayBill 100 (completes the relative event):");
    pay_bill(100.0)?;
    show()?;

    println!("Buy 1500 (balance 2300 > limit 2000 — denied, black-marked):");
    match buy(1500.0) {
        Err(e) if e.is_abort() => println!("  purchase aborted: {e}"),
        other => panic!("expected an abort, got {other:?}"),
    }
    show()?;

    db.with_txn(|txn| {
        let c = db.read(txn, card)?;
        let h = db.read(txn, history)?;
        assert_eq!(c.curr_bal, 800.0, "denied purchase rolled back");
        assert_eq!(c.cred_lim, 2000.0, "limit was auto-raised once");
        assert_eq!(h.marks, vec!["Over Limit"], "the black mark stuck");
        Ok(())
    })?;

    // Explain the AutoRaiseLimit firing from the always-on flight
    // recorder: the posted events, every FSM advance (including the
    // True(MoreCred) mask pseudo-event) with Figure 1's state numbers,
    // and the firing itself, in causal order.
    println!("why did AutoRaiseLimit fire? — the flight recorder's answer:");
    for r in db.flight_log() {
        use ode::obs::FlightEvent::*;
        match r.event {
            EventPosted { event, anchor } => {
                println!("  #{:<4} event {event} posted on object {anchor:#x}", r.seq)
            }
            FsmAdvanced {
                trigger,
                from_state,
                to_state,
                pseudo,
            } => {
                let via = match pseudo {
                    None => "a real event".to_string(),
                    Some(t) => format!(
                        "the {}(mask) pseudo-event",
                        if t { "True" } else { "False" }
                    ),
                };
                println!(
                    "  #{:<4} {trigger:?}: state {from_state} -> {to_state} via {via}",
                    r.seq
                )
            }
            TriggerFired { trigger, coupling } => {
                println!("  #{:<4} {trigger:?} FIRED ({coupling:?} coupling)", r.seq)
            }
            _ => {}
        }
    }

    println!("done — all invariants hold");
    Ok(())
}
