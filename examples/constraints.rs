//! Constraints as triggers — the paper's closing thought: "we need to
//! support intra- and inter-object constraints as a special case of
//! triggers" (§8), with the recommended machinery: local rules for cheap
//! intra-transaction checks, timed triggers for deadlines, and monitored
//! classes for volatile state.
//!
//! Run with: `cargo run --example constraints`

use bytes::BytesMut;
use ode::prelude::*;

#[derive(Debug, Clone)]
struct Order {
    item: String,
    qty: i32,
    paid: bool,
    shipped: bool,
}
impl Encode for Order {
    fn encode(&self, buf: &mut BytesMut) {
        self.item.encode(buf);
        self.qty.encode(buf);
        self.paid.encode(buf);
        self.shipped.encode(buf);
    }
}
impl Decode for Order {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Order {
            item: String::decode(buf)?,
            qty: i32::decode(buf)?,
            paid: bool::decode(buf)?,
            shipped: bool::decode(buf)?,
        })
    }
}
impl OdeObject for Order {
    const CLASS: &'static str = "Order";
}

fn main() -> ode::core::Result<()> {
    let db = Database::volatile();

    let order_class = ClassBuilder::new("Order")
        .after_event("Ship")
        .after_event("Amend")
        .timer_event("nightly")
        .mask("Unpaid", |ctx| {
            let o: Order = ctx.object()?;
            Ok(!o.paid)
        })
        .mask("BadQty", |ctx| {
            let o: Order = ctx.object()?;
            Ok(o.qty <= 0)
        })
        // Intra-object constraint: never ship an unpaid order. End-coupled,
        // so it judges the state the transaction tries to commit.
        .trigger(
            "NoShipUnpaid",
            "after Ship & Unpaid()",
            CouplingMode::End,
            Perpetual::Yes,
            |ctx| {
                let o: Order = ctx.object()?;
                if o.shipped && !o.paid {
                    println!("  [constraint] {} shipped unpaid — abort", o.item);
                    Err(ctx.tabort("ship-unpaid constraint"))
                } else {
                    Ok(())
                }
            },
        )
        // Cheap transient validation via a *local rule*: quantity sanity
        // inside this transaction only (no storage, no write locks).
        .trigger(
            "QtySanity",
            "after Amend & BadQty()",
            CouplingMode::Immediate,
            Perpetual::Yes,
            |ctx| {
                let o: Order = ctx.object()?;
                println!("  [local rule] bad quantity {} on {}", o.qty, o.item);
                Err(ctx.tabort("qty must be positive"))
            },
        )
        // Deadline: an order shipped but still unpaid when two nightly
        // ticks pass gets escalated.
        .trigger(
            "Escalate",
            "(after Ship & Unpaid()), timer nightly, timer nightly",
            CouplingMode::Immediate,
            Perpetual::No,
            |ctx| {
                let o: Order = ctx.object()?;
                println!("  [timed] escalating unpaid shipment of {}", o.item);
                Ok(())
            },
        )
        .build(db.registry())?;
    db.register_class(&order_class)?;

    // --- local rule demo -------------------------------------------------
    let order = db.with_txn(|txn| {
        db.pnew(
            txn,
            &Order {
                item: "widget".into(),
                qty: 3,
                paid: true,
                shipped: false,
            },
        )
    })?;

    println!("amending to qty=0 under a local rule (aborts):");
    let err = db
        .with_txn(|txn| {
            db.activate_local(txn, order, "QtySanity", &())?;
            db.invoke(txn, order, "Amend", |o: &mut Order| {
                o.qty = 0;
                Ok(())
            })
        })
        .unwrap_err();
    println!("  -> {err}");
    // The rule evaporated with its transaction: the same amend in a fresh
    // transaction (without activating the rule) is not checked.
    db.with_txn(|txn| {
        db.invoke(txn, order, "Amend", |o: &mut Order| {
            o.qty = 5;
            Ok(())
        })
    })?;

    // --- persistent end-coupled constraint -------------------------------
    db.with_txn(|txn| {
        db.activate(txn, order, "NoShipUnpaid", &())?;
        db.activate(txn, order, "Escalate", &())?;
        Ok(())
    })?;

    println!("shipping a paid order (fine):");
    db.with_txn(|txn| {
        db.invoke(txn, order, "Ship", |o: &mut Order| {
            o.shipped = true;
            Ok(())
        })
    })?;

    let order2 = db.with_txn(|txn| {
        let o = db.pnew(
            txn,
            &Order {
                item: "gadget".into(),
                qty: 1,
                paid: false,
                shipped: false,
            },
        )?;
        db.activate(txn, o, "NoShipUnpaid", &())?;
        db.activate(txn, o, "Escalate", &())?;
        Ok(o)
    })?;
    println!("shipping an unpaid order (constraint aborts at commit):");
    let err = db
        .with_txn(|txn| {
            db.invoke(txn, order2, "Ship", |o: &mut Order| {
                o.shipped = true;
                Ok(())
            })
        })
        .unwrap_err();
    println!("  -> {err}");

    println!("ship-unpaid in a transaction that also pays (heals; commits):");
    db.with_txn(|txn| {
        db.invoke(txn, order2, "Ship", |o: &mut Order| {
            o.shipped = true;
            Ok(())
        })?;
        db.update_with(txn, order2, |o| o.paid = true)?;
        Ok(())
    })?;

    // --- timed escalation -------------------------------------------------
    let order3 = db.with_txn(|txn| {
        let o = db.pnew(
            txn,
            &Order {
                item: "gizmo".into(),
                qty: 2,
                paid: false,
                shipped: false,
            },
        )?;
        db.activate(txn, o, "Escalate", &())?;
        Ok(o)
    })?;
    db.with_txn(|txn| {
        // Ship without the payment constraint on this one.
        db.invoke(txn, order3, "Ship", |o: &mut Order| {
            o.shipped = true;
            Ok(())
        })
    })?;
    println!("two nightly ticks pass:");
    db.with_txn(|txn| {
        db.tick(txn, "nightly")?;
        Ok(())
    })?;
    db.with_txn(|txn| {
        db.tick(txn, "nightly")?;
        Ok(())
    })?;

    // --- monitored (volatile) classes for scratch state -------------------
    println!("monitored class: rate-limiting a volatile API session:");
    let session_class = MonitoredClassBuilder::<u32>::new("ApiSession")
        .after_event("Call")
        .mask("TooMany", |calls, _| *calls > 3)
        .trigger(
            "RateLimit",
            "after Call & TooMany()",
            Perpetual::Yes,
            |calls, _| {
                println!("  [monitored] rate limit hit at {calls} calls");
                Ok(())
            },
        )
        .build(db.registry())?;
    let sessions = MonitoredSpace::new(session_class);
    let s = sessions.create(0u32);
    sessions.activate(s, "RateLimit", &())?;
    for _ in 0..5 {
        sessions.invoke(s, "Call", |calls| {
            *calls += 1;
            Ok(())
        })?;
    }

    println!("done");
    Ok(())
}
