//! Program trading — the paper's motivating application (§3: "applications
//! such as program trading whose actions are triggered based on patterns
//! of event occurrences as opposed to single basic events") including the
//! §8 inter-object rule: "if AT&T goes below 60 and the price of gold
//! stabilizes, buy 1000 shares of AT&T".
//!
//! Run with: `cargo run --example program_trading`

use bytes::BytesMut;
use ode::prelude::*;

#[derive(Debug, Clone)]
struct Stock {
    symbol: String,
    price: f32,
    prev: f32,
}
impl Encode for Stock {
    fn encode(&self, buf: &mut BytesMut) {
        self.symbol.encode(buf);
        self.price.encode(buf);
        self.prev.encode(buf);
    }
}
impl Decode for Stock {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Stock {
            symbol: String::decode(buf)?,
            price: f32::decode(buf)?,
            prev: f32::decode(buf)?,
        })
    }
}
impl OdeObject for Stock {
    const CLASS: &'static str = "Stock";
}

#[derive(Debug, Clone, Default)]
struct Portfolio {
    orders: Vec<String>,
}
impl Encode for Portfolio {
    fn encode(&self, buf: &mut BytesMut) {
        self.orders.encode(buf);
    }
}
impl Decode for Portfolio {
    fn decode(buf: &mut &[u8]) -> ode::storage::Result<Self> {
        Ok(Portfolio {
            orders: Vec::<String>::decode(buf)?,
        })
    }
}
impl OdeObject for Portfolio {
    const CLASS: &'static str = "Portfolio";
}

fn main() -> ode::core::Result<()> {
    let db = Database::volatile();
    let portfolio_class = ClassBuilder::new("Portfolio").build(db.registry())?;
    db.register_class(&portfolio_class)?;

    // Single-object pattern trigger: three consecutive drops ⇒ sell.
    let stock_class = ClassBuilder::new("Stock")
        .after_event("SetPrice")
        .mask("Dropped", |ctx| {
            let s: Stock = ctx.object()?;
            Ok(s.price < s.prev)
        })
        .trigger(
            "SellOnSlide",
            // A pattern of event occurrences, not a single event: three
            // consecutive dropping ticks.
            "(after SetPrice & Dropped()), (after SetPrice & Dropped()), \
             (after SetPrice & Dropped())",
            CouplingMode::Immediate,
            Perpetual::No,
            |ctx| {
                let portfolio: PersistentPtr<Portfolio> = ctx.params()?;
                let s: Stock = ctx.object()?;
                let order = format!("SELL {} @ {:.2}", s.symbol, s.price);
                println!("  [SellOnSlide] {order}");
                ctx.db()
                    .update_with(ctx.txn(), portfolio, |p| p.orders.push(order))
            },
        )
        .build(db.registry())?;
    db.register_class(&stock_class)?;

    // The inter-object rule from §8.
    let pair_watch = InterClassBuilder::new("AttGoldWatch")
        .anchor("att", &stock_class)
        .anchor("gold", &stock_class)
        .mask("AttBelow60", |ctx| {
            let att: Stock = ctx
                .db()
                .read(ctx.txn(), PersistentPtr::from_oid(ctx.named_anchor("att")?))?;
            Ok(att.price < 60.0)
        })
        .mask("GoldStable", |ctx| {
            let gold: Stock = ctx.db().read(
                ctx.txn(),
                PersistentPtr::from_oid(ctx.named_anchor("gold")?),
            )?;
            Ok((gold.price - gold.prev).abs() < 0.5)
        })
        .trigger(
            "BuyAtt",
            "relative((after att.SetPrice & AttBelow60()), \
                      (after gold.SetPrice & GoldStable()))",
            CouplingMode::Immediate,
            Perpetual::No,
            |ctx| {
                let portfolio: PersistentPtr<Portfolio> = ctx.params()?;
                println!("  [BuyAtt] AT&T below 60 and gold stabilized: BUY 1000 T");
                ctx.db().update_with(ctx.txn(), portfolio, |p| {
                    p.orders.push("BUY 1000 T".to_string())
                })
            },
        )
        .build(db.registry())?;
    db.register_class(&pair_watch)?;

    let (att, gold, acme, portfolio) = db.with_txn(|txn| {
        let portfolio = db.pnew(txn, &Portfolio::default())?;
        let att = db.pnew(
            txn,
            &Stock {
                symbol: "T".into(),
                price: 63.0,
                prev: 63.0,
            },
        )?;
        let gold = db.pnew(
            txn,
            &Stock {
                symbol: "AU".into(),
                price: 2400.0,
                prev: 2380.0,
            },
        )?;
        let acme = db.pnew(
            txn,
            &Stock {
                symbol: "ACME".into(),
                price: 10.0,
                prev: 10.0,
            },
        )?;
        db.activate(txn, acme, "SellOnSlide", &portfolio)?;
        db.activate_inter(
            txn,
            "AttGoldWatch",
            "BuyAtt",
            &[("att", att.oid()), ("gold", gold.oid())],
            &portfolio,
        )?;
        Ok((att, gold, acme, portfolio))
    })?;

    let tick = |stock: PersistentPtr<Stock>, price: f32| {
        db.with_txn(|txn| {
            db.invoke(txn, stock, "SetPrice", |s: &mut Stock| {
                s.prev = s.price;
                s.price = price;
                Ok(())
            })
        })
    };

    println!("feeding the tape:");
    // ACME slides for three ticks -> SellOnSlide fires on the third.
    for price in [9.5, 9.2, 8.8] {
        println!("ACME -> {price}");
        tick(acme, price)?;
    }
    // AT&T dips below 60 (arming BuyAtt)…
    println!("T -> 59.5");
    tick(att, 59.5)?;
    // …gold jumps around (not stable)…
    println!("AU -> 2500 (jumpy)");
    tick(gold, 2500.0)?;
    // …then stabilizes: BuyAtt fires.
    println!("AU -> 2500.2 (stable)");
    tick(gold, 2500.2)?;

    let orders = db.with_txn(|txn| Ok(db.read(txn, portfolio)?.orders))?;
    println!("orders executed: {orders:#?}");
    assert_eq!(orders.len(), 2);
    assert!(orders[0].starts_with("SELL ACME"));
    assert_eq!(orders[1], "BUY 1000 T");
    Ok(())
}
