//! Figure 1 over the wire: N OS processes define and exercise the §4
//! credit-card triggers through `ode-server`, entirely in DDL.
//!
//! Run with: `cargo run --release --example credit_card_server`
//!
//! The parent process starts an in-process server on an ephemeral port,
//! issues the schema DDL once, then re-execs itself `CLIENTS` times as
//! real OS client processes. Each client connects, re-issues the same
//! DDL (idempotent — `CREATE CLASS`/`CREATE TRIGGER` with identical text
//! is a no-op, so clients never race the schema), creates its own card,
//! activates the Figure 1 triggers on it, and runs the §4 scenario:
//!
//! * `Buy 900` then `PayBill` fires `AutoRaiseLimit` with *immediate*
//!   coupling — the client asserts the raised limit is visible **inside
//!   the same transaction**, before COMMIT;
//! * an over-limit `Buy` trips `DenyCredit`'s `tabort`, and the client
//!   asserts the balance rolled back.
//!
//! Finally the parent scrapes the server's Prometheus surface (`METRICS`)
//! and checks that exactly `2 × CLIENTS` immediate firings were counted —
//! one AutoRaiseLimit and one DenyCredit per client process.
//!
//! With `ODE_WIRE_PIPELINE=1` every client runs the same scenario over
//! protocol-v2 batch frames instead of one statement per round trip:
//! schema setup in one frame, the whole §4 transaction (including the
//! in-txn `GET`) in another, and the over-limit denial in a third. The
//! assertions are identical — CI runs the example both ways.

use ode_core::Engine;
use ode_server::Server;
use ode_testutil::WireClient;
use std::process::Command;

const CLIENTS: usize = 4;
const TOKEN: &str = "fig1";

const SCHEMA: &[&str] = &[
    "CREATE CLASS CredCard { \
        FIELD cred_lim = 1000; FIELD curr_bal = 0; FIELD good_hist = 1; \
        EVENT AFTER Buy; EVENT AFTER PayBill; \
        MASK OverLimit WHEN curr_bal > cred_lim; \
        MASK MoreCred WHEN curr_bal > 0.8 * cred_lim AND good_hist == 1; }",
    "CREATE TRIGGER AutoRaiseLimit ON CredCard \
        WHEN relative((after Buy & MoreCred()), after PayBill) \
        COUPLING immediate DO SET cred_lim = cred_lim + PARAM",
    "CREATE TRIGGER DenyCredit ON CredCard PERPETUAL \
        WHEN after Buy & OverLimit() \
        COUPLING immediate DO ABORT 'Over Limit'",
];

fn main() {
    let mut args = std::env::args().skip(1);
    if let Some(mode) = args.next() {
        assert_eq!(mode, "client");
        let addr = args.next().expect("client needs <addr>");
        let idx: usize = args.next().expect("client needs <idx>").parse().unwrap();
        client(&addr, idx);
        return;
    }

    // Parent: serve a volatile engine and fan out real OS processes.
    let engine = Engine::volatile();
    let server = Server::start(std::sync::Arc::clone(&engine), "127.0.0.1:0", TOKEN).expect("bind");
    let addr = server.addr().to_string();
    // CI sets ODE_METRICS_ADDR to also expose the HTTP scrape surface
    // and curl it while the example holds the engine alive (see below).
    let metrics_server = std::env::var("ODE_METRICS_ADDR").ok().map(|maddr| {
        let m = ode_server::MetricsServer::start(std::sync::Arc::clone(&engine), &maddr)
            .expect("bind metrics");
        println!("METRICS_HTTP {}", m.addr());
        m
    });
    println!("server on {addr}, spawning {CLIENTS} client processes");

    let mut admin = WireClient::connect(&addr, TOKEN).expect("connect");
    admin.exec("CREATE DATABASE bank");
    admin.exec("USE bank");
    for stmt in SCHEMA {
        admin.exec(stmt);
    }

    let exe = std::env::current_exe().expect("current_exe");
    let children: Vec<_> = (0..CLIENTS)
        .map(|idx| {
            Command::new(&exe)
                .args(["client", &addr, &idx.to_string()])
                .spawn()
                .expect("spawn client")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait");
        assert!(status.success(), "a client process failed");
    }

    // Every client fired AutoRaiseLimit once and DenyCredit once, all
    // immediate-coupled; the shared metrics surface proves it.
    let metrics = admin.exec("METRICS");
    let immediate: u64 = metrics
        .lines()
        .find(|l| l.starts_with("ode_firings_immediate{db=\"bank\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .expect("ode_firings_immediate sample");
    assert_eq!(
        immediate,
        (2 * CLIENTS) as u64,
        "expected one AutoRaiseLimit + one DenyCredit firing per client"
    );
    println!("all {CLIENTS} clients done; {immediate} immediate firings observed");
    if let Some(metrics) = metrics_server {
        // Hold the scrape endpoint open until the driver (CI) says it is
        // done curling: wait for one line on stdin, then exit cleanly.
        println!("READY_FOR_SCRAPE");
        let mut line = String::new();
        let _ = std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut line);
        metrics.shutdown();
    }
    server.shutdown();
}

/// One client process: its own card, its own triggers, the §4 scenario.
/// `ODE_WIRE_PIPELINE=1` (inherited from the parent) switches it to
/// protocol-v2 batch frames.
fn client(addr: &str, idx: usize) {
    let pipelined = std::env::var("ODE_WIRE_PIPELINE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mut c = WireClient::connect(addr, TOKEN).expect("connect");
    // Idempotent re-issue: identical definitions are accepted no-ops, so
    // client processes need no startup coordination with the parent.
    if pipelined {
        let mut setup: Vec<&str> = vec!["USE bank"];
        setup.extend_from_slice(SCHEMA);
        let replies = c.exec_batch(&setup, true).expect("setup batch");
        assert!(
            replies.iter().all(|r| r == "OK"),
            "client {idx}: {replies:?}"
        );
    } else {
        c.exec("USE bank");
        for stmt in SCHEMA {
            c.exec(stmt);
        }
    }
    let card = c.exec("NEW CredCard");
    c.exec(&format!("ACTIVATE AutoRaiseLimit ON {card} WITH 1000"));
    c.exec(&format!("ACTIVATE DenyCredit ON {card}"));

    // Buy 900 arms the relative trigger; PayBill fires it immediately.
    // Retry the block: concurrent clients can collide on storage latches.
    let buy = format!("CALL {card} Buy SET curr_bal = curr_bal + 900");
    let pay = format!("CALL {card} PayBill SET curr_bal = curr_bal - 100");
    let get_lim = format!("GET {card} cred_lim");
    if pipelined {
        // The whole transaction in one frame; a mid-batch conflict
        // aborts it (tabort fails the rest of the frame) and we retry.
        let mut committed = false;
        for _ in 0..16 {
            let replies = c
                .exec_batch(&["BEGIN", &buy, &pay, &get_lim, "COMMIT"], false)
                .expect("txn batch");
            if replies.iter().all(|r| !r.starts_with("ERR")) {
                // Immediate coupling: the raised limit was visible
                // before the COMMIT later in the same frame.
                assert_eq!(replies[3], "OK 2000", "client {idx}: in-txn firing");
                committed = true;
                break;
            }
            let err = replies.iter().find(|r| r.starts_with("ERR")).unwrap();
            assert!(
                err.contains("deadlock") || err.contains("lock timeout"),
                "client {idx}: {err}"
            );
        }
        assert!(committed, "client {idx}: transaction batch never committed");
    } else {
        c.with_txn_retry(16, |c| {
            c.try_exec(&buy)?;
            c.try_exec(&pay)?;
            // Immediate coupling: the raised limit is visible before COMMIT.
            let lim = c.try_exec(&get_lim)?;
            assert_eq!(lim, "2000", "client {idx}: immediate firing in-txn");
            Ok(Some(()))
        })
        .expect("raise-limit transaction")
        .expect("committed");
    }

    // Over-limit buy: DenyCredit taborts and the balance rolls back.
    let deny = format!("CALL {card} Buy SET curr_bal = curr_bal + 1500");
    if pipelined {
        let replies = c
            .exec_batch(
                &[&deny, &format!("GET {card} curr_bal"), &get_lim],
                false, // CONTINUE: the autocommit error doesn't doom the GETs
            )
            .expect("deny batch");
        assert!(
            replies[0].contains("Over Limit"),
            "client {idx}: {replies:?}"
        );
        assert_eq!(replies[1], "OK 800", "client {idx}: balance rolled back");
        assert_eq!(replies[2], "OK 2000");
    } else {
        let err = c
            .try_exec(&deny)
            .expect_err("over-limit buy must be denied");
        assert!(err.contains("Over Limit"), "client {idx}: {err}");
        assert_eq!(c.exec(&format!("GET {card} curr_bal")), "800");
        assert_eq!(c.exec(&get_lim), "2000");
    }
    println!("client {idx}: card {card} ok");
}
