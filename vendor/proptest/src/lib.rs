//! Offline vendored mini-`proptest`.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_recursive`
//! / `boxed`, strategies for ranges, tuples and collections, `any::<T>`,
//! and the `proptest!` / `prop_assert*` / `prop_oneof!` macros.
//!
//! Differences from the real crate, deliberately accepted:
//! * **no shrinking** — a failing case reports its inputs (via the
//!   assertion message) but is not minimised;
//! * **deterministic seeding** — the RNG seed derives from the test
//!   name, so a failure reproduces exactly on re-run; set
//!   `PROPTEST_SEED=<u64>` to explore a different universe;
//! * strategies are sampled fresh per case with a splitmix64 generator.

pub mod test_runner {
    /// Outcome signal a generated test body can return early with.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: discard the case, try another.
        Reject(String),
        /// `prop_assert*!` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
        /// Build a rejection.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), XORed with `PROPTEST_SEED`
        /// when set so CI can explore alternative universes.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra;
                }
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift; bias is negligible for test generation.
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Fair coin.
        pub fn gen_bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest there is no value tree / shrinking: a
    /// strategy is just a samplable distribution.
    pub trait Strategy: Clone {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + Clone,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a clonable boxed strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.sample(rng)))
        }

        /// Build recursive values: `self` generates leaves, `f` wraps an
        /// inner strategy into composites. `depth` bounds recursion; the
        /// `desired_size`/`expected_branch_size` hints are accepted for
        /// API compatibility but unused.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let mut cur = self.clone().boxed();
            for _ in 0..depth {
                let leaf = self.clone().boxed();
                let deeper = f(cur).boxed();
                // Recurse with probability 2/3, bottom out otherwise, so
                // generated trees stay small but exercise every depth.
                cur = Union::weighted(vec![(1, leaf), (2, deeper)]).boxed();
            }
            cur
        }
    }

    /// Clonable type-erased strategy (the `BoxedStrategy` of proptest).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U + Clone,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform (or weighted) choice among boxed alternatives.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<T> Union<T> {
        /// Uniform choice.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Weighted choice.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical `any::<T>()` strategy.
    pub trait Arbitrary: Sized {
        /// The strategy `any::<Self>()` returns.
        fn arbitrary() -> BoxedStrategy<Self>;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary()
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary() -> BoxedStrategy<Self> {
                    BoxedStrategy(Rc::new(|rng: &mut TestRng| rng.next_u64() as $t))
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary() -> BoxedStrategy<Self> {
            BoxedStrategy(Rc::new(|rng: &mut TestRng| rng.gen_bool()))
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Size bounds for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        assert!(size.lo < size.hi, "empty collection size range");
        VecStrategy { elem, size }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    // Re-export so `prop::collection` call sites can name boxed element
    // strategies without importing the strategy module.
    pub use super::strategy::BoxedStrategy;
}

/// `prop::…` namespace as the prelude exposes it.
pub mod prop {
    pub use super::collection;
}

/// The usual `use proptest::prelude::*;` import surface.
pub mod prelude {
    pub use super::prop;
    pub use super::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`",
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
}

/// Discard the current case (it does not count toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declare property tests. Supports the
/// `#![proptest_config(…)]` header and any number of
/// `#[test] fn name(arg in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut done: u32 = 0;
            let mut rejected: u32 = 0;
            while done < config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )*
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => done += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.cases.saturating_mul(32),
                            "proptest {}: too many rejected cases ({} after {} ok)",
                            stringify!($name), rejected, done,
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), done, msg,
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_tree() -> impl Strategy<Value = u32> {
        let leaf = prop_oneof![Just(1u32), 2..5u32];
        leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_stay_in_bounds(x in 3..9u8, v in prop::collection::vec(0..4u16, 0..6)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(v.len() < 6);
            for e in &v {
                prop_assert!(*e < 4, "element {} out of range", e);
            }
        }

        #[test]
        fn recursive_values_positive(t in small_tree(), flip in any::<bool>()) {
            prop_assume!(t != u32::MAX);
            prop_assert!(t >= 1);
            prop_assert_eq!(u32::from(flip) + u32::from(!flip), 1);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    #[allow(unnameable_test_items)] // proptest! passes #[test] through
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[test]
            fn inner(x in 0..10u32) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
