//! Offline vendored subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the parking_lot API shape it uses: `Mutex`/`RwLock` whose
//! guards come back without a poison `Result`, and a `Condvar` whose
//! `wait`/`wait_for` borrow the guard mutably instead of consuming it.
//! Poisoned locks are transparently recovered (`into_inner`) because the
//! engine's tests intentionally cross panics over lock acquisitions.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// New unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Did the wait end because the timeout elapsed?
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable working on [`MutexGuard`]s borrowed mutably.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// New unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guard_derefs() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut started = m.lock();
            *started = true;
            cv.notify_one();
            drop(started);
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            cv.wait(&mut started);
        }
        drop(started);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
