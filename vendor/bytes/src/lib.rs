//! Offline vendored subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `bytes` API it actually uses:
//! [`BytesMut`] as a growable byte buffer, [`Bytes`] as its frozen form,
//! and the [`Buf`]/[`BufMut`] cursor traits. Semantics (big-endian
//! integer accessors, `split_off`, advancing reads) match the real crate
//! for the covered surface; anything exotic (shared views, refcounted
//! splitting) is intentionally absent.

use std::borrow::Borrow;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Growable byte buffer, API-compatible with `bytes::BytesMut` for the
/// subset this workspace uses.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// New empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// New empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Reserve space for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Drop all contents, keeping capacity.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Shorten the buffer to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.inner.truncate(len);
    }

    /// Append a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Split the buffer at `at`; `self` keeps `[0, at)`, the returned
    /// buffer holds `[at, len)`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            inner: self.inner.split_off(at),
        }
    }

    /// Split the buffer at `at`; the returned buffer holds `[0, at)` and
    /// `self` keeps the tail.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let tail = self.inner.split_off(at);
        BytesMut {
            inner: std::mem::replace(&mut self.inner, tail),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// View as a byte slice.
    pub fn as_ref_slice(&self) -> &[u8] {
        &self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsMut<[u8]> for BytesMut {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl Borrow<[u8]> for BytesMut {
    fn borrow(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        BytesMut { inner: v.to_vec() }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.inner
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

impl<'a> Extend<&'a u8> for BytesMut {
    fn extend<T: IntoIterator<Item = &'a u8>>(&mut self, iter: T) {
        self.inner.extend(iter.into_iter().copied());
    }
}

/// Immutable byte buffer (frozen [`BytesMut`]).
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// New empty buffer.
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
        }
    }

    /// Bytes in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in &self.inner {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: v }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { inner: v.to_vec() }
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Bytes { inner: b.inner }
    }
}

/// Read cursor over a byte source. Integer accessors are big-endian,
/// matching the real `bytes` crate defaults.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Are any bytes left?
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian i16.
    fn get_i16(&mut self) -> i16 {
        self.get_u16() as i16
    }

    /// Read a big-endian i32.
    fn get_i32(&mut self) -> i32 {
        self.get_u32() as i32
    }

    /// Read a big-endian i64.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read a big-endian f32.
    fn get_f32(&mut self) -> f32 {
        f32::from_bits(self.get_u32())
    }

    /// Read a big-endian f64.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Read a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian i16.
    fn get_i16_le(&mut self) -> i16 {
        self.get_u16_le() as i16
    }

    /// Read a little-endian i32.
    fn get_i32_le(&mut self) -> i32 {
        self.get_u32_le() as i32
    }

    /// Read a little-endian i64.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Read a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink. Integer writers are
/// big-endian, matching the real `bytes` crate defaults.
pub trait BufMut {
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Append a big-endian i16.
    fn put_i16(&mut self, v: i16) {
        self.put_u16(v as u16);
    }
    /// Append a big-endian i32.
    fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }
    /// Append a big-endian i64.
    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }
    /// Append a big-endian f32.
    fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }
    /// Append a big-endian f64.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian i16.
    fn put_i16_le(&mut self, v: i16) {
        self.put_u16_le(v as u16);
    }
    /// Append a little-endian i32.
    fn put_i32_le(&mut self, v: i32) {
        self.put_u32_le(v as u32);
    }
    /// Append a little-endian i64.
    fn put_i64_le(&mut self, v: i64) {
        self.put_u64_le(v as u64);
    }
    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
    /// Append a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_f64(1.5);
        let mut r: &[u8] = &b;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn split_off_keeps_prefix() {
        let mut b = BytesMut::from(&b"hello world"[..]);
        let tail = b.split_off(5);
        assert_eq!(&b[..], b"hello");
        assert_eq!(&tail[..], b" world");
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut r: &[u8] = &data;
        r.advance(2);
        assert_eq!(r.chunk(), &[3, 4]);
        assert_eq!(r.remaining(), 2);
    }
}
