//! Offline vendored mini-`criterion`.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the slice of the criterion API the bench suite uses:
//! `Criterion` with builder knobs, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: per benchmark it warms up for `warm_up_time`, then
//! takes `sample_size` samples whose total wall time approximates
//! `measurement_time`, and reports min / median / mean / max per
//! iteration plus derived throughput. Statistical analysis, plotting,
//! and baseline comparison are intentionally absent — the numbers are
//! for before/after ledgers, not publication.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Samples taken per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IdLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.label();
        let cfg = (self.sample_size, self.warm_up_time, self.measurement_time);
        run_bench(&label, cfg, None, &mut f);
        self
    }
}

/// Label source for `bench_function`: plain strings or [`BenchmarkId`]s.
pub trait IdLabel {
    /// Render the label.
    fn label(&self) -> String;
}

impl IdLabel for &str {
    fn label(&self) -> String {
        (*self).to_string()
    }
}

impl IdLabel for String {
    fn label(&self) -> String {
        self.clone()
    }
}

impl IdLabel for BenchmarkId {
    fn label(&self) -> String {
        self.0.clone()
    }
}

/// Function + parameter benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` label.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Per-iteration work volume, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Samples taken per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Target total measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Time spent warming up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Per-iteration work volume for throughput lines.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IdLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.label());
        let cfg = (
            self.criterion.sample_size,
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
        );
        run_bench(&label, cfg, self.throughput, &mut f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (reporting already happened inline).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    (sample_size, warm_up, measurement): (usize, Duration, Duration),
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Warm-up doubles as iteration-count calibration.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= warm_up {
            break;
        }
        if b.elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    }

    // Split the measurement budget across samples.
    let per_sample = measurement.div_f64(sample_size as f64);
    let mut nanos_per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut sampled: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < per_sample {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            sampled += iters;
            elapsed += b.elapsed;
        }
        nanos_per_iter.push(elapsed.as_nanos() as f64 / sampled.max(1) as f64);
    }
    nanos_per_iter.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timing"));
    let min = nanos_per_iter.first().copied().unwrap_or(0.0);
    let max = nanos_per_iter.last().copied().unwrap_or(0.0);
    let median = nanos_per_iter[nanos_per_iter.len() / 2];
    let mean = nanos_per_iter.iter().sum::<f64>() / nanos_per_iter.len().max(1) as f64;

    print!(
        "bench: {label:<52} [{} {} {}] (min {}, {} samples)",
        fmt_nanos(median),
        fmt_nanos(mean),
        fmt_nanos(max),
        fmt_nanos(min),
        nanos_per_iter.len(),
    );
    match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            let per_sec = n as f64 * 1e9 / median;
            print!("  {:.2} Melem/s", per_sec / 1e6);
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            let per_sec = n as f64 * 1e9 / median;
            print!("  {:.2} MiB/s", per_sec / (1024.0 * 1024.0));
        }
        _ => {}
    }
    println!();
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.2}s", ns / 1_000_000_000.0)
    }
}

/// Declare a bench group: plain form `criterion_group!(name, f1, f2)` or
/// configured form with `name = …; config = …; targets = …`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("chain", 4).0, "chain/4");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1));
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }
}
