//! Buffer pool for the disk engine.
//!
//! A GCLOCK-replacement cache of page frames over a [`DiskFile`]. The
//! pool is **steal-with-WAL-rule**: a dirty frame may be written back and
//! evicted at any time, provided the WAL is first flushed through the
//! frame's page LSN (WAL-before-data). Every update and delete logs a
//! full before-image, so undo of an in-flight transaction whose dirty
//! page was stolen is replayed from the log like any other — which is
//! what finally bounds the pool at its configured capacity under
//! write-heavy trigger firing. A pool with no WAL attached (volatile
//! engines, unit tests) falls back to the historical no-steal behaviour:
//! dirty frames are never evicted and the shard grows instead.
//!
//! Each frame keeps a *recovery LSN* (`rec_lsn`): the WAL end sampled
//! just before the frame's clean→dirty transition, i.e. a lower bound on
//! the first log record that dirtied it. The table of `(page, rec_lsn)`
//! pairs over all dirty frames is the dirty-page table a fuzzy
//! checkpoint logs, and `min(rec_lsn)` is the horizon the log can be
//! truncated behind.
//!
//! ## Eviction policy
//!
//! Replacement is GCLOCK — second-chance clock generalised to a
//! saturating reference *counter* (0..=3) per frame, incremented on hit
//! and decremented as the hand sweeps. A one-touch scan page peaks at
//! counter 1 and is reclaimed after one sweep, while the trigger
//!-descriptor working set (hit repeatedly, pinned near 3) survives a
//! larger-than-RAM scan — the scan resistance plain second-chance lacks.
//! Clean frames at counter zero are evicted first; a dirty frame at
//! counter zero is remembered as the steal fallback.
//!
//! ## Partitioning
//!
//! The frame table is partitioned into a power-of-two number of shards by
//! page id, each with its own mutex, clock hand, and share of the
//! capacity, so concurrent pins on unrelated pages stop funnelling through
//! one process-wide mutex (`StorageOptions::shards`; `1` reproduces the
//! original single-mutex pool). The shard count is clamped to the frame
//! capacity so tiny pools keep their configured residency bound, and the
//! capacity is split evenly (minimum one frame per shard). Clock
//! replacement runs independently per shard — eviction quality is
//! unchanged because a page's shard is fixed, so each shard sees a
//! consistent sub-stream of accesses. Checkpoint flushing iterates every
//! shard but still writes pages in globally sorted order for sequential
//! I/O.

use crate::disk::DiskFile;
use crate::error::Result;
use crate::oid::PageId;
use crate::page::Page;
use crate::wal::Wal;
use ode_obs::{Metrics, TraceEvent};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default number of buffer-pool shards (clamped to the frame capacity).
pub const DEFAULT_POOL_SHARDS: usize = 8;

/// Saturation point of a frame's GCLOCK reference counter.
const MAX_REF: u8 = 3;

struct Frame {
    page: Page,
    dirty: bool,
    /// WAL end LSN sampled at this frame's clean→dirty transition: a
    /// lower bound on the first record that dirtied it. Meaningless while
    /// clean.
    rec_lsn: u64,
    /// GCLOCK reference counter (0..=[`MAX_REF`]).
    refbits: u8,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    /// Clock hand order (page ids, may contain stale entries lazily pruned).
    clock: Vec<PageId>,
    hand: usize,
    hits: u64,
    misses: u64,
    /// Clean frames evicted from this shard.
    evictions: u64,
    /// Dirty frames stolen (flushed WAL-first, then evicted) from this shard.
    steals: u64,
}

/// GCLOCK buffer pool with steal-with-WAL-rule write-back, partitioned by
/// page id.
pub struct BufferPool {
    disk: DiskFile,
    /// Soft frame limit per shard (see module docs).
    shard_capacity: usize,
    shards: Box<[Mutex<PoolInner>]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: usize,
    /// The log that must be flushed through a dirty frame's page LSN
    /// before the frame can be written back. `None` ⇒ no-steal.
    wal: Option<Arc<Wal>>,
    /// Pool-wide resident/dirty frame counts, mirrored into the
    /// `buf_resident_pages` / `buf_dirty_pages` gauges on every change.
    resident: AtomicU64,
    dirty: AtomicU64,
    metrics: Arc<Metrics>,
}

/// Cache statistics, exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that had to read the data file.
    pub misses: u64,
    /// Frames currently resident.
    pub resident: usize,
    /// Resident frames that are dirty.
    pub dirty: usize,
    /// Clean frames evicted across all shards.
    pub evictions: u64,
    /// Dirty frames stolen (WAL-first flush + evict) across all shards.
    pub steals: u64,
}

/// Per-shard slice of [`PoolStats`] (same fields, one shard's share).
pub type ShardStats = PoolStats;

impl BufferPool {
    /// Wrap a disk file with a pool of at most `capacity` frames
    /// (soft limit; see module docs) split over the default shard count.
    pub fn new(disk: DiskFile, capacity: usize) -> BufferPool {
        BufferPool::with_shards(disk, capacity, DEFAULT_POOL_SHARDS)
    }

    /// Like [`BufferPool::new`] with an explicit shard count. The count is
    /// rounded to a power of two and clamped to `capacity` (so sharding
    /// never raises the residency bound); `1` reproduces the
    /// pre-partitioning single-mutex pool.
    pub fn with_shards(disk: DiskFile, capacity: usize, shards: usize) -> BufferPool {
        let capacity = capacity.max(1);
        let mut n = shards.clamp(1, capacity).next_power_of_two();
        if n > capacity {
            n /= 2;
        }
        BufferPool {
            disk,
            shard_capacity: (capacity / n).max(1),
            shards: (0..n)
                .map(|_| {
                    Mutex::new(PoolInner {
                        frames: HashMap::new(),
                        clock: Vec::new(),
                        hand: 0,
                        hits: 0,
                        misses: 0,
                        evictions: 0,
                        steals: 0,
                    })
                })
                .collect(),
            mask: n - 1,
            wal: None,
            resident: AtomicU64::new(0),
            dirty: AtomicU64::new(0),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Replace the metrics registry (done once at storage assembly so the
    /// pool shares the database-wide registry).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = metrics;
    }

    /// Attach the WAL whose flush gate enables stealing dirty frames
    /// (done once at storage assembly). Without this the pool is no-steal.
    pub fn attach_wal(&mut self, wal: Arc<Wal>) {
        self.wal = Some(wal);
    }

    /// The underlying disk file.
    pub fn disk(&self) -> &DiskFile {
        &self.disk
    }

    /// Number of shards the frame table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total frame capacity (shards × per-shard share).
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    fn note_resident(&self, delta: i64) {
        let v = if delta >= 0 {
            self.resident.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.resident.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        };
        self.metrics.buf_resident_pages.set(v);
    }

    fn note_dirty(&self, delta: i64) {
        let v = if delta >= 0 {
            self.dirty.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.dirty.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        };
        self.metrics.buf_dirty_pages.set(v);
    }

    /// Lock one shard, counting contended acquisitions into the registry.
    fn lock_shard(&self, id: PageId) -> MutexGuard<'_, PoolInner> {
        let shard = &self.shards[(id as usize) & self.mask];
        match shard.try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.buf_shard_contention.inc();
                let started = Instant::now();
                let guard = shard.lock();
                self.metrics
                    .shard_acquire_nanos
                    .record(started.elapsed().as_nanos() as u64);
                guard
            }
        }
    }

    fn load_locked(&self, inner: &mut PoolInner, id: PageId) -> Result<()> {
        if let Some(frame) = inner.frames.get_mut(&id) {
            frame.refbits = (frame.refbits + 1).min(MAX_REF);
            inner.hits += 1;
            self.metrics.buf_hits.inc();
            return Ok(());
        }
        inner.misses += 1;
        self.metrics.buf_misses.inc();
        if inner.frames.len() >= self.shard_capacity {
            self.evict_one(inner)?;
        }
        let page = self.disk.read_page(id)?;
        inner.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                rec_lsn: 0,
                refbits: 1,
            },
        );
        inner.clock.push(id);
        self.note_resident(1);
        Ok(())
    }

    /// Make room for one frame. Preference order: a clean frame at
    /// reference count zero (plain eviction); failing that, with a WAL
    /// attached, a dirty frame at reference count zero is *stolen* —
    /// WAL flushed through its page LSN, image written back (journaled),
    /// frame dropped. With no WAL the shard grows (no-steal).
    fn evict_one(&self, inner: &mut PoolInner) -> Result<()> {
        let mut steps = 0;
        let mut dirty_victim: Option<PageId> = None;
        // Enough sweeps for a saturated reference counter to decay to
        // zero, plus the finding sweep.
        let max_steps = inner
            .clock
            .len()
            .saturating_mul(MAX_REF as usize + 1)
            .max(1);
        while steps < max_steps {
            if inner.clock.is_empty() {
                return Ok(());
            }
            let idx = inner.hand % inner.clock.len();
            let id = inner.clock[idx];
            match inner.frames.get_mut(&id) {
                None => {
                    // Stale clock entry; prune without advancing the hand.
                    inner.clock.swap_remove(idx);
                    continue;
                }
                Some(frame) => {
                    if frame.refbits == 0 {
                        if !frame.dirty {
                            inner.frames.remove(&id);
                            inner.clock.swap_remove(idx);
                            inner.evictions += 1;
                            self.note_resident(-1);
                            self.metrics.buf_evictions.inc();
                            self.metrics
                                .emit(|| TraceEvent::BufferEviction { page: id });
                            return Ok(());
                        }
                        if dirty_victim.is_none() {
                            dirty_victim = Some(id);
                        }
                    } else {
                        frame.refbits -= 1;
                    }
                    inner.hand = (idx + 1) % inner.clock.len().max(1);
                    steps += 1;
                }
            }
        }
        let (wal, victim) = match (&self.wal, dirty_victim) {
            (Some(wal), Some(victim)) => (wal, victim),
            // No WAL (volatile/test pool) or every frame hot: grow
            // instead of stealing.
            _ => return Ok(()),
        };
        let t0 = Instant::now();
        let frame = inner.frames.get(&victim).expect("victim is resident");
        // WAL-before-data: the log must cover the page's last change
        // before the image may overwrite the on-disk copy.
        wal.flush_through(frame.page.lsn())?;
        self.disk.write_page(victim, &frame.page)?;
        inner.frames.remove(&victim);
        inner.clock.retain(|&p| p != victim);
        inner.hand = if inner.clock.is_empty() {
            0
        } else {
            inner.hand % inner.clock.len()
        };
        inner.steals += 1;
        self.note_resident(-1);
        self.note_dirty(-1);
        self.metrics.pages_stolen.inc();
        self.metrics
            .evict_flush_micros
            .record(t0.elapsed().as_micros() as u64);
        self.metrics
            .emit(|| TraceEvent::BufferEviction { page: victim });
        Ok(())
    }

    /// Read access to a page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.lock_shard(id);
        self.load_locked(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id).expect("just loaded");
        Ok(f(&frame.page))
    }

    /// Write access to a page; marks the frame dirty, recording the WAL
    /// end as its recovery LSN on the clean→dirty transition (sampled
    /// *before* the closure appends the change's log records, so it lower-
    /// bounds them).
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.lock_shard(id);
        self.load_locked(&mut inner, id)?;
        let rec_lsn = match &self.wal {
            Some(wal) => wal.end_lsn(),
            None => 0,
        };
        let frame = inner.frames.get_mut(&id).expect("just loaded");
        if !frame.dirty {
            frame.dirty = true;
            frame.rec_lsn = rec_lsn;
            self.note_dirty(1);
        }
        Ok(f(&mut frame.page))
    }

    /// Allocate a fresh page on disk and cache it.
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.disk.allocate_page()?;
        let mut inner = self.lock_shard(id);
        if inner.frames.len() >= self.shard_capacity {
            self.evict_one(&mut inner)?;
        }
        inner.frames.insert(
            id,
            Frame {
                page: Page::new(),
                dirty: false,
                rec_lsn: 0,
                refbits: 1,
            },
        );
        inner.clock.push(id);
        self.note_resident(1);
        Ok(id)
    }

    /// Number of pages (including the header page).
    pub fn page_count(&self) -> u32 {
        self.disk.page_count()
    }

    /// The dirty-page table: `(page, rec_lsn)` for every dirty frame —
    /// what a fuzzy checkpoint's BeginCheckpoint record carries.
    pub fn dirty_page_table(&self) -> Vec<(PageId, u64)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let inner = shard.lock();
            out.extend(
                inner
                    .frames
                    .iter()
                    .filter(|(_, fr)| fr.dirty)
                    .map(|(&id, fr)| (id, fr.rec_lsn)),
            );
        }
        out
    }

    /// Minimum recovery LSN over all dirty frames (`None` when clean) —
    /// the dirty-page component of the log-truncation horizon.
    pub fn min_rec_lsn(&self) -> Option<u64> {
        self.dirty_page_table()
            .into_iter()
            .map(|(_, lsn)| lsn)
            .min()
    }

    /// Write one page back if (still) dirty, honouring WAL-before-data,
    /// and mark it clean — the fuzzy checkpointer's per-page flush. The
    /// shard stays locked across the WAL flush and the write so no
    /// concurrent mutation or steal can interleave with the copy-out.
    /// Returns whether a write happened.
    pub fn flush_page(&self, id: PageId) -> Result<bool> {
        let mut inner = self.lock_shard(id);
        let frame = match inner.frames.get_mut(&id) {
            Some(frame) if frame.dirty => frame,
            _ => return Ok(false),
        };
        if let Some(wal) = &self.wal {
            wal.flush_through(frame.page.lsn())?;
        }
        self.disk.write_page(id, &frame.page)?;
        frame.dirty = false;
        self.note_dirty(-1);
        Ok(true)
    }

    /// Write every dirty frame back to the data file (quiesced-checkpoint
    /// helper). Returns the number of pages written. Pages are written in
    /// globally sorted order for sequential I/O.
    pub fn flush_all(&self) -> Result<usize> {
        let mut ids: Vec<PageId> = Vec::new();
        for shard in self.shards.iter() {
            let inner = shard.lock();
            ids.extend(
                inner
                    .frames
                    .iter()
                    .filter(|(_, fr)| fr.dirty)
                    .map(|(id, _)| *id),
            );
        }
        ids.sort_unstable();
        let mut written = 0;
        for id in ids {
            if self.flush_page(id)? {
                written += 1;
            }
        }
        Ok(written)
    }

    /// Flush OS buffers for the data file.
    pub fn sync(&self) -> Result<()> {
        self.disk.sync()
    }

    /// Cache statistics snapshot (shard-at-a-time; totals are exact when
    /// quiesced, monotone approximations under concurrency).
    pub fn stats(&self) -> PoolStats {
        let mut stats = PoolStats {
            hits: 0,
            misses: 0,
            resident: 0,
            dirty: 0,
            evictions: 0,
            steals: 0,
        };
        for shard in self.shards.iter() {
            let inner = shard.lock();
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.resident += inner.frames.len();
            stats.dirty += inner.frames.values().filter(|f| f.dirty).count();
            stats.evictions += inner.evictions;
            stats.steals += inner.steals;
        }
        stats
    }

    /// Per-shard statistics, in shard order — makes an eviction/steal
    /// imbalance across shards visible.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| {
                let inner = shard.lock();
                ShardStats {
                    hits: inner.hits,
                    misses: inner.misses,
                    resident: inner.frames.len(),
                    dirty: inner.frames.values().filter(|f| f.dirty).count(),
                    evictions: inner.evictions,
                    steals: inner.steals,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    fn pool(capacity: usize) -> (TempDir, BufferPool) {
        let dir = TempDir::new("pool");
        let disk = DiskFile::create(&dir.file("db")).unwrap();
        (dir, BufferPool::new(disk, capacity))
    }

    /// A pool with a (record-less) WAL attached, i.e. steal enabled.
    fn steal_pool(capacity: usize) -> (TempDir, BufferPool) {
        let dir = TempDir::new("pool");
        let disk = DiskFile::create(&dir.file("db")).unwrap();
        let wal = Arc::new(Wal::open(&dir.file("wal"), false).unwrap());
        let mut pool = BufferPool::new(disk, capacity);
        pool.attach_wal(wal);
        (dir, pool)
    }

    #[test]
    fn shard_count_clamps_to_capacity() {
        let dir = TempDir::new("pool");
        let disk = DiskFile::create(&dir.file("db")).unwrap();
        // Tiny pool: sharding must not raise the residency bound.
        let p = BufferPool::new(disk, 2);
        assert_eq!(p.shard_count(), 2);
        let disk = DiskFile::create(&dir.file("db2")).unwrap();
        let p = BufferPool::with_shards(disk, 256, 1);
        assert_eq!(p.shard_count(), 1);
        let disk = DiskFile::create(&dir.file("db3")).unwrap();
        let p = BufferPool::with_shards(disk, 256, 6);
        assert_eq!(p.shard_count(), 8, "rounds to a power of two");
        let disk = DiskFile::create(&dir.file("db4")).unwrap();
        let p = BufferPool::with_shards(disk, 6, 6);
        assert_eq!(p.shard_count(), 4, "power of two within capacity");
    }

    #[test]
    fn read_through_and_cache_hit() {
        let (_d, pool) = pool(4);
        let id = pool.allocate_page().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"cached").unwrap();
        })
        .unwrap();
        let data = pool.with_page(id, |p| p.read(0).unwrap().to_vec()).unwrap();
        assert_eq!(data, b"cached");
        let s = pool.stats();
        assert!(s.hits >= 1);
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        // A pool with no WAL attached must keep the historical no-steal
        // guarantee: dirty frames are never written back or dropped.
        let (_d, pool) = pool(2);
        let mut ids = Vec::new();
        for i in 0..10u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 8]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        // All ten frames are dirty; no-steal means all stay resident even
        // though capacity is 2, and none were written to disk.
        assert_eq!(pool.stats().resident, 10);
        assert_eq!(pool.stats().dirty, 10);
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 8]);
        }
        // Disk still has the pristine pages (never stolen).
        let on_disk = pool.disk().read_page(ids[0]).unwrap();
        assert!(on_disk.read(0).is_none());
    }

    #[test]
    fn steal_bounds_residency_and_preserves_data() {
        // Satellite: once steal lands, resident pages never exceed the
        // configured capacity, even with every frame dirty.
        let (_d, pool) = steal_pool(2);
        let mut ids = Vec::new();
        for i in 0..10u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 8]).unwrap();
            })
            .unwrap();
            ids.push(id);
            assert!(
                pool.stats().resident <= pool.capacity(),
                "resident={} capacity={}",
                pool.stats().resident,
                pool.capacity()
            );
        }
        let s = pool.stats();
        assert!(s.steals > 0, "dirty frames must have been stolen");
        // Stolen pages read back their stolen images from disk.
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 8]);
        }
    }

    #[test]
    fn gclock_keeps_hot_pages_through_a_scan() {
        // Scan resistance: a page hit repeatedly (refbits saturated) must
        // survive a one-touch scan several times the pool size.
        let dir = TempDir::new("pool");
        let disk = DiskFile::create(&dir.file("db")).unwrap();
        let wal = Arc::new(Wal::open(&dir.file("wal"), false).unwrap());
        let mut p = BufferPool::with_shards(disk, 8, 1);
        p.attach_wal(wal);
        let hot = p.allocate_page().unwrap();
        let scan: Vec<PageId> = (0..32).map(|_| p.allocate_page().unwrap()).collect();
        for &id in &scan {
            // Touch the hot page between every scan step.
            for _ in 0..2 {
                p.with_page(hot, |_| ()).unwrap();
            }
            p.with_page(id, |_| ()).unwrap();
        }
        let before = p.stats();
        // The hot page is still a cache hit after the whole scan.
        p.with_page(hot, |_| ()).unwrap();
        let after = p.stats();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.misses, before.misses);
    }

    #[test]
    fn dirty_page_table_tracks_rec_lsns() {
        let (_d, pool) = steal_pool(8);
        assert!(pool.min_rec_lsn().is_none());
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |p| {
            p.insert(b"a").unwrap();
        })
        .unwrap();
        pool.with_page_mut(b, |p| {
            p.insert(b"b").unwrap();
        })
        .unwrap();
        let mut dpt = pool.dirty_page_table();
        dpt.sort_unstable();
        assert_eq!(
            dpt.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            vec![a, b]
        );
        assert!(pool.min_rec_lsn().is_some());
        // Flushing one page shrinks the table.
        assert!(pool.flush_page(a).unwrap());
        assert_eq!(pool.dirty_page_table().len(), 1);
        assert!(!pool.flush_page(a).unwrap(), "already clean");
    }

    #[test]
    fn clean_pages_get_evicted() {
        let (_d, pool) = pool(2);
        let mut ids = Vec::new();
        for i in 0..6u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 8]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().dirty, 0);
        // New allocations now find clean victims, keeping residency bounded.
        for _ in 0..6 {
            pool.allocate_page().unwrap();
        }
        assert!(
            pool.stats().resident <= 7,
            "resident={}",
            pool.stats().resident
        );
        // Evicted pages are still readable (reloaded from disk).
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 8]);
        }
    }

    #[test]
    fn flush_all_persists() {
        let dir = TempDir::new("pool");
        let path = dir.file("db");
        let id;
        {
            let disk = DiskFile::create(&path).unwrap();
            let pool = BufferPool::new(disk, 4);
            id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(b"durable").unwrap();
            })
            .unwrap();
            pool.flush_all().unwrap();
            let mut h = pool.disk().read_header().unwrap();
            h.page_count = pool.page_count();
            pool.disk().write_header(h).unwrap();
        }
        let disk = DiskFile::open(&path).unwrap();
        let page = disk.read_page(id).unwrap();
        assert_eq!(page.read(0).unwrap(), b"durable");
    }

    #[test]
    fn sharded_pool_keeps_pages_isolated() {
        // Many pages across all shards: every page reads back its own
        // bytes and the hit counters aggregate across shards.
        let (_d, pool) = pool(64);
        assert!(pool.shard_count() > 1);
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 16]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 16]);
        }
        let s = pool.stats();
        assert_eq!(s.resident, 32);
        assert!(s.hits >= 32);
    }

    #[test]
    fn clean_pages_bounded_under_sharding() {
        // With a sharded pool and clean pages, residency stays within
        // one frame of capacity per shard.
        let (_d, pool) = pool(8);
        let shards = pool.shard_count();
        for _ in 0..64 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(b"x").unwrap();
            })
            .unwrap();
            pool.flush_all().unwrap();
        }
        assert!(
            pool.stats().resident <= 8 + shards,
            "resident={} shards={}",
            pool.stats().resident,
            shards
        );
    }

    #[test]
    fn per_shard_stats_sum_to_totals() {
        let (_d, pool) = steal_pool(4);
        for i in 0..16u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 4]).unwrap();
            })
            .unwrap();
        }
        let total = pool.stats();
        let shards = pool.shard_stats();
        assert_eq!(shards.len(), pool.shard_count());
        assert_eq!(shards.iter().map(|s| s.steals).sum::<u64>(), total.steals);
        assert_eq!(
            shards.iter().map(|s| s.resident).sum::<usize>(),
            total.resident
        );
    }
}
