//! Buffer pool for the disk engine.
//!
//! A clock-replacement cache of page frames over a [`DiskFile`]. The pool
//! enforces a **no-steal** policy: dirty frames are only written back to the
//! data file at checkpoint time (see [`crate::storage::Storage`]), never by
//! eviction. This keeps recovery redo-only — the data file always reflects
//! exactly the last checkpoint, and the write-ahead log replays everything
//! after it. When every frame is dirty the pool grows past its configured
//! capacity rather than violating no-steal.
//!
//! ## Partitioning
//!
//! The frame table is partitioned into a power-of-two number of shards by
//! page id, each with its own mutex, clock hand, and share of the
//! capacity, so concurrent pins on unrelated pages stop funnelling through
//! one process-wide mutex (`StorageOptions::shards`; `1` reproduces the
//! original single-mutex pool). The shard count is clamped to the frame
//! capacity so tiny pools keep their configured residency bound, and the
//! capacity is split evenly (minimum one frame per shard). Clock
//! replacement runs independently per shard — eviction quality is
//! unchanged because a page's shard is fixed, so each shard sees a
//! consistent sub-stream of accesses. Checkpoint flushing iterates every
//! shard but still writes pages in globally sorted order for sequential
//! I/O.

use crate::disk::DiskFile;
use crate::error::Result;
use crate::oid::PageId;
use crate::page::Page;
use ode_obs::{Metrics, TraceEvent};
use parking_lot::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Default number of buffer-pool shards (clamped to the frame capacity).
pub const DEFAULT_POOL_SHARDS: usize = 8;

struct Frame {
    page: Page,
    dirty: bool,
    referenced: bool,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    /// Clock hand order (page ids, may contain stale entries lazily pruned).
    clock: Vec<PageId>,
    hand: usize,
    hits: u64,
    misses: u64,
}

/// Clock-replacement buffer pool with a no-steal write-back policy,
/// partitioned by page id.
pub struct BufferPool {
    disk: DiskFile,
    /// Soft frame limit per shard (see module docs).
    shard_capacity: usize,
    shards: Box<[Mutex<PoolInner>]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: usize,
    metrics: Arc<Metrics>,
}

/// Cache statistics, exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that had to read the data file.
    pub misses: u64,
    /// Frames currently resident.
    pub resident: usize,
    /// Resident frames that are dirty.
    pub dirty: usize,
}

impl BufferPool {
    /// Wrap a disk file with a pool of at most `capacity` frames
    /// (soft limit; see module docs) split over the default shard count.
    pub fn new(disk: DiskFile, capacity: usize) -> BufferPool {
        BufferPool::with_shards(disk, capacity, DEFAULT_POOL_SHARDS)
    }

    /// Like [`BufferPool::new`] with an explicit shard count. The count is
    /// rounded to a power of two and clamped to `capacity` (so sharding
    /// never raises the residency bound); `1` reproduces the
    /// pre-partitioning single-mutex pool.
    pub fn with_shards(disk: DiskFile, capacity: usize, shards: usize) -> BufferPool {
        let capacity = capacity.max(1);
        let mut n = shards.clamp(1, capacity).next_power_of_two();
        if n > capacity {
            n /= 2;
        }
        BufferPool {
            disk,
            shard_capacity: (capacity / n).max(1),
            shards: (0..n)
                .map(|_| {
                    Mutex::new(PoolInner {
                        frames: HashMap::new(),
                        clock: Vec::new(),
                        hand: 0,
                        hits: 0,
                        misses: 0,
                    })
                })
                .collect(),
            mask: n - 1,
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Replace the metrics registry (done once at storage assembly so the
    /// pool shares the database-wide registry).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = metrics;
    }

    /// The underlying disk file.
    pub fn disk(&self) -> &DiskFile {
        &self.disk
    }

    /// Number of shards the frame table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lock one shard, counting contended acquisitions into the registry.
    fn lock_shard(&self, id: PageId) -> MutexGuard<'_, PoolInner> {
        let shard = &self.shards[(id as usize) & self.mask];
        match shard.try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.buf_shard_contention.inc();
                let started = Instant::now();
                let guard = shard.lock();
                self.metrics
                    .shard_acquire_nanos
                    .record(started.elapsed().as_nanos() as u64);
                guard
            }
        }
    }

    fn load_locked(&self, inner: &mut PoolInner, id: PageId) -> Result<()> {
        if inner.frames.contains_key(&id) {
            inner.hits += 1;
            self.metrics.buf_hits.inc();
            return Ok(());
        }
        inner.misses += 1;
        self.metrics.buf_misses.inc();
        if inner.frames.len() >= self.shard_capacity {
            self.evict_one(inner);
        }
        let page = self.disk.read_page(id)?;
        inner.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                referenced: true,
            },
        );
        inner.clock.push(id);
        Ok(())
    }

    /// Evict one clean, unreferenced frame if possible. Dirty frames are
    /// never evicted (no-steal); if only dirty frames remain, the shard grows.
    fn evict_one(&self, inner: &mut PoolInner) {
        let mut sweeps = 0;
        // Two full sweeps: the first clears reference bits, the second can
        // then find a victim. Dirty frames are skipped entirely.
        let max_steps = inner.clock.len().saturating_mul(2).max(1);
        while sweeps < max_steps {
            if inner.clock.is_empty() {
                return;
            }
            let idx = inner.hand % inner.clock.len();
            let id = inner.clock[idx];
            match inner.frames.get_mut(&id) {
                None => {
                    // Stale clock entry; prune without advancing the hand.
                    inner.clock.swap_remove(idx);
                    continue;
                }
                Some(frame) => {
                    if !frame.dirty && !frame.referenced {
                        inner.frames.remove(&id);
                        inner.clock.swap_remove(idx);
                        self.metrics.buf_evictions.inc();
                        self.metrics
                            .emit(|| TraceEvent::BufferEviction { page: id });
                        return;
                    }
                    frame.referenced = false;
                    inner.hand = (idx + 1) % inner.clock.len().max(1);
                    sweeps += 1;
                }
            }
        }
        // All frames dirty or hot: grow instead of stealing.
    }

    /// Read access to a page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.lock_shard(id);
        self.load_locked(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id).expect("just loaded");
        frame.referenced = true;
        Ok(f(&frame.page))
    }

    /// Write access to a page; marks the frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.lock_shard(id);
        self.load_locked(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id).expect("just loaded");
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Allocate a fresh page on disk and cache it.
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.disk.allocate_page()?;
        let mut inner = self.lock_shard(id);
        if inner.frames.len() >= self.shard_capacity {
            self.evict_one(&mut inner);
        }
        inner.frames.insert(
            id,
            Frame {
                page: Page::new(),
                dirty: false,
                referenced: true,
            },
        );
        inner.clock.push(id);
        Ok(id)
    }

    /// Number of pages (including the header page).
    pub fn page_count(&self) -> u32 {
        self.disk.page_count()
    }

    /// Write every dirty frame back to the data file (checkpoint helper).
    /// Returns the number of pages written. Pages are written in globally
    /// sorted order; callers checkpoint from a quiesced state, so the
    /// shard-at-a-time dirty scan sees every dirty frame.
    pub fn flush_all(&self) -> Result<usize> {
        let mut ids: Vec<PageId> = Vec::new();
        for shard in self.shards.iter() {
            let inner = shard.lock();
            ids.extend(
                inner
                    .frames
                    .iter()
                    .filter(|(_, fr)| fr.dirty)
                    .map(|(id, _)| *id),
            );
        }
        ids.sort_unstable();
        let mut written = 0;
        for id in ids {
            let mut inner = self.lock_shard(id);
            if let Some(frame) = inner.frames.get_mut(&id) {
                if frame.dirty {
                    self.disk.write_page(id, &frame.page)?;
                    frame.dirty = false;
                    written += 1;
                }
            }
        }
        Ok(written)
    }

    /// Flush OS buffers for the data file.
    pub fn sync(&self) -> Result<()> {
        self.disk.sync()
    }

    /// Cache statistics snapshot (shard-at-a-time; totals are exact when
    /// quiesced, monotone approximations under concurrency).
    pub fn stats(&self) -> PoolStats {
        let mut stats = PoolStats {
            hits: 0,
            misses: 0,
            resident: 0,
            dirty: 0,
        };
        for shard in self.shards.iter() {
            let inner = shard.lock();
            stats.hits += inner.hits;
            stats.misses += inner.misses;
            stats.resident += inner.frames.len();
            stats.dirty += inner.frames.values().filter(|f| f.dirty).count();
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    fn pool(capacity: usize) -> (TempDir, BufferPool) {
        let dir = TempDir::new("pool");
        let disk = DiskFile::create(&dir.file("db")).unwrap();
        (dir, BufferPool::new(disk, capacity))
    }

    #[test]
    fn shard_count_clamps_to_capacity() {
        let dir = TempDir::new("pool");
        let disk = DiskFile::create(&dir.file("db")).unwrap();
        // Tiny pool: sharding must not raise the residency bound.
        let p = BufferPool::new(disk, 2);
        assert_eq!(p.shard_count(), 2);
        let disk = DiskFile::create(&dir.file("db2")).unwrap();
        let p = BufferPool::with_shards(disk, 256, 1);
        assert_eq!(p.shard_count(), 1);
        let disk = DiskFile::create(&dir.file("db3")).unwrap();
        let p = BufferPool::with_shards(disk, 256, 6);
        assert_eq!(p.shard_count(), 8, "rounds to a power of two");
        let disk = DiskFile::create(&dir.file("db4")).unwrap();
        let p = BufferPool::with_shards(disk, 6, 6);
        assert_eq!(p.shard_count(), 4, "power of two within capacity");
    }

    #[test]
    fn read_through_and_cache_hit() {
        let (_d, pool) = pool(4);
        let id = pool.allocate_page().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"cached").unwrap();
        })
        .unwrap();
        let data = pool.with_page(id, |p| p.read(0).unwrap().to_vec()).unwrap();
        assert_eq!(data, b"cached");
        let s = pool.stats();
        assert!(s.hits >= 1);
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        let (_d, pool) = pool(2);
        let mut ids = Vec::new();
        for i in 0..10u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 8]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        // All ten frames are dirty; no-steal means all stay resident even
        // though capacity is 2, and none were written to disk.
        assert_eq!(pool.stats().resident, 10);
        assert_eq!(pool.stats().dirty, 10);
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 8]);
        }
        // Disk still has the pristine pages (never stolen).
        let on_disk = pool.disk().read_page(ids[0]).unwrap();
        assert!(on_disk.read(0).is_none());
    }

    #[test]
    fn clean_pages_get_evicted() {
        let (_d, pool) = pool(2);
        let mut ids = Vec::new();
        for i in 0..6u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 8]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().dirty, 0);
        // New allocations now find clean victims, keeping residency bounded.
        for _ in 0..6 {
            pool.allocate_page().unwrap();
        }
        assert!(
            pool.stats().resident <= 7,
            "resident={}",
            pool.stats().resident
        );
        // Evicted pages are still readable (reloaded from disk).
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 8]);
        }
    }

    #[test]
    fn flush_all_persists() {
        let dir = TempDir::new("pool");
        let path = dir.file("db");
        let id;
        {
            let disk = DiskFile::create(&path).unwrap();
            let pool = BufferPool::new(disk, 4);
            id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(b"durable").unwrap();
            })
            .unwrap();
            pool.flush_all().unwrap();
            let mut h = pool.disk().read_header().unwrap();
            h.page_count = pool.page_count();
            pool.disk().write_header(h).unwrap();
        }
        let disk = DiskFile::open(&path).unwrap();
        let page = disk.read_page(id).unwrap();
        assert_eq!(page.read(0).unwrap(), b"durable");
    }

    #[test]
    fn sharded_pool_keeps_pages_isolated() {
        // Many pages across all shards: every page reads back its own
        // bytes and the hit counters aggregate across shards.
        let (_d, pool) = pool(64);
        assert!(pool.shard_count() > 1);
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 16]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 16]);
        }
        let s = pool.stats();
        assert_eq!(s.resident, 32);
        assert!(s.hits >= 32);
    }

    #[test]
    fn clean_pages_bounded_under_sharding() {
        // With a sharded pool and clean pages, residency stays within
        // one frame of capacity per shard.
        let (_d, pool) = pool(8);
        let shards = pool.shard_count();
        for _ in 0..64 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(b"x").unwrap();
            })
            .unwrap();
            pool.flush_all().unwrap();
        }
        assert!(
            pool.stats().resident <= 8 + shards,
            "resident={} shards={}",
            pool.stats().resident,
            shards
        );
    }
}
