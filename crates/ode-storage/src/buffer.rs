//! Buffer pool for the disk engine.
//!
//! A clock-replacement cache of page frames over a [`DiskFile`]. The pool
//! enforces a **no-steal** policy: dirty frames are only written back to the
//! data file at checkpoint time (see [`crate::storage::Storage`]), never by
//! eviction. This keeps recovery redo-only — the data file always reflects
//! exactly the last checkpoint, and the write-ahead log replays everything
//! after it. When every frame is dirty the pool grows past its configured
//! capacity rather than violating no-steal.

use crate::disk::DiskFile;
use crate::error::Result;
use crate::oid::PageId;
use crate::page::Page;
use ode_obs::{Metrics, TraceEvent};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

struct Frame {
    page: Page,
    dirty: bool,
    referenced: bool,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    /// Clock hand order (page ids, may contain stale entries lazily pruned).
    clock: Vec<PageId>,
    hand: usize,
    hits: u64,
    misses: u64,
}

/// Clock-replacement buffer pool with a no-steal write-back policy.
pub struct BufferPool {
    disk: DiskFile,
    capacity: usize,
    inner: Mutex<PoolInner>,
    metrics: Arc<Metrics>,
}

/// Cache statistics, exposed for benchmarks and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that had to read the data file.
    pub misses: u64,
    /// Frames currently resident.
    pub resident: usize,
    /// Resident frames that are dirty.
    pub dirty: usize,
}

impl BufferPool {
    /// Wrap a disk file with a pool of at most `capacity` frames
    /// (soft limit; see module docs).
    pub fn new(disk: DiskFile, capacity: usize) -> BufferPool {
        BufferPool {
            disk,
            capacity: capacity.max(1),
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                clock: Vec::new(),
                hand: 0,
                hits: 0,
                misses: 0,
            }),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// Replace the metrics registry (done once at storage assembly so the
    /// pool shares the database-wide registry).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = metrics;
    }

    /// The underlying disk file.
    pub fn disk(&self) -> &DiskFile {
        &self.disk
    }

    fn load_locked(&self, inner: &mut PoolInner, id: PageId) -> Result<()> {
        if inner.frames.contains_key(&id) {
            inner.hits += 1;
            self.metrics.buf_hits.inc();
            return Ok(());
        }
        inner.misses += 1;
        self.metrics.buf_misses.inc();
        if inner.frames.len() >= self.capacity {
            self.evict_one(inner);
        }
        let page = self.disk.read_page(id)?;
        inner.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                referenced: true,
            },
        );
        inner.clock.push(id);
        Ok(())
    }

    /// Evict one clean, unreferenced frame if possible. Dirty frames are
    /// never evicted (no-steal); if only dirty frames remain, the pool grows.
    fn evict_one(&self, inner: &mut PoolInner) {
        let mut sweeps = 0;
        // Two full sweeps: the first clears reference bits, the second can
        // then find a victim. Dirty frames are skipped entirely.
        let max_steps = inner.clock.len().saturating_mul(2).max(1);
        while sweeps < max_steps {
            if inner.clock.is_empty() {
                return;
            }
            let idx = inner.hand % inner.clock.len();
            let id = inner.clock[idx];
            match inner.frames.get_mut(&id) {
                None => {
                    // Stale clock entry; prune without advancing the hand.
                    inner.clock.swap_remove(idx);
                    continue;
                }
                Some(frame) => {
                    if !frame.dirty && !frame.referenced {
                        inner.frames.remove(&id);
                        inner.clock.swap_remove(idx);
                        self.metrics.buf_evictions.inc();
                        self.metrics
                            .emit(|| TraceEvent::BufferEviction { page: id });
                        return;
                    }
                    frame.referenced = false;
                    inner.hand = (idx + 1) % inner.clock.len().max(1);
                    sweeps += 1;
                }
            }
        }
        // All frames dirty or hot: grow instead of stealing.
    }

    /// Read access to a page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.load_locked(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id).expect("just loaded");
        frame.referenced = true;
        Ok(f(&frame.page))
    }

    /// Write access to a page; marks the frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.load_locked(&mut inner, id)?;
        let frame = inner.frames.get_mut(&id).expect("just loaded");
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Allocate a fresh page on disk and cache it.
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.disk.allocate_page()?;
        let mut inner = self.inner.lock();
        if inner.frames.len() >= self.capacity {
            self.evict_one(&mut inner);
        }
        inner.frames.insert(
            id,
            Frame {
                page: Page::new(),
                dirty: false,
                referenced: true,
            },
        );
        inner.clock.push(id);
        Ok(id)
    }

    /// Number of pages (including the header page).
    pub fn page_count(&self) -> u32 {
        self.disk.page_count()
    }

    /// Write every dirty frame back to the data file (checkpoint helper).
    /// Returns the number of pages written.
    pub fn flush_all(&self) -> Result<usize> {
        let mut inner = self.inner.lock();
        let mut ids: Vec<PageId> = inner
            .frames
            .iter()
            .filter(|(_, fr)| fr.dirty)
            .map(|(id, _)| *id)
            .collect();
        ids.sort_unstable();
        let written = ids.len();
        for id in ids {
            let frame = inner.frames.get_mut(&id).expect("listed above");
            self.disk.write_page(id, &frame.page)?;
            frame.dirty = false;
        }
        Ok(written)
    }

    /// Flush OS buffers for the data file.
    pub fn sync(&self) -> Result<()> {
        self.disk.sync()
    }

    /// Cache statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats {
            hits: inner.hits,
            misses: inner.misses,
            resident: inner.frames.len(),
            dirty: inner.frames.values().filter(|f| f.dirty).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    fn pool(capacity: usize) -> (TempDir, BufferPool) {
        let dir = TempDir::new("pool");
        let disk = DiskFile::create(&dir.file("db")).unwrap();
        (dir, BufferPool::new(disk, capacity))
    }

    #[test]
    fn read_through_and_cache_hit() {
        let (_d, pool) = pool(4);
        let id = pool.allocate_page().unwrap();
        pool.with_page_mut(id, |p| {
            p.insert(b"cached").unwrap();
        })
        .unwrap();
        let data = pool.with_page(id, |p| p.read(0).unwrap().to_vec()).unwrap();
        assert_eq!(data, b"cached");
        let s = pool.stats();
        assert!(s.hits >= 1);
    }

    #[test]
    fn dirty_pages_survive_eviction_pressure() {
        let (_d, pool) = pool(2);
        let mut ids = Vec::new();
        for i in 0..10u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 8]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        // All ten frames are dirty; no-steal means all stay resident even
        // though capacity is 2, and none were written to disk.
        assert_eq!(pool.stats().resident, 10);
        assert_eq!(pool.stats().dirty, 10);
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 8]);
        }
        // Disk still has the pristine pages (never stolen).
        let on_disk = pool.disk().read_page(ids[0]).unwrap();
        assert!(on_disk.read(0).is_none());
    }

    #[test]
    fn clean_pages_get_evicted() {
        let (_d, pool) = pool(2);
        let mut ids = Vec::new();
        for i in 0..6u8 {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(&[i; 8]).unwrap();
            })
            .unwrap();
            ids.push(id);
        }
        pool.flush_all().unwrap();
        assert_eq!(pool.stats().dirty, 0);
        // New allocations now find clean victims, keeping residency bounded.
        for _ in 0..6 {
            pool.allocate_page().unwrap();
        }
        assert!(
            pool.stats().resident <= 7,
            "resident={}",
            pool.stats().resident
        );
        // Evicted pages are still readable (reloaded from disk).
        for (i, id) in ids.iter().enumerate() {
            let v = pool
                .with_page(*id, |p| p.read(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, vec![i as u8; 8]);
        }
    }

    #[test]
    fn flush_all_persists() {
        let dir = TempDir::new("pool");
        let path = dir.file("db");
        let id;
        {
            let disk = DiskFile::create(&path).unwrap();
            let pool = BufferPool::new(disk, 4);
            id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| {
                p.insert(b"durable").unwrap();
            })
            .unwrap();
            pool.flush_all().unwrap();
            let mut h = pool.disk().read_header().unwrap();
            h.page_count = pool.page_count();
            pool.disk().write_header(h).unwrap();
        }
        let disk = DiskFile::open(&path).unwrap();
        let page = disk.read_page(id).unwrap();
        assert_eq!(page.read(0).unwrap(), b"durable");
    }
}
