//! Main-memory page store — the Dali stand-in backing MM-Ode.
//!
//! Pages live in RAM; there is no buffer pool and no per-operation I/O,
//! which is exactly the performance profile the paper's MM-Ode sought.
//! Durability is optional: a checkpoint writes the full page image to a
//! file, and `load` restores it. (Dali offered checkpoint-based persistence
//! for main-memory databases; we reproduce the same shape.) The transaction
//! layer above provides rollback via in-memory undo, shared with the disk
//! engine just as Ode and MM-Ode share their run-time system (§5.6).

use crate::error::{Result, StorageError};
use crate::oid::PageId;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::RwLock;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"ODEMM\0\x01\x00";

/// An in-memory page store.
pub struct MemStore {
    pages: RwLock<Vec<Page>>,
}

impl Default for MemStore {
    fn default() -> Self {
        MemStore::new()
    }
}

impl MemStore {
    /// An empty store. Page 0 is reserved (parity with the disk layout) so
    /// data pages start at 1.
    pub fn new() -> MemStore {
        MemStore {
            pages: RwLock::new(vec![Page::new()]),
        }
    }

    /// Read access to a page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let pages = self.pages.read();
        let page = pages.get(id as usize).ok_or(StorageError::NoSuchPage(id))?;
        Ok(f(page))
    }

    /// Write access to a page.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut pages = self.pages.write();
        let page = pages
            .get_mut(id as usize)
            .ok_or(StorageError::NoSuchPage(id))?;
        Ok(f(page))
    }

    /// Append a fresh page.
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut pages = self.pages.write();
        let id = pages.len() as PageId;
        pages.push(Page::new());
        Ok(id)
    }

    /// Ensure at least `count` pages exist (recovery/checkpoint load).
    pub fn ensure_pages(&self, count: u32) -> Result<()> {
        let mut pages = self.pages.write();
        while (pages.len() as u32) < count {
            pages.push(Page::new());
        }
        Ok(())
    }

    /// Number of pages including the reserved page 0.
    pub fn page_count(&self) -> u32 {
        self.pages.read().len() as u32
    }

    /// Write a full checkpoint image of the store to `path` (atomically via
    /// a temp file + rename).
    pub fn checkpoint_to(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("ckpt-tmp");
        {
            let pages = self.pages.read();
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            f.write_all(MAGIC)?;
            f.write_all(&(pages.len() as u32).to_le_bytes())?;
            for page in pages.iter() {
                f.write_all(page.as_bytes())?;
            }
            f.flush()?;
            f.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a checkpoint image written by [`MemStore::checkpoint_to`].
    pub fn load_from(path: &Path) -> Result<MemStore> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::Corrupt("bad magic in mem checkpoint".into()));
        }
        let mut nbuf = [0u8; 4];
        f.read_exact(&mut nbuf)?;
        let n = u32::from_le_bytes(nbuf) as usize;
        let mut pages = Vec::with_capacity(n);
        let mut buf = vec![0u8; PAGE_SIZE];
        for _ in 0..n {
            f.read_exact(&mut buf)?;
            pages.push(Page::from_bytes(&buf));
        }
        Ok(MemStore {
            pages: RwLock::new(pages),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    #[test]
    fn allocate_and_access() {
        let m = MemStore::new();
        let id = m.allocate_page().unwrap();
        assert_eq!(id, 1);
        m.with_page_mut(id, |p| {
            p.insert(b"in ram").unwrap();
        })
        .unwrap();
        let v = m.with_page(id, |p| p.read(0).unwrap().to_vec()).unwrap();
        assert_eq!(v, b"in ram");
    }

    #[test]
    fn missing_page_errors() {
        let m = MemStore::new();
        assert!(matches!(
            m.with_page(9, |_| ()),
            Err(StorageError::NoSuchPage(9))
        ));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = TempDir::new("mem");
        let path = dir.file("ckpt");
        let m = MemStore::new();
        let id = m.allocate_page().unwrap();
        m.with_page_mut(id, |p| {
            p.insert(b"survives").unwrap();
        })
        .unwrap();
        m.checkpoint_to(&path).unwrap();
        let m2 = MemStore::load_from(&path).unwrap();
        assert_eq!(m2.page_count(), 2);
        let v = m2.with_page(id, |p| p.read(0).unwrap().to_vec()).unwrap();
        assert_eq!(v, b"survives");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = TempDir::new("mem");
        let path = dir.file("bad");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        assert!(MemStore::load_from(&path).is_err());
    }

    #[test]
    fn ensure_pages_extends() {
        let m = MemStore::new();
        m.ensure_pages(5).unwrap();
        assert_eq!(m.page_count(), 5);
        m.with_page(4, |p| assert!(p.is_empty())).unwrap();
    }
}
