//! Main-memory page store — the Dali stand-in backing MM-Ode.
//!
//! Pages live in RAM; there is no buffer pool and no per-operation I/O,
//! which is exactly the performance profile the paper's MM-Ode sought.
//! Durability is optional: a checkpoint writes the full page image to a
//! file, and `load` restores it. (Dali offered checkpoint-based persistence
//! for main-memory databases; we reproduce the same shape.) The transaction
//! layer above provides rollback via in-memory undo, shared with the disk
//! engine just as Ode and MM-Ode share their run-time system (§5.6).
//!
//! ## Sharding
//!
//! The page directory is split into a power-of-two array of shards; page
//! `id` lives in shard `id & mask` at index `id >> shift` (ids are
//! assigned round-robin by a lock-free counter, so each shard's vector
//! stays dense). Page access takes the shard read lock plus a *per-page*
//! latch, so writes to different pages — even in the same shard — run in
//! parallel; the shard write lock is only taken to grow the vector. With
//! one shard the store degrades to the original design — a process-wide
//! `RwLock` where every page write excludes all other page access — which
//! is the `shards = 1` baseline the `concurrency_core` bench measures
//! against.
//!
//! ## MVCC readers
//!
//! Snapshot readers (see [`crate::version`]) that fall back to the pages
//! for untracked objects synchronize on nothing but these per-page
//! latches — no lock-manager locks, no transaction-table waits. The
//! latches are held only for the duration of one cell copy, so a reader
//! can delay a writer by at most one page access, never for a lock span.

use crate::error::{Result, StorageError};
use crate::oid::PageId;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::RwLock;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};

const MAGIC: &[u8; 8] = b"ODEMM\0\x01\x00";

/// An in-memory page store.
pub struct MemStore {
    /// Page `id` lives at `shards[id & mask][id >> shift]`. Slots between
    /// a vector's length and a freshly allocated index are created blank
    /// on demand; a blank slot is indistinguishable from a page that was
    /// allocated and never written.
    shards: Box<[RwLock<Vec<RwLock<Page>>>]>,
    mask: u32,
    shift: u32,
    /// Next page id to hand out (== page count including reserved page 0).
    /// Ids travel between threads through lock-protected structures, so
    /// relaxed ordering suffices.
    next: AtomicU32,
}

impl Default for MemStore {
    fn default() -> Self {
        MemStore::new()
    }
}

impl MemStore {
    /// An empty store with the default shard count. Page 0 is reserved
    /// (parity with the disk layout) so data pages start at 1.
    pub fn new() -> MemStore {
        MemStore::with_shards(crate::buffer::DEFAULT_POOL_SHARDS)
    }

    /// An empty store whose page directory is split into `shards` shards
    /// (rounded up to a power of two; `1` reproduces the original
    /// process-wide-lock store).
    pub fn with_shards(shards: usize) -> MemStore {
        let n = shards.max(1).next_power_of_two();
        let store = MemStore {
            shards: (0..n).map(|_| RwLock::new(Vec::new())).collect(),
            mask: n as u32 - 1,
            shift: n.trailing_zeros(),
            next: AtomicU32::new(1),
        };
        store.shards[0].write().push(RwLock::new(Page::new()));
        store
    }

    fn slot(&self, id: PageId) -> (usize, usize) {
        ((id & self.mask) as usize, (id >> self.shift) as usize)
    }

    /// True when the store runs in the unsharded baseline configuration.
    fn single(&self) -> bool {
        self.mask == 0 && self.shift == 0
    }

    fn grow(shard: &mut Vec<RwLock<Page>>, len: usize) {
        while shard.len() < len {
            shard.push(RwLock::new(Page::new()));
        }
    }

    fn check(&self, id: PageId) -> Result<()> {
        if id < self.next.load(Ordering::Relaxed) {
            Ok(())
        } else {
            Err(StorageError::NoSuchPage(id))
        }
    }

    /// Read access to a page.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        self.check(id)?;
        let (s, i) = self.slot(id);
        {
            let shard = self.shards[s].read();
            if let Some(page) = shard.get(i) {
                return Ok(f(&page.read()));
            }
        }
        // Allocated but never grown into the vector: materialize the slot.
        let mut shard = self.shards[s].write();
        Self::grow(&mut shard, i + 1);
        let out = f(&shard[i].read());
        Ok(out)
    }

    /// Write access to a page. Holds the shard read lock plus the page's
    /// own latch, so only writers of the *same page* exclude each other —
    /// except in the single-shard baseline, which takes the shard (i.e.
    /// whole-store) write lock like the original design did.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        self.check(id)?;
        let (s, i) = self.slot(id);
        if self.single() {
            let mut shard = self.shards[s].write();
            Self::grow(&mut shard, i + 1);
            return Ok(f(shard[i].get_mut()));
        }
        {
            let shard = self.shards[s].read();
            if let Some(page) = shard.get(i) {
                return Ok(f(&mut page.write()));
            }
        }
        let mut shard = self.shards[s].write();
        Self::grow(&mut shard, i + 1);
        let out = f(shard[i].get_mut());
        Ok(out)
    }

    /// Append a fresh page.
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        let (s, i) = self.slot(id);
        let mut shard = self.shards[s].write();
        Self::grow(&mut shard, i + 1);
        Ok(id)
    }

    /// Ensure at least `count` pages exist (recovery/checkpoint load).
    pub fn ensure_pages(&self, count: u32) -> Result<()> {
        self.next.fetch_max(count.max(1), Ordering::Relaxed);
        Ok(())
    }

    /// Number of pages including the reserved page 0.
    pub fn page_count(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }

    /// Write a full checkpoint image of the store to `path` (atomically via
    /// a temp file + rename). All shards are read-locked (in index order)
    /// for the duration, so the image is a consistent snapshot.
    pub fn checkpoint_to(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("ckpt-tmp");
        {
            let count = self.page_count();
            let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
            let blank = Page::new();
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            f.write_all(MAGIC)?;
            f.write_all(&count.to_le_bytes())?;
            for id in 0..count {
                let (s, i) = self.slot(id);
                match guards[s].get(i) {
                    Some(page) => f.write_all(page.read().as_bytes())?,
                    None => f.write_all(blank.as_bytes())?,
                }
            }
            f.flush()?;
            f.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Load a checkpoint image written by [`MemStore::checkpoint_to`] into
    /// a store with `shards` directory shards.
    pub fn load_from(path: &Path, shards: usize) -> Result<MemStore> {
        let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 8];
        f.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(StorageError::Corrupt("bad magic in mem checkpoint".into()));
        }
        let mut nbuf = [0u8; 4];
        f.read_exact(&mut nbuf)?;
        let n = u32::from_le_bytes(nbuf);
        let store = MemStore::with_shards(shards);
        let mut buf = vec![0u8; PAGE_SIZE];
        for id in 0..n {
            f.read_exact(&mut buf)?;
            let (s, i) = store.slot(id);
            let mut shard = store.shards[s].write();
            Self::grow(&mut shard, i + 1);
            *shard[i].get_mut() = Page::from_bytes(&buf);
        }
        store.next.store(n.max(1), Ordering::Relaxed);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    #[test]
    fn allocate_and_access() {
        let m = MemStore::new();
        let id = m.allocate_page().unwrap();
        assert_eq!(id, 1);
        m.with_page_mut(id, |p| {
            p.set_cluster(7);
        })
        .unwrap();
        assert_eq!(m.with_page(id, |p| p.cluster()).unwrap(), 7);
        assert!(matches!(
            m.with_page(99, |_| ()),
            Err(StorageError::NoSuchPage(99))
        ));
    }

    #[test]
    fn missing_page_errors() {
        let m = MemStore::new();
        assert!(matches!(
            m.with_page(9, |_| ()),
            Err(StorageError::NoSuchPage(9))
        ));
    }

    #[test]
    fn checkpoint_roundtrip() {
        let dir = TempDir::new("mem");
        let path = dir.file("ckpt");
        let m = MemStore::new();
        let id = m.allocate_page().unwrap();
        m.with_page_mut(id, |p| {
            p.insert(b"survives").unwrap();
        })
        .unwrap();
        m.checkpoint_to(&path).unwrap();
        let m2 = MemStore::load_from(&path, crate::buffer::DEFAULT_POOL_SHARDS).unwrap();
        assert_eq!(m2.page_count(), 2);
        let v = m2.with_page(id, |p| p.read(0).unwrap().to_vec()).unwrap();
        assert_eq!(v, b"survives");
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = TempDir::new("mem");
        let path = dir.file("bad");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        assert!(MemStore::load_from(&path, 1).is_err());
    }

    #[test]
    fn ensure_pages_extends() {
        let m = MemStore::new();
        m.ensure_pages(5).unwrap();
        assert_eq!(m.page_count(), 5);
        m.with_page(4, |p| assert!(p.is_empty())).unwrap();
    }

    #[test]
    fn pages_spread_over_shards_and_stay_addressable() {
        let m = MemStore::with_shards(8);
        let ids: Vec<PageId> = (0..64).map(|_| m.allocate_page().unwrap()).collect();
        for (k, &id) in ids.iter().enumerate() {
            m.with_page_mut(id, |p| p.set_cluster(k as u32)).unwrap();
        }
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(m.with_page(id, |p| p.cluster()).unwrap(), k as u32);
        }
        assert_eq!(m.page_count(), 65);
    }

    #[test]
    fn single_shard_reproduces_original_layout() {
        let m = MemStore::with_shards(1);
        assert_eq!(m.shards.len(), 1);
        let id = m.allocate_page().unwrap();
        m.with_page_mut(id, |p| p.set_cluster(3)).unwrap();
        assert_eq!(m.with_page(id, |p| p.cluster()).unwrap(), 3);
    }

    #[test]
    fn checkpoint_roundtrip_preserves_pages() {
        let dir = TempDir::new("memstore-ckpt");
        let path = dir.path().join("img");
        let m = MemStore::with_shards(4);
        let ids: Vec<PageId> = (0..9).map(|_| m.allocate_page().unwrap()).collect();
        for (k, &id) in ids.iter().enumerate() {
            m.with_page_mut(id, |p| p.set_cluster(100 + k as u32))
                .unwrap();
        }
        m.checkpoint_to(&path).unwrap();
        let restored = MemStore::load_from(&path, 4).unwrap();
        assert_eq!(restored.page_count(), m.page_count());
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(
                restored.with_page(id, |p| p.cluster()).unwrap(),
                100 + k as u32
            );
        }
    }

    #[test]
    fn load_into_different_shard_count_preserves_pages() {
        let dir = TempDir::new("memstore-reshard");
        let path = dir.path().join("img");
        let m = MemStore::with_shards(8);
        let ids: Vec<PageId> = (0..20).map(|_| m.allocate_page().unwrap()).collect();
        for (k, &id) in ids.iter().enumerate() {
            m.with_page_mut(id, |p| p.set_cluster(k as u32)).unwrap();
        }
        m.checkpoint_to(&path).unwrap();
        for shards in [1usize, 2, 16] {
            let restored = MemStore::load_from(&path, shards).unwrap();
            for (k, &id) in ids.iter().enumerate() {
                assert_eq!(restored.with_page(id, |p| p.cluster()).unwrap(), k as u32);
            }
        }
    }
}
