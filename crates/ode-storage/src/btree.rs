//! A persistent B+-tree index.
//!
//! §5.6 of the paper: disk-based Ode offered B-trees ("full Ode
//! functionality (except for B-trees which do not exist in Dali)"); this
//! module provides that indexing substrate. Unlike the hash index of
//! §5.1.3 (used for the object→triggers map), the B+-tree supports ordered
//! keys and range scans — the shape an O++ application would use to index
//! class attributes.
//!
//! Representation: every node is an ordinary storage record, so all
//! operations are transactional and locked through the regular object
//! protocol — an aborted transaction rolls back its structural changes
//! with everything else.
//!
//! * Holder record: `{ root: Oid, height: u32, len: u64 }` (its Oid is the
//!   tree's stable identity).
//! * Leaf: `{ keys, values, next }` with a right-sibling chain for scans.
//! * Internal: `{ keys, children }` with `children.len() == keys.len()+1`.
//!
//! Deletion is by lazy removal (no rebalancing): emptied leaves stay in
//! the chain until the tree is rebuilt. This matches the reproduction's
//! needs; a production system would merge under-full nodes.

use crate::codec::{decode_all, encode_to_vec, Blob, Decode, Encode};
use crate::error::{Result, StorageError};
use crate::oid::{ClusterId, Oid};
use crate::storage::Storage;
use crate::txn::TxnId;
use bytes::{BufMut, BytesMut};

/// Maximum keys per node before it splits.
const MAX_KEYS: usize = 16;

#[derive(Debug, Clone, PartialEq)]
struct Holder {
    root: Oid,
    height: u32,
    len: u64,
    cluster: ClusterId,
}

impl Encode for Holder {
    fn encode(&self, buf: &mut BytesMut) {
        self.root.encode(buf);
        buf.put_u32_le(self.height);
        buf.put_u64_le(self.len);
        buf.put_u32_le(self.cluster);
    }
}
impl Decode for Holder {
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(Holder {
            root: Oid::decode(buf)?,
            height: u32::decode(buf)?,
            len: u64::decode(buf)?,
            cluster: ClusterId::decode(buf)?,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf {
        keys: Vec<Vec<u8>>,
        values: Vec<Oid>,
        next: Option<Oid>,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<Oid>,
    },
}

const TAG_LEAF: u8 = 0;
const TAG_INTERNAL: u8 = 1;

impl Encode for Node {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            Node::Leaf { keys, values, next } => {
                buf.put_u8(TAG_LEAF);
                (keys.len() as u32).encode(buf);
                for k in keys {
                    Blob(k.clone()).encode(buf);
                }
                values.encode(buf);
                next.encode(buf);
            }
            Node::Internal { keys, children } => {
                buf.put_u8(TAG_INTERNAL);
                (keys.len() as u32).encode(buf);
                for k in keys {
                    Blob(k.clone()).encode(buf);
                }
                children.encode(buf);
            }
        }
    }
}
impl Decode for Node {
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let tag = u8::decode(buf)?;
        let n = u32::decode(buf)? as usize;
        let mut keys = Vec::with_capacity(n.min(MAX_KEYS + 1));
        for _ in 0..n {
            keys.push(Blob::decode(buf)?.0);
        }
        match tag {
            TAG_LEAF => Ok(Node::Leaf {
                keys,
                values: Vec::<Oid>::decode(buf)?,
                next: Option::<Oid>::decode(buf)?,
            }),
            TAG_INTERNAL => Ok(Node::Internal {
                keys,
                children: Vec::<Oid>::decode(buf)?,
            }),
            t => Err(StorageError::Codec(format!("bad btree node tag {t}"))),
        }
    }
}

/// Result of inserting into a subtree: either done in place, or the node
/// split and the parent must add `(sep_key, right)`.
enum InsertOutcome {
    Done,
    Split { sep: Vec<u8>, right: Oid },
}

/// Handle to a persistent B+-tree. All state lives in the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTree {
    holder: Oid,
}

impl BTree {
    /// Create an empty tree whose nodes live in `cluster`.
    pub fn create(storage: &Storage, txn: TxnId, cluster: ClusterId) -> Result<BTree> {
        let root = storage.allocate(
            txn,
            cluster,
            &encode_to_vec(&Node::Leaf {
                keys: Vec::new(),
                values: Vec::new(),
                next: None,
            }),
        )?;
        let holder = Holder {
            root,
            height: 0,
            len: 0,
            cluster,
        };
        let holder_oid = storage.allocate(txn, cluster, &encode_to_vec(&holder))?;
        Ok(BTree { holder: holder_oid })
    }

    /// Re-attach to an existing tree by its holder Oid.
    pub fn open(holder: Oid) -> BTree {
        BTree { holder }
    }

    /// The holder Oid (store it under a named root to find the tree).
    pub fn oid(&self) -> Oid {
        self.holder
    }

    fn load_holder(&self, storage: &Storage, txn: TxnId) -> Result<Holder> {
        decode_all(&storage.read(txn, self.holder)?)
    }

    fn store_holder(&self, storage: &Storage, txn: TxnId, holder: &Holder) -> Result<()> {
        storage.update(txn, self.holder, &encode_to_vec(holder))
    }

    fn load_node(storage: &Storage, txn: TxnId, oid: Oid) -> Result<Node> {
        decode_all(&storage.read(txn, oid)?)
    }

    fn store_node(storage: &Storage, txn: TxnId, oid: Oid, node: &Node) -> Result<()> {
        storage.update(txn, oid, &encode_to_vec(node))
    }

    /// Number of entries.
    pub fn len(&self, storage: &Storage, txn: TxnId) -> Result<u64> {
        Ok(self.load_holder(storage, txn)?.len)
    }

    /// True when the tree holds no entries.
    pub fn is_empty(&self, storage: &Storage, txn: TxnId) -> Result<bool> {
        Ok(self.len(storage, txn)? == 0)
    }

    /// Height (0 = the root is a leaf).
    pub fn height(&self, storage: &Storage, txn: TxnId) -> Result<u32> {
        Ok(self.load_holder(storage, txn)?.height)
    }

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn insert(
        &self,
        storage: &Storage,
        txn: TxnId,
        key: &[u8],
        value: Oid,
    ) -> Result<Option<Oid>> {
        let mut holder = self.load_holder(storage, txn)?;
        let mut replaced = None;
        let outcome = self.insert_rec(
            storage,
            txn,
            &holder,
            holder.root,
            key,
            value,
            &mut replaced,
        )?;
        if let InsertOutcome::Split { sep, right } = outcome {
            // Root split: grow the tree by one level.
            let new_root = storage.allocate(
                txn,
                holder.cluster,
                &encode_to_vec(&Node::Internal {
                    keys: vec![sep],
                    children: vec![holder.root, right],
                }),
            )?;
            holder.root = new_root;
            holder.height += 1;
            storage.metrics().btree_splits.inc();
            storage
                .metrics()
                .emit(|| ode_obs::TraceEvent::BtreeSplit { root: true });
        }
        if replaced.is_none() {
            holder.len += 1;
        }
        self.store_holder(storage, txn, &holder)?;
        Ok(replaced)
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_rec(
        &self,
        storage: &Storage,
        txn: TxnId,
        holder: &Holder,
        node_oid: Oid,
        key: &[u8],
        value: Oid,
        replaced: &mut Option<Oid>,
    ) -> Result<InsertOutcome> {
        let mut node = Self::load_node(storage, txn, node_oid)?;
        match &mut node {
            Node::Leaf { keys, values, next } => {
                match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        *replaced = Some(values[i]);
                        values[i] = value;
                    }
                    Err(i) => {
                        keys.insert(i, key.to_vec());
                        values.insert(i, value);
                    }
                }
                if keys.len() <= MAX_KEYS {
                    Self::store_node(storage, txn, node_oid, &node)?;
                    return Ok(InsertOutcome::Done);
                }
                // Split the leaf.
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_values = values.split_off(mid);
                let sep = right_keys[0].clone();
                let right = storage.allocate(
                    txn,
                    holder.cluster,
                    &encode_to_vec(&Node::Leaf {
                        keys: right_keys,
                        values: right_values,
                        next: *next,
                    }),
                )?;
                *next = Some(right);
                Self::store_node(storage, txn, node_oid, &node)?;
                storage.metrics().btree_splits.inc();
                storage
                    .metrics()
                    .emit(|| ode_obs::TraceEvent::BtreeSplit { root: false });
                Ok(InsertOutcome::Split { sep, right })
            }
            Node::Internal { keys, children } => {
                let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let child = children[idx];
                match self.insert_rec(storage, txn, holder, child, key, value, replaced)? {
                    InsertOutcome::Done => Ok(InsertOutcome::Done),
                    InsertOutcome::Split { sep, right } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() <= MAX_KEYS {
                            Self::store_node(storage, txn, node_oid, &node)?;
                            return Ok(InsertOutcome::Done);
                        }
                        // Split the internal node: the middle key moves up.
                        let mid = keys.len() / 2;
                        let up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // `up` moves to the parent
                        let right_children = children.split_off(mid + 1);
                        let right_oid = storage.allocate(
                            txn,
                            holder.cluster,
                            &encode_to_vec(&Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            }),
                        )?;
                        Self::store_node(storage, txn, node_oid, &node)?;
                        storage.metrics().btree_splits.inc();
                        storage
                            .metrics()
                            .emit(|| ode_obs::TraceEvent::BtreeSplit { root: false });
                        Ok(InsertOutcome::Split {
                            sep: up,
                            right: right_oid,
                        })
                    }
                }
            }
        }
    }

    fn find_leaf(&self, storage: &Storage, txn: TxnId, key: &[u8]) -> Result<Oid> {
        let holder = self.load_holder(storage, txn)?;
        let mut oid = holder.root;
        loop {
            match Self::load_node(storage, txn, oid)? {
                Node::Leaf { .. } => return Ok(oid),
                Node::Internal { keys, children } => {
                    let idx = match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
                        Ok(i) => i + 1,
                        Err(i) => i,
                    };
                    oid = children[idx];
                }
            }
        }
    }

    /// Point lookup.
    pub fn get(&self, storage: &Storage, txn: TxnId, key: &[u8]) -> Result<Option<Oid>> {
        let leaf = self.find_leaf(storage, txn, key)?;
        match Self::load_node(storage, txn, leaf)? {
            Node::Leaf { keys, values, .. } => Ok(keys
                .binary_search_by(|k| k.as_slice().cmp(key))
                .ok()
                .map(|i| values[i])),
            Node::Internal { .. } => unreachable!("find_leaf returns leaves"),
        }
    }

    /// Remove a key; returns its value when present. (Lazy: no structural
    /// rebalancing.)
    pub fn remove(&self, storage: &Storage, txn: TxnId, key: &[u8]) -> Result<Option<Oid>> {
        let leaf = self.find_leaf(storage, txn, key)?;
        let mut node = Self::load_node(storage, txn, leaf)?;
        let Node::Leaf { keys, values, .. } = &mut node else {
            unreachable!("find_leaf returns leaves")
        };
        let Ok(i) = keys.binary_search_by(|k| k.as_slice().cmp(key)) else {
            return Ok(None);
        };
        keys.remove(i);
        let value = values.remove(i);
        Self::store_node(storage, txn, leaf, &node)?;
        let mut holder = self.load_holder(storage, txn)?;
        holder.len -= 1;
        self.store_holder(storage, txn, &holder)?;
        Ok(Some(value))
    }

    /// All `(key, value)` pairs with `start <= key < end` in key order
    /// (pass `None` for an open bound).
    pub fn range(
        &self,
        storage: &Storage,
        txn: TxnId,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Oid)>> {
        let mut out = Vec::new();
        let mut leaf = match start {
            Some(key) => self.find_leaf(storage, txn, key)?,
            None => {
                // Leftmost leaf.
                let holder = self.load_holder(storage, txn)?;
                let mut oid = holder.root;
                loop {
                    match Self::load_node(storage, txn, oid)? {
                        Node::Leaf { .. } => break oid,
                        Node::Internal { children, .. } => oid = children[0],
                    }
                }
            }
        };
        loop {
            let Node::Leaf { keys, values, next } = Self::load_node(storage, txn, leaf)? else {
                unreachable!("leaf chain holds leaves")
            };
            for (k, v) in keys.into_iter().zip(values) {
                if let Some(s) = start {
                    if k.as_slice() < s {
                        continue;
                    }
                }
                if let Some(e) = end {
                    if k.as_slice() >= e {
                        return Ok(out);
                    }
                }
                out.push((k, v));
            }
            match next {
                Some(n) => leaf = n,
                None => return Ok(out),
            }
        }
    }

    /// All entries in key order.
    pub fn scan_all(&self, storage: &Storage, txn: TxnId) -> Result<Vec<(Vec<u8>, Oid)>> {
        self.range(storage, txn, None, None)
    }
}

/// Encode a `u64` so byte-wise order equals numeric order (big-endian) —
/// the standard trick for numeric B-tree keys.
pub fn u64_key(v: u64) -> [u8; 8] {
    v.to_be_bytes()
}

/// Encode an `i64` order-preservingly (offset-binary big-endian).
pub fn i64_key(v: i64) -> [u8; 8] {
    (v as u64 ^ 0x8000_0000_0000_0000).to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::FIRST_USER_CLUSTER;

    fn setup() -> (Storage, TxnId, BTree) {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        assert_eq!(c, FIRST_USER_CLUSTER);
        let tree = BTree::create(&s, t, c).unwrap();
        (s, t, tree)
    }

    #[test]
    fn insert_get_roundtrip() {
        let (s, t, tree) = setup();
        assert!(tree.is_empty(&s, t).unwrap());
        for i in 0..100u64 {
            assert!(tree
                .insert(&s, t, &u64_key(i), Oid::from_u64(i))
                .unwrap()
                .is_none());
        }
        assert_eq!(tree.len(&s, t).unwrap(), 100);
        for i in 0..100u64 {
            assert_eq!(
                tree.get(&s, t, &u64_key(i)).unwrap(),
                Some(Oid::from_u64(i)),
                "key {i}"
            );
        }
        assert_eq!(tree.get(&s, t, &u64_key(100)).unwrap(), None);
        assert!(tree.height(&s, t).unwrap() >= 1, "100 keys must split");
    }

    #[test]
    fn overwrite_returns_previous() {
        let (s, t, tree) = setup();
        tree.insert(&s, t, b"k", Oid::new(1, 1)).unwrap();
        let prev = tree.insert(&s, t, b"k", Oid::new(2, 2)).unwrap();
        assert_eq!(prev, Some(Oid::new(1, 1)));
        assert_eq!(tree.get(&s, t, b"k").unwrap(), Some(Oid::new(2, 2)));
        assert_eq!(tree.len(&s, t).unwrap(), 1);
    }

    #[test]
    fn descending_inserts_balance() {
        let (s, t, tree) = setup();
        for i in (0..200u64).rev() {
            tree.insert(&s, t, &u64_key(i), Oid::from_u64(i)).unwrap();
        }
        let all = tree.scan_all(&s, t).unwrap();
        assert_eq!(all.len(), 200);
        // Scan comes out sorted despite reverse insertion.
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k.as_slice(), &u64_key(i as u64));
            assert_eq!(*v, Oid::from_u64(i as u64));
        }
    }

    #[test]
    fn range_scans_respect_bounds() {
        let (s, t, tree) = setup();
        for i in 0..50u64 {
            tree.insert(&s, t, &u64_key(i * 2), Oid::from_u64(i))
                .unwrap();
        }
        // [10, 20): keys 10,12,14,16,18
        let hits = tree
            .range(&s, t, Some(&u64_key(10)), Some(&u64_key(20)))
            .unwrap();
        assert_eq!(hits.len(), 5);
        assert_eq!(hits[0].0, u64_key(10).to_vec());
        assert_eq!(hits[4].0, u64_key(18).to_vec());
        // Open start.
        let head = tree.range(&s, t, None, Some(&u64_key(6))).unwrap();
        assert_eq!(head.len(), 3);
        // Open end.
        let tail = tree.range(&s, t, Some(&u64_key(90)), None).unwrap();
        assert_eq!(tail.len(), 5);
    }

    #[test]
    fn remove_works() {
        let (s, t, tree) = setup();
        for i in 0..60u64 {
            tree.insert(&s, t, &u64_key(i), Oid::from_u64(i)).unwrap();
        }
        for i in (0..60u64).step_by(2) {
            assert_eq!(
                tree.remove(&s, t, &u64_key(i)).unwrap(),
                Some(Oid::from_u64(i))
            );
        }
        assert_eq!(tree.len(&s, t).unwrap(), 30);
        assert_eq!(tree.remove(&s, t, &u64_key(0)).unwrap(), None);
        for i in 0..60u64 {
            let expect = (i % 2 == 1).then(|| Oid::from_u64(i));
            assert_eq!(tree.get(&s, t, &u64_key(i)).unwrap(), expect);
        }
        let all = tree.scan_all(&s, t).unwrap();
        assert_eq!(all.len(), 30);
    }

    #[test]
    fn i64_key_order_is_numeric() {
        let mut keys: Vec<i64> = vec![-5, 3, 0, -1, i64::MIN, i64::MAX, 7];
        let mut encoded: Vec<[u8; 8]> = keys.iter().map(|&v| i64_key(v)).collect();
        keys.sort_unstable();
        encoded.sort_unstable();
        let decoded_order: Vec<[u8; 8]> = keys.iter().map(|&v| i64_key(v)).collect();
        assert_eq!(encoded, decoded_order);
    }

    #[test]
    fn abort_rolls_back_tree_changes() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let tree = BTree::create(&s, t, c).unwrap();
        tree.insert(&s, t, b"keep", Oid::new(1, 1)).unwrap();
        s.commit(t).unwrap();

        let t2 = s.begin().unwrap();
        for i in 0..100u64 {
            tree.insert(&s, t2, &u64_key(i), Oid::from_u64(i)).unwrap();
        }
        s.abort(t2).unwrap();

        let t3 = s.begin().unwrap();
        assert_eq!(tree.len(&s, t3).unwrap(), 1);
        assert_eq!(tree.get(&s, t3, b"keep").unwrap(), Some(Oid::new(1, 1)));
        assert_eq!(tree.get(&s, t3, &u64_key(5)).unwrap(), None);
        s.commit(t3).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        use ode_testutil::TempDir;
        let dir = TempDir::new("btree");
        let tree_oid;
        {
            let s = Storage::create(dir.path(), crate::storage::StorageOptions::default()).unwrap();
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let tree = BTree::create(&s, t, c).unwrap();
            for i in 0..300u64 {
                tree.insert(&s, t, &u64_key(i), Oid::from_u64(i)).unwrap();
            }
            s.set_root(t, "tree", tree.oid()).unwrap();
            tree_oid = tree.oid();
            s.commit(t).unwrap();
            s.close().unwrap();
        }
        {
            let s = Storage::open(dir.path(), crate::storage::StorageOptions::default()).unwrap();
            let t = s.begin().unwrap();
            assert_eq!(s.get_root(t, "tree").unwrap(), tree_oid);
            let tree = BTree::open(tree_oid);
            assert_eq!(tree.len(&s, t).unwrap(), 300);
            assert_eq!(
                tree.get(&s, t, &u64_key(250)).unwrap(),
                Some(Oid::from_u64(250))
            );
            s.commit(t).unwrap();
        }
    }
}
