//! Error types for the storage substrate.

use crate::oid::{Oid, PageId};
use crate::txn::TxnId;

/// Every storage operation returns this result type.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors surfaced by the storage engines, lock manager, and transaction
/// manager.
#[allow(missing_docs)] // fields are self-describing
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failed.
    Io(std::io::Error),
    /// The object identified by the Oid does not exist (never allocated or
    /// already freed).
    NoSuchObject(Oid),
    /// A page id beyond the end of the store was referenced.
    NoSuchPage(PageId),
    /// A record was too large to store even with overflow chaining.
    RecordTooLarge(usize),
    /// The transaction was aborted because the lock manager chose it as a
    /// deadlock victim.
    Deadlock(TxnId),
    /// A lock request timed out.
    LockTimeout(TxnId),
    /// An operation was attempted on a transaction that is no longer active.
    TxnNotActive(TxnId),
    /// A commit dependency failed: the transaction this one depends on
    /// aborted, so this one must abort too.
    DependencyAborted { txn: TxnId, on: TxnId },
    /// The database file is corrupt or has an unexpected format.
    Corrupt(String),
    /// Decoding a stored value failed.
    Codec(String),
    /// The named root does not exist.
    NoSuchRoot(String),
    /// The transaction was explicitly aborted by user code (Ode's `tabort`).
    /// Carries an application-supplied reason.
    UserAbort(String),
    /// A WAL write or fsync failed, so the on-disk tail state is unknowable
    /// and no commit can be acknowledged until the log is reopened and
    /// recovered (fail-stop fsync semantics).
    WalPoisoned(String),
    /// A read-only snapshot transaction attempted a write operation.
    ReadOnlyTxn(TxnId),
    /// A quiesced checkpoint was requested while transactions were still
    /// active (carries how many). Use the fuzzy checkpoint to checkpoint
    /// under load.
    NotQuiesced(usize),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::NoSuchObject(oid) => write!(f, "no such object: {oid}"),
            StorageError::NoSuchPage(p) => write!(f, "no such page: {p}"),
            StorageError::RecordTooLarge(n) => write!(f, "record too large: {n} bytes"),
            StorageError::Deadlock(t) => write!(f, "transaction {t} chosen as deadlock victim"),
            StorageError::LockTimeout(t) => {
                write!(f, "transaction {t} timed out waiting for a lock")
            }
            StorageError::TxnNotActive(t) => write!(f, "transaction {t} is not active"),
            StorageError::DependencyAborted { txn, on } => {
                write!(
                    f,
                    "transaction {txn} aborted: commit dependency on {on} failed"
                )
            }
            StorageError::Corrupt(m) => write!(f, "database corrupt: {m}"),
            StorageError::Codec(m) => write!(f, "codec error: {m}"),
            StorageError::NoSuchRoot(n) => write!(f, "no such named root: {n:?}"),
            StorageError::UserAbort(m) => write!(f, "transaction aborted by application: {m}"),
            StorageError::WalPoisoned(m) => {
                write!(f, "write-ahead log poisoned by an i/o failure: {m}")
            }
            StorageError::ReadOnlyTxn(t) => {
                write!(f, "read-only snapshot transaction {t} attempted a write")
            }
            StorageError::NotQuiesced(n) => {
                write!(
                    f,
                    "quiesced checkpoint refused: {n} transaction(s) still active"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// True when the error means "this transaction has been aborted" (victim
    /// of deadlock, dependency failure, or explicit user abort) rather than a
    /// hard environment failure.
    pub fn is_abort(&self) -> bool {
        matches!(
            self,
            StorageError::Deadlock(_)
                | StorageError::DependencyAborted { .. }
                | StorageError::UserAbort(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::NoSuchObject(Oid::new(3, 7));
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn abort_classification() {
        assert!(StorageError::Deadlock(TxnId(1)).is_abort());
        assert!(StorageError::UserAbort("over limit".into()).is_abort());
        assert!(!StorageError::Corrupt("x".into()).is_abort());
    }

    #[test]
    fn io_error_converts() {
        let e: StorageError = std::io::Error::other("boom").into();
        assert!(matches!(e, StorageError::Io(_)));
    }
}
