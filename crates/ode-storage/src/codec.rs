//! A small explicit binary codec.
//!
//! The paper is emphatic that adding or removing triggers must not change
//! persistent object layout (§3 design goal 5). We make layout an explicit,
//! hand-written concern rather than deriving it: every persistent type
//! implements [`Encode`]/[`Decode`] with a fixed, documented byte layout.
//! All integers are little-endian; variable-length data is length-prefixed
//! with a u32.

use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};

/// Serialize `self` by appending bytes to `buf`.
pub trait Encode {
    /// Append the encoded form of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);
}

/// Deserialize from a byte slice, consuming the bytes read.
pub trait Decode: Sized {
    /// Decode a value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self>;
}

/// Encode a value into a fresh `Vec<u8>`.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = BytesMut::new();
    value.encode(&mut buf);
    buf.to_vec()
}

/// Decode a value and require that every byte was consumed.
pub fn decode_all<T: Decode>(mut bytes: &[u8]) -> Result<T> {
    let v = T::decode(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(StorageError::Codec(format!(
            "{} trailing bytes after decode",
            bytes.len()
        )));
    }
    Ok(v)
}

/// Overwrite the little-endian `u32` at `offset` inside an already-encoded
/// buffer. Used to patch a single fixed-offset field (e.g. a trigger
/// record's `statenum`) without re-encoding the whole record.
pub fn patch_u32_le(buf: &mut [u8], offset: usize, value: u32) -> Result<()> {
    let len = buf.len();
    let end = offset.saturating_add(4);
    let slice = buf
        .get_mut(offset..end)
        .filter(|s| s.len() == 4)
        .ok_or_else(|| {
            StorageError::Codec(format!(
                "patch_u32_le at {offset} out of bounds for {len}-byte buffer"
            ))
        })?;
    slice.copy_from_slice(&value.to_le_bytes());
    Ok(())
}

fn need(buf: &&[u8], n: usize, what: &str) -> Result<()> {
    if buf.len() < n {
        Err(StorageError::Codec(format!(
            "short input decoding {what}: need {n}, have {}",
            buf.len()
        )))
    } else {
        Ok(())
    }
}

macro_rules! int_codec {
    ($ty:ty, $put:ident, $get:ident, $n:expr) => {
        impl Encode for $ty {
            fn encode(&self, buf: &mut BytesMut) {
                buf.$put(*self);
            }
        }
        impl Decode for $ty {
            fn decode(buf: &mut &[u8]) -> Result<$ty> {
                need(buf, $n, stringify!($ty))?;
                Ok(buf.$get())
            }
        }
    };
}

int_codec!(u8, put_u8, get_u8, 1);
int_codec!(u16, put_u16_le, get_u16_le, 2);
int_codec!(u32, put_u32_le, get_u32_le, 4);
int_codec!(u64, put_u64_le, get_u64_le, 8);
int_codec!(i8, put_i8, get_i8, 1);
int_codec!(i16, put_i16_le, get_i16_le, 2);
int_codec!(i32, put_i32_le, get_i32_le, 4);
int_codec!(i64, put_i64_le, get_i64_le, 8);
int_codec!(f32, put_f32_le, get_f32_le, 4);
int_codec!(f64, put_f64_le, get_f64_le, 8);

impl Encode for () {
    fn encode(&self, _buf: &mut BytesMut) {}
}

impl Decode for () {
    fn decode(_buf: &mut &[u8]) -> Result<()> {
        Ok(())
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(buf: &mut &[u8]) -> Result<bool> {
        need(buf, 1, "bool")?;
        match buf.get_u8() {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(StorageError::Codec(format!("invalid bool byte {b}"))),
        }
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        buf.put_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut BytesMut) {
        self.as_str().encode(buf);
    }
}

impl Decode for String {
    fn decode(buf: &mut &[u8]) -> Result<String> {
        need(buf, 4, "string length")?;
        let len = buf.get_u32_le() as usize;
        need(buf, len, "string body")?;
        let (head, rest) = buf.split_at(len);
        let s = std::str::from_utf8(head)
            .map_err(|e| StorageError::Codec(format!("invalid utf8: {e}")))?
            .to_owned();
        *buf = rest;
        Ok(s)
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.len() as u32);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Vec<T>> {
        need(buf, 4, "vec length")?;
        let len = buf.get_u32_le() as usize;
        // Guard against hostile lengths: never pre-reserve more than the
        // remaining input could possibly hold (1 byte per element minimum).
        let mut v = Vec::with_capacity(len.min(buf.len()));
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            None => buf.put_u8(0),
            Some(v) => {
                buf.put_u8(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Option<T>> {
        need(buf, 1, "option tag")?;
        match buf.get_u8() {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            b => Err(StorageError::Codec(format!("invalid option tag {b}"))),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(buf: &mut &[u8]) -> Result<(A, B)> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut BytesMut) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(buf: &mut &[u8]) -> Result<(A, B, C)> {
        Ok((A::decode(buf)?, B::decode(buf)?, C::decode(buf)?))
    }
}

/// Raw bytes with a length prefix (distinct from `Vec<u8>` only in intent;
/// same wire format but encoded with a bulk copy).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Blob(pub Vec<u8>);

impl Encode for Blob {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.0.len() as u32);
        buf.put_slice(&self.0);
    }
}

impl Decode for Blob {
    fn decode(buf: &mut &[u8]) -> Result<Blob> {
        need(buf, 4, "blob length")?;
        let len = buf.get_u32_le() as usize;
        need(buf, len, "blob body")?;
        let (head, rest) = buf.split_at(len);
        let out = head.to_vec();
        *buf = rest;
        Ok(Blob(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_all(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(123_456_789u32);
        roundtrip(u64::MAX);
        roundtrip(-12i8);
        roundtrip(i16::MIN);
        roundtrip(-123_456i32);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-2.25f64);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn string_roundtrip() {
        roundtrip(String::from(""));
        roundtrip(String::from("hello, Ode"));
        roundtrip(String::from("ünïcode ✓"));
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, String::from("x")));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip(Blob(vec![0, 1, 2, 255]));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&7u32);
        bytes.push(0);
        assert!(decode_all::<u32>(&bytes).is_err());
    }

    #[test]
    fn short_input_rejected() {
        assert!(decode_all::<u32>(&[1, 2]).is_err());
        assert!(decode_all::<String>(&[5, 0, 0, 0, b'a']).is_err());
    }

    #[test]
    fn invalid_tags_rejected() {
        assert!(decode_all::<bool>(&[2]).is_err());
        assert!(decode_all::<Option<u8>>(&[7]).is_err());
    }

    #[test]
    fn patch_u32_le_rewrites_in_place() {
        // (u32, String, u32): patch the trailing u32 at its fixed offset.
        let mut bytes = encode_to_vec(&(7u32, String::from("abc"), 1u32));
        let offset = 4 + 4 + 3;
        patch_u32_le(&mut bytes, offset, 9).unwrap();
        let back: (u32, String, u32) = decode_all(&bytes).unwrap();
        assert_eq!(back, (7, String::from("abc"), 9));
    }

    #[test]
    fn patch_u32_le_rejects_out_of_bounds() {
        let mut bytes = vec![0u8; 6];
        assert!(patch_u32_le(&mut bytes, 3, 1).is_err());
        assert!(patch_u32_le(&mut bytes, usize::MAX - 2, 1).is_err());
        patch_u32_le(&mut bytes, 2, 0xAABBCCDD).unwrap();
        assert_eq!(&bytes[2..], &[0xDD, 0xCC, 0xBB, 0xAA]);
    }

    #[test]
    fn hostile_vec_length_does_not_overallocate() {
        // Length claims 2^31 elements but only 4 header bytes exist.
        let bytes = [0xFF, 0xFF, 0xFF, 0x7F];
        assert!(decode_all::<Vec<u64>>(&bytes).is_err());
    }
}
