//! Per-object version chains — the MVCC substrate for snapshot readers.
//!
//! The paper's §6 observation is that trigger processing "turns reads into
//! writes": every posting advances a persistent FSM state, so even
//! read-mostly workloads collide on S→X upgrades. Striping the lock
//! manager (PR 5) spread that contention; this module removes it for pure
//! readers by giving every object a short chain of *committed* logical
//! values, so a read-only transaction can be served from a consistent
//! snapshot without touching the lock manager at all. Writers keep strict
//! 2PL among themselves — the chains only ever hold committed data plus a
//! per-object "a writer is active" pin.
//!
//! ## Protocol
//!
//! * **Snapshots.** A read-only transaction registers a snapshot at the
//!   current commit sequence `s` and thereafter sees, for every object,
//!   the newest version with `seq <= s`. Registration and the GC-horizon
//!   computation both run under the snapshot-registry mutex, which is the
//!   serialization point that makes "registered ⇒ my versions survive"
//!   airtight.
//! * **Seeding.** Before a writer's *first* page mutation of an object it
//!   captures the object's committed logical value into the chain
//!   (`seq = 0`, correct because at seed time the pages hold exactly the
//!   committed value every live snapshot could need) and pins the entry
//!   with its `TxnId`. Fresh inserts register an empty pinned entry from
//!   *inside* the page latch of the primary-cell insert, closing the
//!   window where a falling-back reader could see the uncommitted cell.
//! * **Install.** At commit — after the WAL Commit record is appended, so
//!   a visible version always implies a log position the read barrier can
//!   wait on — the writer serializes on the commit lock, assigns
//!   `s = seq + 1`, pushes the final logical value of every object in its
//!   write set, publishes `seq = s`, and opportunistically trims behind
//!   the GC horizon.
//! * **Fallback.** An object with no chain entry is read straight from
//!   the pages (per-page latches only), then the chain is *re-checked*: if
//!   an entry appeared, a writer raced the read and the page bytes may be
//!   mid-mutation, so the result — errors included — is discarded and the
//!   read retries through the chain. Absence at both ends of the window
//!   proves the pages held a committed-stable value throughout, because
//!   every mutation path registers its entry before its first page write
//!   and entries are only *removed* while the snapshot registry is empty
//!   (and a falling-back reader's own snapshot keeps it non-empty).
//! * **GC.** Versions superseded by a later version at or below the
//!   horizon (oldest active snapshot, else the current sequence) are
//!   dropped at install time and on full sweeps; whole entries are
//!   reclaimed only when no snapshot is registered, which keeps the store
//!   empty on write-only workloads.

use crate::oid::ClusterId;
use crate::txn::TxnId;
use ode_obs::Metrics;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One committed logical value of an object. `data = None` is a delete
/// marker: the object does not exist at or after this sequence.
#[derive(Debug, Clone)]
struct Version {
    seq: u64,
    data: Option<Arc<[u8]>>,
}

/// The version chain of a single object, keyed by its primary Oid.
#[derive(Debug)]
struct Chain {
    /// The transaction currently mutating this object's pages, if any.
    /// While set, the entry must not be reclaimed — falling-back readers
    /// rely on its presence to detect the in-flight mutation.
    writer: Option<TxnId>,
    /// Cluster the object belongs to (snapshot cluster scans must find
    /// objects whose cells were already physically purged).
    cluster: ClusterId,
    /// Committed versions in ascending `seq` order. A chain seeded by a
    /// writer starts with the pre-mutation committed value at `seq = 0`;
    /// an uncommitted insert's chain is empty until the install.
    versions: Vec<Version>,
}

/// Outcome of a snapshot visibility check for one object.
#[derive(Debug)]
pub enum SnapshotLookup {
    /// The newest version at or below the snapshot holds this value.
    Value(Arc<[u8]>),
    /// The object is deleted (or not yet created) at the snapshot.
    Deleted,
    /// No chain entry: the pages are authoritative (fall back, re-check).
    Untracked,
}

/// Point-in-time shape of the version store, for tests and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionStats {
    /// Number of objects with a live chain entry.
    pub entries: usize,
    /// Total committed versions retained across all chains.
    pub versions: usize,
    /// Published commit sequence (0 before the first install).
    pub seq: u64,
    /// Number of distinct snapshot sequences currently registered.
    pub active_snapshots: usize,
}

/// The process-wide store of object version chains. See module docs.
pub struct VersionStore {
    shards: Box<[Mutex<HashMap<u64, Chain>>]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: usize,
    /// Last published commit sequence. Stored with `Release` after a full
    /// write set is installed, so a snapshot registered at `s` always
    /// finds every version with `seq <= s` already in place.
    seq: AtomicU64,
    /// Serializes installs: one commit's whole write set becomes visible
    /// at a single sequence number (no torn multi-object reads).
    commit_lock: Mutex<()>,
    /// Registered snapshot sequences with reference counts.
    snapshots: Mutex<BTreeMap<u64, usize>>,
    metrics: Arc<Metrics>,
}

impl VersionStore {
    /// A store with `shards` map shards (rounded up to a power of two).
    pub fn new(shards: usize, metrics: Arc<Metrics>) -> VersionStore {
        let n = shards.max(1).next_power_of_two();
        VersionStore {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
            seq: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            snapshots: Mutex::new(BTreeMap::new()),
            metrics,
        }
    }

    fn shard(&self, oid: u64) -> &Mutex<HashMap<u64, Chain>> {
        // Oids pack (page, slot); fold the high half in so dense pages
        // still spread over shards.
        &self.shards[((oid ^ (oid >> 32)) as usize) & self.mask]
    }

    /// The last published commit sequence.
    pub fn current_seq(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Register a snapshot at the current commit sequence and return it.
    /// Runs under the registry mutex so it serializes against the GC
    /// horizon computation: once this returns, no version the snapshot
    /// can see will be reclaimed until [`VersionStore::release_snapshot`].
    pub fn register_snapshot(&self) -> u64 {
        let mut snaps = self.snapshots.lock();
        let s = self.seq.load(Ordering::Acquire);
        *snaps.entry(s).or_insert(0) += 1;
        s
    }

    /// Release a snapshot. When the oldest registered sequence advances
    /// (or the registry empties), the GC horizon moved: run a full sweep.
    pub fn release_snapshot(&self, s: u64) {
        let horizon_moved = {
            let mut snaps = self.snapshots.lock();
            let was_min = snaps.keys().next() == Some(&s);
            match snaps.get_mut(&s) {
                Some(n) if *n > 1 => {
                    *n -= 1;
                    false
                }
                Some(_) => {
                    snaps.remove(&s);
                    was_min
                }
                None => {
                    debug_assert!(false, "released unregistered snapshot {s}");
                    false
                }
            }
        };
        if horizon_moved {
            self.vacuum();
        }
    }

    /// The newest version of `oid` visible at snapshot `s`.
    pub fn visible(&self, oid: u64, s: u64) -> SnapshotLookup {
        let shard = self.shard(oid).lock();
        match shard.get(&oid) {
            None => SnapshotLookup::Untracked,
            Some(chain) => match chain.versions.iter().rev().find(|v| v.seq <= s) {
                Some(Version { data: Some(d), .. }) => SnapshotLookup::Value(Arc::clone(d)),
                // A delete marker, or an object created after `s` (all
                // versions newer, or none committed yet): logically absent.
                Some(Version { data: None, .. }) | None => SnapshotLookup::Deleted,
            },
        }
    }

    /// Capture `committed` — the object's logical value before any of
    /// `txn`'s mutations — and pin the entry. MUST be called before the
    /// transaction's first page mutation of this object. The `seq = 0`
    /// seed is correct for every live snapshot because entries are only
    /// reclaimed when the pages hold the newest committed value (so at
    /// seed time, pages == committed value for all of them).
    pub fn seed(&self, oid: u64, cluster: ClusterId, txn: TxnId, committed: Vec<u8>) {
        let mut shard = self.shard(oid).lock();
        let chain = shard.entry(oid).or_insert_with(|| Chain {
            writer: None,
            cluster,
            versions: Vec::new(),
        });
        chain.writer = Some(txn);
        chain.cluster = cluster;
        if chain.versions.is_empty() {
            chain.versions.push(Version {
                seq: 0,
                data: Some(Arc::from(committed.into_boxed_slice())),
            });
        }
    }

    /// Register an uncommitted insert's (empty) pinned entry. Called from
    /// *inside* the page latch that inserts the primary cell, so no
    /// falling-back reader can observe the cell before the entry exists.
    /// Committed versions from a previous life of the Oid are kept.
    pub fn note_insert(&self, oid: u64, cluster: ClusterId, txn: TxnId) {
        let mut shard = self.shard(oid).lock();
        let chain = shard.entry(oid).or_insert_with(|| Chain {
            writer: None,
            cluster,
            versions: Vec::new(),
        });
        chain.writer = Some(txn);
        chain.cluster = cluster;
    }

    /// Install the committed values of a write set as one atomic sequence
    /// step. `read` computes each object's final logical value from the
    /// pages (`None` = deleted); it runs before any chain shard is locked.
    /// Returns the new commit sequence.
    pub fn install(
        &self,
        dirty: &[u64],
        mut read: impl FnMut(u64) -> crate::error::Result<(ClusterId, Option<Vec<u8>>)>,
    ) -> crate::error::Result<u64> {
        let _serialize = self.commit_lock.lock();
        let s = self.seq.load(Ordering::Relaxed) + 1;
        let mut values = Vec::with_capacity(dirty.len());
        for &oid in dirty {
            values.push(read(oid)?);
        }
        for (&oid, (cluster, value)) in dirty.iter().zip(values) {
            let mut shard = self.shard(oid).lock();
            let chain = shard.entry(oid).or_insert_with(|| Chain {
                writer: None,
                cluster,
                versions: Vec::new(),
            });
            chain.writer = None;
            chain.versions.push(Version {
                seq: s,
                data: value.map(|v| Arc::from(v.into_boxed_slice())),
            });
            self.metrics
                .version_chain_len
                .record(chain.versions.len() as u64);
        }
        self.seq.store(s, Ordering::Release);
        self.gc(dirty.iter().copied());
        Ok(s)
    }

    /// Unpin `txn`'s entries after its page mutations were rolled back.
    /// Entries are kept — even empty ones — so a reader mid-fallback can
    /// still detect that the pages were mutated inside its read window;
    /// the next registry-empty sweep reclaims them.
    pub fn clear_writer(&self, txn: TxnId, dirty: &[u64]) {
        for &oid in dirty {
            let mut shard = self.shard(oid).lock();
            if let Some(chain) = shard.get_mut(&oid) {
                if chain.writer == Some(txn) {
                    chain.writer = None;
                }
            }
        }
    }

    /// Objects of `cluster` that exist at snapshot `s` according to the
    /// chains — the scan-side complement for objects whose page cells were
    /// physically purged after the snapshot began.
    pub fn cluster_members(&self, cluster: ClusterId, s: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock();
            for (&oid, chain) in shard.iter() {
                if chain.cluster != cluster {
                    continue;
                }
                if let Some(v) = chain.versions.iter().rev().find(|v| v.seq <= s) {
                    if v.data.is_some() {
                        out.push(oid);
                    }
                }
            }
        }
        out
    }

    /// GC horizon and whether whole-entry reclamation is allowed. Runs
    /// under the registry mutex — the serialization point against
    /// [`VersionStore::register_snapshot`].
    fn horizon(&self) -> (u64, bool) {
        let snaps = self.snapshots.lock();
        match snaps.keys().next() {
            Some(&oldest) => (oldest, false),
            None => (self.seq.load(Ordering::Acquire), true),
        }
    }

    /// Trim the given chains behind the horizon; reclaim writer-free
    /// entries entirely when no snapshot is registered.
    fn gc(&self, oids: impl Iterator<Item = u64>) {
        let (horizon, reclaim) = self.horizon();
        let mut dropped = 0u64;
        for oid in oids {
            let mut shard = self.shard(oid).lock();
            if let Some(chain) = shard.get_mut(&oid) {
                dropped += Self::trim(chain, horizon);
                if reclaim && chain.writer.is_none() {
                    dropped += chain.versions.len() as u64;
                    shard.remove(&oid);
                }
            }
        }
        if dropped > 0 {
            self.metrics.versions_gced.add(dropped);
        }
    }

    /// Full sweep: trim every chain behind the horizon and — only while
    /// the registry is empty — drop writer-free entries entirely, leaving
    /// the pages authoritative. Entry removal with snapshots registered
    /// would let a falling-back reader miss a rolled-back mutation that
    /// happened inside its read window, so it is never done.
    pub fn vacuum(&self) {
        let (horizon, reclaim) = self.horizon();
        let mut dropped = 0u64;
        for shard in self.shards.iter() {
            let mut shard = shard.lock();
            shard.retain(|_, chain| {
                dropped += Self::trim(chain, horizon);
                if reclaim && chain.writer.is_none() {
                    dropped += chain.versions.len() as u64;
                    false
                } else {
                    true
                }
            });
        }
        if dropped > 0 {
            self.metrics.versions_gced.add(dropped);
        }
    }

    /// Drop versions superseded by a later version with `seq <= horizon`;
    /// returns how many were dropped. The newest version at or below the
    /// horizon is the floor every current and future snapshot can reach.
    fn trim(chain: &mut Chain, horizon: u64) -> u64 {
        let keep_from = chain
            .versions
            .iter()
            .rposition(|v| v.seq <= horizon)
            .unwrap_or(0);
        if keep_from > 0 {
            chain.versions.drain(..keep_from);
        }
        keep_from as u64
    }

    /// Current shape of the store.
    pub fn stats(&self) -> VersionStats {
        let mut entries = 0;
        let mut versions = 0;
        for shard in self.shards.iter() {
            let shard = shard.lock();
            entries += shard.len();
            versions += shard.values().map(|c| c.versions.len()).sum::<usize>();
        }
        VersionStats {
            entries,
            versions,
            seq: self.seq.load(Ordering::Acquire),
            active_snapshots: self.snapshots.lock().len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> VersionStore {
        VersionStore::new(4, Arc::new(Metrics::new()))
    }

    fn install_one(vs: &VersionStore, oid: u64, value: Option<&[u8]>) -> u64 {
        vs.install(&[oid], |_| Ok((7, value.map(<[u8]>::to_vec))))
            .unwrap()
    }

    #[test]
    fn untracked_objects_fall_back() {
        let vs = store();
        assert!(matches!(vs.visible(9, 0), SnapshotLookup::Untracked));
    }

    #[test]
    fn snapshot_sees_seed_not_later_install() {
        let vs = store();
        let s = vs.register_snapshot();
        vs.seed(1, 7, TxnId(1), b"old".to_vec());
        // Reader sees the seed while the writer is active...
        match vs.visible(1, s) {
            SnapshotLookup::Value(d) => assert_eq!(&d[..], b"old"),
            other => panic!("expected seed value, got {other:?}"),
        }
        // ...and still after the writer commits a newer version.
        install_one(&vs, 1, Some(b"new"));
        match vs.visible(1, s) {
            SnapshotLookup::Value(d) => assert_eq!(&d[..], b"old"),
            other => panic!("expected old value, got {other:?}"),
        }
        // A snapshot taken after the install sees the new value.
        let s2 = vs.register_snapshot();
        match vs.visible(1, s2) {
            SnapshotLookup::Value(d) => assert_eq!(&d[..], b"new"),
            other => panic!("expected new value, got {other:?}"),
        }
        vs.release_snapshot(s);
        vs.release_snapshot(s2);
    }

    #[test]
    fn uncommitted_insert_is_invisible() {
        let vs = store();
        let s = vs.register_snapshot();
        vs.note_insert(3, 7, TxnId(2));
        assert!(matches!(vs.visible(3, s), SnapshotLookup::Deleted));
        vs.release_snapshot(s);
    }

    #[test]
    fn delete_markers_and_oid_reuse() {
        let vs = store();
        install_one(&vs, 5, Some(b"v1"));
        let s1 = vs.register_snapshot();
        // A deleting writer seeds the committed value before mutating.
        vs.seed(5, 7, TxnId(2), b"v1".to_vec());
        let s_del = install_one(&vs, 5, None);
        let s2 = vs.register_snapshot();
        assert!(s2 >= s_del);
        // Old snapshot still reads v1; new snapshot sees the deletion.
        assert!(matches!(vs.visible(5, s1), SnapshotLookup::Value(_)));
        assert!(matches!(vs.visible(5, s2), SnapshotLookup::Deleted));
        // Oid reuse: a fresh insert pins the entry, keeps history.
        vs.note_insert(5, 7, TxnId(3));
        assert!(matches!(vs.visible(5, s1), SnapshotLookup::Value(_)));
        assert!(matches!(vs.visible(5, s2), SnapshotLookup::Deleted));
        install_one(&vs, 5, Some(b"v2"));
        let s3 = vs.register_snapshot();
        match vs.visible(5, s3) {
            SnapshotLookup::Value(d) => assert_eq!(&d[..], b"v2"),
            other => panic!("expected v2, got {other:?}"),
        }
        vs.release_snapshot(s1);
        vs.release_snapshot(s2);
        vs.release_snapshot(s3);
    }

    #[test]
    fn store_self_empties_without_snapshots() {
        let vs = store();
        vs.seed(1, 7, TxnId(1), b"a".to_vec());
        install_one(&vs, 1, Some(b"b"));
        // No snapshots registered: the install reclaims its own entry.
        assert_eq!(vs.stats().entries, 0);
        assert_eq!(vs.stats().seq, 1);
    }

    #[test]
    fn release_of_last_snapshot_vacuums() {
        let vs = store();
        let s = vs.register_snapshot();
        vs.seed(1, 7, TxnId(1), b"a".to_vec());
        install_one(&vs, 1, Some(b"b"));
        assert_eq!(vs.stats().entries, 1);
        vs.release_snapshot(s);
        assert_eq!(vs.stats().entries, 0);
        assert_eq!(vs.stats().active_snapshots, 0);
    }

    #[test]
    fn trim_keeps_horizon_floor() {
        let vs = store();
        // Commit v1 with no snapshots: the store self-empties and the
        // pages become authoritative for v1.
        install_one(&vs, 1, Some(b"v1"));
        let s = vs.register_snapshot(); // pins the horizon at seq 1
                                        // Each writer seeds the committed floor before mutating.
        vs.seed(1, 7, TxnId(1), b"v1".to_vec());
        install_one(&vs, 1, Some(b"v2"));
        vs.seed(1, 7, TxnId(2), b"v2".to_vec()); // non-empty chain: no-op
        install_one(&vs, 1, Some(b"v3"));
        // The seeded v1 floor survives (it is the newest version at or
        // below the horizon); nothing behind it exists to trim.
        let stats = vs.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.versions, 3);
        match vs.visible(1, s) {
            SnapshotLookup::Value(d) => assert_eq!(&d[..], b"v1"),
            other => panic!("expected v1, got {other:?}"),
        }
        vs.release_snapshot(s);
        assert_eq!(vs.stats().entries, 0);
    }

    #[test]
    fn abort_keeps_entry_until_registry_empty_sweep() {
        let vs = store();
        let s = vs.register_snapshot();
        vs.note_insert(8, 7, TxnId(4));
        vs.clear_writer(TxnId(4), &[8]);
        // Entry survives (reader-window safety) but reads as deleted.
        assert_eq!(vs.stats().entries, 1);
        assert!(matches!(vs.visible(8, s), SnapshotLookup::Deleted));
        vs.release_snapshot(s);
        assert_eq!(vs.stats().entries, 0);
    }

    #[test]
    fn cluster_members_tracks_visibility() {
        let vs = store();
        install_one(&vs, 1, Some(b"live"));
        let s1 = vs.register_snapshot();
        // The deleting writer seeds the committed value first, as always.
        vs.seed(1, 7, TxnId(1), b"live".to_vec());
        install_one(&vs, 1, None);
        let s2 = vs.register_snapshot();
        assert_eq!(vs.cluster_members(7, s1), vec![1]);
        assert!(vs.cluster_members(7, s2).is_empty());
        assert!(vs.cluster_members(8, s1).is_empty());
        vs.release_snapshot(s1);
        vs.release_snapshot(s2);
    }
}
