//! Object and page identifiers.
//!
//! Ode identifies every persistent object by a unique identifier — "a pointer
//! to a persistent object" (§2 of the paper). We realise that as an [`Oid`]:
//! the page the object lives on plus its slot within the page. Oids are
//! stable for the lifetime of the object: if an update grows a record past
//! its page's free space the heap leaves a forwarding stub behind, so the
//! original Oid keeps working.

use crate::codec::{Decode, Encode};
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};

/// Identifier of a fixed-size page within a database file.
pub type PageId = u32;

/// Identifier of a cluster (Ode groups persistent objects of one class into
/// a cluster; iteration happens per cluster).
pub type ClusterId = u32;

/// Cluster tag of a page that has not been assigned to any cluster yet.
pub const UNASSIGNED_CLUSTER: ClusterId = 0;

/// The cluster reserved for storage-internal bookkeeping (named roots,
/// index pages). User clusters start at [`FIRST_USER_CLUSTER`].
pub const SYSTEM_CLUSTER: ClusterId = 1;

/// First cluster id handed out to user classes.
pub const FIRST_USER_CLUSTER: ClusterId = 2;

/// A persistent object identifier: (page, slot).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid {
    page: PageId,
    slot: u16,
}

impl Oid {
    /// Construct an Oid from its parts.
    pub const fn new(page: PageId, slot: u16) -> Oid {
        Oid { page, slot }
    }

    /// The page holding (the head of) the object.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// The slot within the page.
    pub fn slot(&self) -> u16 {
        self.slot
    }

    /// Pack into a u64 (useful as a hash/index key).
    pub fn to_u64(&self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    /// Unpack from [`Oid::to_u64`] form.
    pub fn from_u64(v: u64) -> Oid {
        Oid {
            page: (v >> 16) as PageId,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

impl std::fmt::Debug for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Oid({}:{})", self.page, self.slot)
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

impl Encode for Oid {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.page);
        buf.put_u16_le(self.slot);
    }
}

impl Decode for Oid {
    fn decode(buf: &mut &[u8]) -> Result<Oid> {
        if buf.len() < 6 {
            return Err(StorageError::Codec("short Oid".into()));
        }
        let page = buf.get_u32_le();
        let slot = buf.get_u16_le();
        Ok(Oid { page, slot })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_all, encode_to_vec};

    #[test]
    fn u64_roundtrip() {
        let oid = Oid::new(123_456, 789);
        assert_eq!(Oid::from_u64(oid.to_u64()), oid);
    }

    #[test]
    fn codec_roundtrip() {
        let oid = Oid::new(42, 7);
        let bytes = encode_to_vec(&oid);
        let back: Oid = decode_all(&bytes).unwrap();
        assert_eq!(back, oid);
    }

    #[test]
    fn ordering_is_page_major() {
        assert!(Oid::new(1, 9) < Oid::new(2, 0));
        assert!(Oid::new(1, 1) < Oid::new(1, 2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Oid::new(3, 4).to_string(), "3:4");
        assert_eq!(format!("{:?}", Oid::new(3, 4)), "Oid(3:4)");
    }
}
