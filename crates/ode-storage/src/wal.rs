//! Write-ahead log for the disk engine.
//!
//! Logging is *physiological*: records describe cell-level operations
//! (insert/update/delete of a slot on a page) tagged with the transaction
//! that performed them; updates and deletes also carry the cell's
//! before-image. Combined with the buffer pool's no-steal policy and
//! quiesced checkpoints, recovery *repeats history* (ARIES-style): the
//! data file is exactly the last checkpoint image, every logged cell
//! operation — including abort-time rollback steps, which are logged as
//! ordinary records in compensation-log style — is reapplied in log
//! order, and transactions that were still in flight at the crash are
//! then rolled back from the before-images. Aborted transactions need no
//! extra work: their rollback is itself in the log, which is how "actions
//! of aborted transactions are rolled back, \[and\] so are their
//! associated events" (§5.5) — trigger state lives in ordinary records,
//! so its rollback rides the same mechanism.
//!
//! Frame format: `[len u32][fnv1a-checksum u32][payload]`. A torn tail
//! (short frame or bad checksum) ends replay; everything before it is used,
//! and [`Wal::open`] *truncates* the tear so fresh appends can never land
//! behind unreachable garbage.
//!
//! ## LSNs and group commit
//!
//! Every append is assigned a monotonically increasing LSN (the byte
//! offset of the record's *end* in the logical log; the clock keeps
//! running across [`Wal::reset`]). A record is durable once the
//! `flushed_lsn` watermark reaches its LSN. Committers call
//! [`Wal::commit_wait`] with their Commit record's LSN: the first one in
//! becomes the *leader*, takes the whole pending tail, and makes it
//! durable with a single write+fsync while followers block on the
//! watermark via condvar — one fsync amortised over every commit in the
//! batch. With group commit disabled (the pre-refactor baseline, kept for
//! benchmarking) every committer runs its own flush cycle.
//!
//! A failed WAL write or fsync *poisons* the log: the batch may be torn on
//! disk, so no later commit can be allowed to succeed (fsyncgate
//! semantics). Every subsequent `commit_wait` returns
//! [`StorageError::WalPoisoned`]; the only way forward is reopen +
//! recovery, which truncates the tear.

use crate::codec::{Decode, Encode};
use crate::error::{Result, StorageError};
use crate::fault::{FaultFile, FaultInjector};
use crate::oid::{ClusterId, PageId};
use bytes::{BufMut, BytesMut};
use ode_obs::{Metrics, TraceEvent};
use parking_lot::{Condvar, Mutex};
use std::io::{Read, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// One log record.
#[allow(missing_docs)] // fields are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A transaction started.
    Begin { txn: u64 },
    /// A cell was inserted at (page, slot) with the given bytes.
    CellInsert {
        txn: u64,
        page: PageId,
        slot: u16,
        data: Vec<u8>,
    },
    /// The cell at (page, slot) was overwritten with `data`; `before` is
    /// the cell's previous bytes, used to roll back transactions that
    /// were still in flight at a crash.
    CellUpdate {
        txn: u64,
        page: PageId,
        slot: u16,
        data: Vec<u8>,
        before: Vec<u8>,
    },
    /// The cell at (page, slot) was deleted; `before` is the deleted
    /// cell's bytes, used to roll back in-flight transactions at a crash.
    CellDelete {
        txn: u64,
        page: PageId,
        slot: u16,
        before: Vec<u8>,
    },
    /// A fresh page was allocated and assigned to a cluster.
    PageAlloc {
        txn: u64,
        page: PageId,
        cluster: ClusterId,
    },
    /// The transaction committed (durable once this record is on disk).
    Commit { txn: u64 },
    /// The transaction aborted. Its rollback steps were logged as
    /// ordinary cell records before this, so recovery just repeats them;
    /// the Abort marks that no further rollback is needed for the txn.
    Abort { txn: u64 },
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_PAGE_ALLOC: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;

impl LogRecord {
    /// The transaction the record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::CellInsert { txn, .. }
            | LogRecord::CellUpdate { txn, .. }
            | LogRecord::CellDelete { txn, .. }
            | LogRecord::PageAlloc { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

impl Encode for LogRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LogRecord::Begin { txn } => {
                buf.put_u8(TAG_BEGIN);
                txn.encode(buf);
            }
            LogRecord::CellInsert {
                txn,
                page,
                slot,
                data,
            } => {
                buf.put_u8(TAG_INSERT);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                data.encode(buf);
            }
            LogRecord::CellUpdate {
                txn,
                page,
                slot,
                data,
                before,
            } => {
                buf.put_u8(TAG_UPDATE);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                data.encode(buf);
                before.encode(buf);
            }
            LogRecord::CellDelete {
                txn,
                page,
                slot,
                before,
            } => {
                buf.put_u8(TAG_DELETE);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                before.encode(buf);
            }
            LogRecord::PageAlloc { txn, page, cluster } => {
                buf.put_u8(TAG_PAGE_ALLOC);
                txn.encode(buf);
                page.encode(buf);
                cluster.encode(buf);
            }
            LogRecord::Commit { txn } => {
                buf.put_u8(TAG_COMMIT);
                txn.encode(buf);
            }
            LogRecord::Abort { txn } => {
                buf.put_u8(TAG_ABORT);
                txn.encode(buf);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(buf: &mut &[u8]) -> Result<LogRecord> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            TAG_BEGIN => LogRecord::Begin {
                txn: u64::decode(buf)?,
            },
            TAG_INSERT => LogRecord::CellInsert {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                data: Vec::<u8>::decode(buf)?,
            },
            TAG_UPDATE => LogRecord::CellUpdate {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                data: Vec::<u8>::decode(buf)?,
                before: Vec::<u8>::decode(buf)?,
            },
            TAG_DELETE => LogRecord::CellDelete {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                before: Vec::<u8>::decode(buf)?,
            },
            TAG_PAGE_ALLOC => LogRecord::PageAlloc {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                cluster: ClusterId::decode(buf)?,
            },
            TAG_COMMIT => LogRecord::Commit {
                txn: u64::decode(buf)?,
            },
            TAG_ABORT => LogRecord::Abort {
                txn: u64::decode(buf)?,
            },
            t => return Err(StorageError::Codec(format!("bad log record tag {t}"))),
        })
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// In-memory tail of the log: bytes appended but not yet written out.
struct WalTail {
    pending: Vec<u8>,
    /// Next log sequence number. LSNs are globally monotonic — they do NOT
    /// restart at [`Wal::reset`] — so a durability ticket taken before an
    /// auto-checkpoint is still satisfiable after it.
    next_lsn: u64,
    /// Commit records sitting in `pending` (feeds the group-size metric).
    pending_commits: u64,
}

/// Durability watermark + leader election for group commit.
struct FlushState {
    /// Every record with `lsn <= flushed_lsn` is durable (written, and
    /// fsynced when fsync is configured).
    flushed_lsn: u64,
    /// A committer is currently writing a batch; others wait on the condvar.
    leader_active: bool,
    /// Set on the first failed WAL write/fsync; sticky until reopen.
    poisoned: Option<String>,
}

/// An append-only write-ahead log with group commit.
pub struct Wal {
    path: PathBuf,
    tail: Mutex<WalTail>,
    file: Mutex<FaultFile>,
    flush: Mutex<FlushState>,
    durable: Condvar,
    /// Whether commit flushes call fsync. Off by default for tests/benches;
    /// on for durability-critical deployments.
    fsync: bool,
    /// Leader/follower batching when true; per-committer flush cycles when
    /// false (the pre-refactor baseline, kept for benchmarking).
    group_commit: bool,
    metrics: Arc<Metrics>,
}

impl Wal {
    /// Open (creating if missing) the log at `path`.
    pub fn open(path: &Path, fsync: bool) -> Result<Wal> {
        Wal::open_with(path, fsync, None, true)
    }

    /// Open with an optional fault injector and an explicit group-commit
    /// mode. A torn or corrupt tail left by a crash is truncated here so
    /// fresh appends can never land behind unreachable garbage.
    pub fn open_with(
        path: &Path,
        fsync: bool,
        injector: Option<Arc<FaultInjector>>,
        group_commit: bool,
    ) -> Result<Wal> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // Existing log contents are the recovery source: never clobber.
            .truncate(false)
            .open(path)?;
        let mut file = FaultFile::new(file, injector);
        file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let valid = scan_valid_len(&bytes);
        if valid < bytes.len() {
            file.set_len(valid as u64)?;
            if fsync {
                file.sync_data()?;
            }
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            path: path.to_path_buf(),
            tail: Mutex::new(WalTail {
                pending: Vec::new(),
                next_lsn: valid as u64,
                pending_commits: 0,
            }),
            file: Mutex::new(file),
            flush: Mutex::new(FlushState {
                flushed_lsn: valid as u64,
                leader_active: false,
                poisoned: None,
            }),
            durable: Condvar::new(),
            fsync,
            group_commit,
            metrics: Arc::new(Metrics::new()),
        })
    }

    /// Replace the metrics registry (done once at storage assembly so the
    /// WAL shares the database-wide registry).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = metrics;
    }

    /// Append a record to the in-memory tail; returns the LSN of the
    /// record's *end*. The record is durable once [`Wal::flushed_lsn`]
    /// reaches that value — see [`Wal::commit_wait`].
    pub fn append(&self, record: &LogRecord) -> u64 {
        let mut payload = BytesMut::new();
        record.encode(&mut payload);
        let mut tail = self.tail.lock();
        tail.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        tail.pending
            .extend_from_slice(&fnv1a(&payload).to_le_bytes());
        tail.pending.extend_from_slice(&payload);
        tail.next_lsn += 8 + payload.len() as u64;
        if matches!(record, LogRecord::Commit { .. }) {
            tail.pending_commits += 1;
        }
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(8 + payload.len() as u64);
        tail.next_lsn
    }

    /// The durability watermark: every append whose returned LSN is `<=`
    /// this value has been written (and fsynced when configured).
    pub fn flushed_lsn(&self) -> u64 {
        self.flush.lock().flushed_lsn
    }

    /// LSN of the current logical end of the log.
    pub fn end_lsn(&self) -> u64 {
        self.tail.lock().next_lsn
    }

    /// Block until the record ending at `target` is durable, recording the
    /// wait in `commit_flush_wait_micros`. With group commit enabled the
    /// first committer in becomes the leader and flushes the whole pending
    /// tail (one write+fsync for every commit in it); the rest block on the
    /// watermark. With group commit disabled every caller runs its own
    /// flush cycle — the per-commit-fsync baseline.
    pub fn commit_wait(&self, target: u64) -> Result<()> {
        let t0 = std::time::Instant::now();
        let result = self.wait_durable(target);
        self.metrics
            .commit_flush_wait_micros
            .record(t0.elapsed().as_micros() as u64);
        result
    }

    /// Write the pending tail to the file (and fsync if configured).
    /// Equivalent to `commit_wait(end_lsn)` without the wait metric.
    pub fn flush(&self) -> Result<()> {
        let target = self.tail.lock().next_lsn;
        self.wait_durable(target)
    }

    fn wait_durable(&self, target: u64) -> Result<()> {
        let mut st = self.flush.lock();
        // In baseline (non-group) mode each committer must pay its own
        // fsync even if a concurrent flush already covered its LSN.
        let mut flushed_myself = false;
        loop {
            if let Some(msg) = &st.poisoned {
                return Err(StorageError::WalPoisoned(msg.clone()));
            }
            if st.flushed_lsn >= target && (self.group_commit || flushed_myself) {
                return Ok(());
            }
            if st.leader_active {
                let _ = self.durable.wait_for(&mut st, Duration::from_millis(50));
                continue;
            }
            // Become the leader: snapshot the tail, release the flush lock
            // while doing I/O so appenders and new waiters are not blocked
            // behind the fsync.
            st.leader_active = true;
            drop(st);
            let (batch, end, commits) = {
                let mut tail = self.tail.lock();
                (
                    std::mem::take(&mut tail.pending),
                    tail.next_lsn,
                    std::mem::take(&mut tail.pending_commits),
                )
            };
            let io = self.write_batch(&batch);
            st = self.flush.lock();
            st.leader_active = false;
            match io {
                Ok(()) => {
                    st.flushed_lsn = st.flushed_lsn.max(end);
                    if commits > 0 {
                        self.metrics.wal_group_commits.inc();
                        self.metrics.wal_group_size_sum.add(commits);
                    }
                    flushed_myself = true;
                    self.durable.notify_all();
                }
                Err(e) => {
                    // The batch may be torn on disk and the commits in it
                    // were never acknowledged: fail them all, and every
                    // later commit too (a retried fsync proves nothing).
                    let msg = e.to_string();
                    st.poisoned = Some(msg.clone());
                    self.durable.notify_all();
                    self.metrics
                        .dump_flight(format!("WAL poisoned at lsn<={end}: {msg}"));
                    return Err(StorageError::WalPoisoned(msg));
                }
            }
        }
    }

    fn write_batch(&self, batch: &[u8]) -> std::io::Result<()> {
        let mut file = self.file.lock();
        if !batch.is_empty() {
            file.seek(SeekFrom::End(0))?;
            file.write_all(batch)?;
        }
        if self.fsync {
            let t0 = std::time::Instant::now();
            file.sync_data()?;
            self.metrics
                .fsync_micros
                .record(t0.elapsed().as_micros() as u64);
            self.metrics.wal_fsyncs.inc();
            self.metrics.emit(|| TraceEvent::WalFsync {
                bytes_flushed: batch.len() as u64,
            });
        }
        Ok(())
    }

    /// Truncate the log file to empty (done right after a checkpoint, when
    /// the data file already reflects everything). The LSN clock keeps
    /// running and the now-empty log is durable by definition, so
    /// durability tickets taken before the reset remain satisfied.
    pub fn reset(&self) -> Result<()> {
        let mut st = self.flush.lock();
        while st.leader_active {
            let _ = self.durable.wait_for(&mut st, Duration::from_millis(50));
        }
        let mut tail = self.tail.lock();
        let mut file = self.file.lock();
        tail.pending.clear();
        tail.pending_commits = 0;
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        if self.fsync {
            file.sync_data()?;
        }
        st.flushed_lsn = tail.next_lsn;
        self.durable.notify_all();
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every valid record currently in the log file. A torn or corrupt
    /// tail ends the scan silently (those records were never acknowledged).
    pub fn read_all(path: &Path) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let valid = scan_valid_len(&bytes);
        let mut cursor = &bytes[..valid];
        while cursor.len() >= 8 {
            let len = u32::from_le_bytes(cursor[0..4].try_into().unwrap()) as usize;
            let payload = &cursor[8..8 + len];
            let mut p = payload;
            match LogRecord::decode(&mut p) {
                Ok(rec) if p.is_empty() => out.push(rec),
                _ => break,
            }
            cursor = &cursor[8 + len..];
        }
        Ok(out)
    }
}

/// Length of the valid frame prefix of a log image: the scan stops at a
/// short frame, a checksum mismatch, or trailing garbage.
fn scan_valid_len(bytes: &[u8]) -> usize {
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if bytes.len() - offset < 8 + len {
            break; // torn tail
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        if fnv1a(payload) != sum {
            break; // corrupt tail
        }
        offset += 8 + len;
    }
    offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::PageAlloc {
                txn: 1,
                page: 1,
                cluster: 2,
            },
            LogRecord::CellInsert {
                txn: 1,
                page: 1,
                slot: 0,
                data: b"hello".to_vec(),
            },
            LogRecord::CellUpdate {
                txn: 1,
                page: 1,
                slot: 0,
                data: b"world".to_vec(),
                before: b"hello".to_vec(),
            },
            LogRecord::CellDelete {
                txn: 1,
                page: 1,
                slot: 0,
                before: b"world".to_vec(),
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Begin { txn: 2 },
            LogRecord::Abort { txn: 2 },
        ]
    }

    #[test]
    fn append_flush_read_roundtrip() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        let back = Wal::read_all(&path).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn unflushed_records_are_not_durable() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        // no flush
        assert!(Wal::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        // Append garbage simulating a torn write.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(Wal::read_all(&path).unwrap(), sample());
    }

    #[test]
    fn corrupt_checksum_ends_scan() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the last record's payload.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let back = Wal::read_all(&path).unwrap();
        assert_eq!(back.len(), sample().len() - 1);
    }

    #[test]
    fn reset_truncates_but_lsns_stay_monotonic() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        let before = wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush().unwrap();
        wal.reset().unwrap();
        assert!(Wal::read_all(&path).unwrap().is_empty());
        // The LSN clock keeps running across reset, and everything up to
        // the reset point counts as durable (the log is empty).
        assert!(wal.flushed_lsn() >= before);
        let after = wal.append(&LogRecord::Begin { txn: 2 });
        assert!(after > before);
        // A ticket taken before the reset is immediately satisfiable.
        wal.commit_wait(before).unwrap();
    }

    #[test]
    fn reading_missing_log_is_empty() {
        let dir = TempDir::new("wal");
        assert!(Wal::read_all(&dir.file("absent")).unwrap().is_empty());
    }

    #[test]
    fn lsns_increase() {
        let dir = TempDir::new("wal");
        let wal = Wal::open(&dir.file("log"), false).unwrap();
        let a = wal.append(&LogRecord::Begin { txn: 1 });
        let b = wal.append(&LogRecord::Commit { txn: 1 });
        assert!(b > a);
    }

    #[test]
    fn open_truncates_torn_tail() {
        // Satellite regression: garbage appended to wal.log (a torn final
        // frame) must be truncated at open so later appends stay readable.
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        {
            let wal = Wal::open(&path, false).unwrap();
            for r in sample() {
                wal.append(&r);
            }
            wal.flush().unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, 9, 9, 9, 9, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        let wal = Wal::open(&path, false).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // New appends land after the valid prefix and are all readable.
        wal.append(&LogRecord::Begin { txn: 9 });
        wal.append(&LogRecord::Commit { txn: 9 });
        wal.flush().unwrap();
        let back = Wal::read_all(&path).unwrap();
        let mut expect = sample();
        expect.push(LogRecord::Begin { txn: 9 });
        expect.push(LogRecord::Commit { txn: 9 });
        assert_eq!(back, expect);
    }

    #[test]
    fn commit_wait_makes_record_durable() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        let lsn = wal.append(&LogRecord::Commit { txn: 1 });
        assert!(wal.flushed_lsn() < lsn);
        wal.commit_wait(lsn).unwrap();
        assert!(wal.flushed_lsn() >= lsn);
        assert_eq!(Wal::read_all(&path).unwrap().len(), 2);
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let mut wal = Wal::open_with(&path, true, None, true).unwrap();
        let metrics = Arc::new(Metrics::new());
        wal.set_metrics(Arc::clone(&metrics));
        let wal = Arc::new(wal);
        const N: u64 = 16;
        let barrier = Arc::new(std::sync::Barrier::new(N as usize));
        let handles: Vec<_> = (0..N)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let lsn = wal.append(&LogRecord::Commit { txn: t });
                    wal.commit_wait(lsn).unwrap();
                    assert!(wal.flushed_lsn() >= lsn);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.snapshot();
        // Every commit is accounted for in exactly one flush batch. How
        // many commits actually share a batch is scheduling-dependent —
        // a fully serialized interleaving (each thread leading its own
        // record) is legal, so only the accounting is asserted, not a
        // strict batching inequality.
        assert_eq!(snap.wal_group_size_sum, N);
        assert!((1..=N).contains(&snap.wal_group_commits));
        assert_eq!(Wal::read_all(&path).unwrap().len(), N as usize);
    }

    #[test]
    fn solo_mode_fsyncs_every_commit() {
        let dir = TempDir::new("wal");
        let mut wal = Wal::open_with(&dir.file("log"), true, None, false).unwrap();
        let metrics = Arc::new(Metrics::new());
        wal.set_metrics(Arc::clone(&metrics));
        for t in 0..4 {
            let lsn = wal.append(&LogRecord::Commit { txn: t });
            wal.commit_wait(lsn).unwrap();
        }
        assert_eq!(metrics.snapshot().wal_fsyncs, 4);
    }

    #[test]
    fn failed_fsync_poisons_the_log() {
        let dir = TempDir::new("wal");
        let injector = Arc::new(crate::fault::FaultInjector::new());
        let wal =
            Wal::open_with(&dir.file("log"), true, Some(Arc::clone(&injector)), true).unwrap();
        injector.arm_fail_fsync();
        let lsn = wal.append(&LogRecord::Commit { txn: 1 });
        assert!(matches!(
            wal.commit_wait(lsn),
            Err(StorageError::WalPoisoned(_))
        ));
        // Sticky: even after the device "recovers", commits keep failing
        // until reopen (the on-disk tail state is unknowable).
        injector.disarm();
        let lsn2 = wal.append(&LogRecord::Commit { txn: 2 });
        assert!(matches!(
            wal.commit_wait(lsn2),
            Err(StorageError::WalPoisoned(_))
        ));
    }
}
