//! Write-ahead log for the disk engine.
//!
//! Logging is *physiological*: records describe cell-level operations
//! (insert/update/delete of a slot on a page) tagged with the transaction
//! that performed them; updates and deletes also carry the cell's
//! before-image. The buffer pool *steals* (a dirty frame may be written
//! back once the log is flushed through its page LSN) and checkpoints
//! are *fuzzy* (`BeginCheckpoint`/`EndCheckpoint` bracket a concurrent
//! flush of the sampled dirty page table), so recovery *repeats history*
//! (ARIES-style) with per-page LSN gating: starting from the last
//! checkpoint's redo point, every logged cell operation — including
//! abort-time rollback steps, which are logged as ordinary records in
//! compensation-log style — is reapplied in log order *iff* the page's
//! stamped LSN shows it has not already absorbed the change, and
//! transactions that were still in flight at the crash are then rolled
//! back from the before-images. Aborted transactions need no extra work:
//! their rollback is itself in the log, which is how "actions of aborted
//! transactions are rolled back, \[and\] so are their associated events"
//! (§5.5) — trigger state lives in ordinary records, so its rollback
//! rides the same mechanism.
//!
//! The file starts with a 16-byte header: an 8-byte magic plus the
//! `base_lsn` — the LSN of the first byte stored after the header. Frame
//! format after that: `[len u32][fnv1a-checksum u32][payload]`. A torn
//! tail (short frame or bad checksum) ends replay; everything before it
//! is used, and [`Wal::open`] *truncates* the tear so fresh appends can
//! never land behind unreachable garbage.
//!
//! ## LSNs and group commit
//!
//! Every append is assigned a monotonically increasing LSN (the byte
//! offset of the record's *end* in the logical log; the clock keeps
//! running across [`Wal::reset`], [`Wal::truncate_prefix`], and — because
//! `base_lsn` is persisted in the header — across reopens). A record is
//! durable once the
//! `flushed_lsn` watermark reaches its LSN. Committers call
//! [`Wal::commit_wait`] with their Commit record's LSN: the first one in
//! becomes the *leader*, takes the whole pending tail, and makes it
//! durable with a single write+fsync while followers block on the
//! watermark via condvar — one fsync amortised over every commit in the
//! batch. With group commit disabled (the pre-refactor baseline, kept for
//! benchmarking) every committer runs its own flush cycle.
//!
//! A failed WAL write or fsync *poisons* the log: the batch may be torn on
//! disk, so no later commit can be allowed to succeed (fsyncgate
//! semantics). Every subsequent `commit_wait` returns
//! [`StorageError::WalPoisoned`]; the only way forward is reopen +
//! recovery, which truncates the tear.

use crate::codec::{Decode, Encode};
use crate::error::{Result, StorageError};
use crate::fault::{FaultFile, FaultInjector};
use crate::oid::{ClusterId, PageId};
use bytes::{BufMut, BytesMut};
use ode_obs::{Metrics, TraceEvent};
use parking_lot::{Condvar, Mutex};
use std::io::{Read, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// One log record.
#[allow(missing_docs)] // fields are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A transaction started.
    Begin { txn: u64 },
    /// A cell was inserted at (page, slot) with the given bytes.
    CellInsert {
        txn: u64,
        page: PageId,
        slot: u16,
        data: Vec<u8>,
    },
    /// The cell at (page, slot) was overwritten with `data`; `before` is
    /// the cell's previous bytes, used to roll back transactions that
    /// were still in flight at a crash.
    CellUpdate {
        txn: u64,
        page: PageId,
        slot: u16,
        data: Vec<u8>,
        before: Vec<u8>,
    },
    /// The cell at (page, slot) was deleted; `before` is the deleted
    /// cell's bytes, used to roll back in-flight transactions at a crash.
    CellDelete {
        txn: u64,
        page: PageId,
        slot: u16,
        before: Vec<u8>,
    },
    /// A fresh page was allocated and assigned to a cluster.
    PageAlloc {
        txn: u64,
        page: PageId,
        cluster: ClusterId,
    },
    /// The transaction committed (durable once this record is on disk).
    Commit { txn: u64 },
    /// The transaction aborted. Its rollback steps were logged as
    /// ordinary cell records before this, so recovery just repeats them;
    /// the Abort marks that no further rollback is needed for the txn.
    Abort { txn: u64 },
    /// A fuzzy checkpoint started. A pure position marker: the dirty-page
    /// and active-transaction tables are sampled *after* this record is
    /// appended (and carried by the matching [`LogRecord::EndCheckpoint`]),
    /// so any page dirtied or transaction begun too late to be sampled
    /// necessarily logs at an LSN past this marker — which is why redo may
    /// start at `min(marker, tables' minima)` without missing anything.
    BeginCheckpoint,
    /// The fuzzy checkpoint whose Begin marker *ends* at `begin_lsn`
    /// completed: every page in `dirty` as sampled at begin has been
    /// written back to the data file (WAL-before-data respected). `dirty`
    /// holds (page id, recovery LSN) for pages dirty at the sample;
    /// `active` holds (txn id, first LSN) for transactions that had logged
    /// at the sample.
    EndCheckpoint {
        begin_lsn: u64,
        dirty: Vec<(PageId, u64)>,
        active: Vec<(u64, u64)>,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_PAGE_ALLOC: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;
const TAG_BEGIN_CKPT: u8 = 8;
const TAG_END_CKPT: u8 = 9;

impl LogRecord {
    /// The transaction the record belongs to. Checkpoint records belong
    /// to no transaction and return 0 (never a real txn id).
    pub fn txn(&self) -> u64 {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::CellInsert { txn, .. }
            | LogRecord::CellUpdate { txn, .. }
            | LogRecord::CellDelete { txn, .. }
            | LogRecord::PageAlloc { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
            LogRecord::BeginCheckpoint | LogRecord::EndCheckpoint { .. } => 0,
        }
    }
}

impl Encode for LogRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LogRecord::Begin { txn } => {
                buf.put_u8(TAG_BEGIN);
                txn.encode(buf);
            }
            LogRecord::CellInsert {
                txn,
                page,
                slot,
                data,
            } => {
                buf.put_u8(TAG_INSERT);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                data.encode(buf);
            }
            LogRecord::CellUpdate {
                txn,
                page,
                slot,
                data,
                before,
            } => {
                buf.put_u8(TAG_UPDATE);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                data.encode(buf);
                before.encode(buf);
            }
            LogRecord::CellDelete {
                txn,
                page,
                slot,
                before,
            } => {
                buf.put_u8(TAG_DELETE);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                before.encode(buf);
            }
            LogRecord::PageAlloc { txn, page, cluster } => {
                buf.put_u8(TAG_PAGE_ALLOC);
                txn.encode(buf);
                page.encode(buf);
                cluster.encode(buf);
            }
            LogRecord::Commit { txn } => {
                buf.put_u8(TAG_COMMIT);
                txn.encode(buf);
            }
            LogRecord::Abort { txn } => {
                buf.put_u8(TAG_ABORT);
                txn.encode(buf);
            }
            LogRecord::BeginCheckpoint => {
                buf.put_u8(TAG_BEGIN_CKPT);
            }
            LogRecord::EndCheckpoint {
                begin_lsn,
                dirty,
                active,
            } => {
                buf.put_u8(TAG_END_CKPT);
                begin_lsn.encode(buf);
                dirty.encode(buf);
                active.encode(buf);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(buf: &mut &[u8]) -> Result<LogRecord> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            TAG_BEGIN => LogRecord::Begin {
                txn: u64::decode(buf)?,
            },
            TAG_INSERT => LogRecord::CellInsert {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                data: Vec::<u8>::decode(buf)?,
            },
            TAG_UPDATE => LogRecord::CellUpdate {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                data: Vec::<u8>::decode(buf)?,
                before: Vec::<u8>::decode(buf)?,
            },
            TAG_DELETE => LogRecord::CellDelete {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                before: Vec::<u8>::decode(buf)?,
            },
            TAG_PAGE_ALLOC => LogRecord::PageAlloc {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                cluster: ClusterId::decode(buf)?,
            },
            TAG_COMMIT => LogRecord::Commit {
                txn: u64::decode(buf)?,
            },
            TAG_ABORT => LogRecord::Abort {
                txn: u64::decode(buf)?,
            },
            TAG_BEGIN_CKPT => LogRecord::BeginCheckpoint,
            TAG_END_CKPT => LogRecord::EndCheckpoint {
                begin_lsn: u64::decode(buf)?,
                dirty: Vec::<(PageId, u64)>::decode(buf)?,
                active: Vec::<(u64, u64)>::decode(buf)?,
            },
            t => return Err(StorageError::Codec(format!("bad log record tag {t}"))),
        })
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Magic prefix of the 16-byte WAL file header.
const WAL_MAGIC: &[u8; 8] = b"ODEWAL\0\x01";

/// Bytes of file header before the first frame: magic + `base_lsn` (LE).
const WAL_HEADER: u64 = 16;

fn encode_header(base_lsn: u64) -> [u8; WAL_HEADER as usize] {
    let mut h = [0u8; WAL_HEADER as usize];
    h[..8].copy_from_slice(WAL_MAGIC);
    h[8..].copy_from_slice(&base_lsn.to_le_bytes());
    h
}

/// Parse a WAL image's header: `Some(base_lsn)` if the magic matches, else
/// `None` (an empty, torn-header, or pre-header file — treated as empty).
fn decode_header(bytes: &[u8]) -> Option<u64> {
    if bytes.len() < WAL_HEADER as usize || &bytes[..8] != WAL_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
}

/// In-memory tail of the log: bytes appended but not yet written out.
struct WalTail {
    pending: Vec<u8>,
    /// Next log sequence number. LSNs are globally monotonic — they do NOT
    /// restart at [`Wal::reset`] — so a durability ticket taken before an
    /// auto-checkpoint is still satisfiable after it.
    next_lsn: u64,
    /// Commit records sitting in `pending` (feeds the group-size metric).
    pending_commits: u64,
}

/// Durability watermark + leader election for group commit.
struct FlushState {
    /// Every record with `lsn <= flushed_lsn` is durable (written, and
    /// fsynced when fsync is configured).
    flushed_lsn: u64,
    /// A committer is currently writing a batch; others wait on the condvar.
    leader_active: bool,
    /// Set on the first failed WAL write/fsync; sticky until reopen.
    poisoned: Option<String>,
}

/// An append-only write-ahead log with group commit.
pub struct Wal {
    path: PathBuf,
    tail: Mutex<WalTail>,
    file: Mutex<FaultFile>,
    flush: Mutex<FlushState>,
    durable: Condvar,
    /// LSN of the first byte stored after the file header (persisted
    /// there). Changes only under the flush+tail+file lock triplet
    /// ([`Wal::reset`] / [`Wal::truncate_prefix`]); reads are relaxed.
    base_lsn: std::sync::atomic::AtomicU64,
    /// Fault injector shared with the file handle, kept so
    /// [`Wal::truncate_prefix`] can wrap its rewrite in the same faults.
    injector: Option<Arc<FaultInjector>>,
    /// Whether commit flushes call fsync. Off by default for tests/benches;
    /// on for durability-critical deployments.
    fsync: bool,
    /// Leader/follower batching when true; per-committer flush cycles when
    /// false (the pre-refactor baseline, kept for benchmarking).
    group_commit: bool,
    metrics: Arc<Metrics>,
}

impl Wal {
    /// Open (creating if missing) the log at `path`.
    pub fn open(path: &Path, fsync: bool) -> Result<Wal> {
        Wal::open_with(path, fsync, None, true)
    }

    /// Open with an optional fault injector and an explicit group-commit
    /// mode. A torn or corrupt tail left by a crash is truncated here so
    /// fresh appends can never land behind unreachable garbage.
    pub fn open_with(
        path: &Path,
        fsync: bool,
        injector: Option<Arc<FaultInjector>>,
        group_commit: bool,
    ) -> Result<Wal> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // Existing log contents are the recovery source: never clobber.
            .truncate(false)
            .open(path)?;
        let mut file = FaultFile::new(file, injector.clone());
        file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (base, valid) = match decode_header(&bytes) {
            Some(base) => {
                let valid = scan_valid_len(&bytes[WAL_HEADER as usize..]) as u64;
                if WAL_HEADER + valid < bytes.len() as u64 {
                    file.set_len(WAL_HEADER + valid)?;
                    if fsync {
                        file.sync_data()?;
                    }
                }
                (base, valid)
            }
            None => {
                // Empty file, or a header torn mid-create: nothing after
                // it can be a valid frame, so initialize a fresh log.
                file.set_len(0)?;
                file.seek(SeekFrom::Start(0))?;
                file.write_all(&encode_header(0))?;
                if fsync {
                    file.sync_data()?;
                }
                (0, 0)
            }
        };
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            path: path.to_path_buf(),
            tail: Mutex::new(WalTail {
                pending: Vec::new(),
                next_lsn: base + valid,
                pending_commits: 0,
            }),
            file: Mutex::new(file),
            flush: Mutex::new(FlushState {
                flushed_lsn: base + valid,
                leader_active: false,
                poisoned: None,
            }),
            durable: Condvar::new(),
            base_lsn: std::sync::atomic::AtomicU64::new(base),
            injector,
            fsync,
            group_commit,
            metrics: Arc::new(Metrics::new()),
        })
    }

    /// Replace the metrics registry (done once at storage assembly so the
    /// WAL shares the database-wide registry).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = metrics;
    }

    /// Append a record to the in-memory tail; returns the LSN of the
    /// record's *end*. The record is durable once [`Wal::flushed_lsn`]
    /// reaches that value — see [`Wal::commit_wait`].
    pub fn append(&self, record: &LogRecord) -> u64 {
        self.append_span(record).1
    }

    /// [`Wal::append`] returning both the record's start LSN (where the
    /// frame begins) and its end LSN. The checkpointer needs the start:
    /// the log must never be truncated past where `BeginCheckpoint`
    /// *starts*, or recovery could no longer find the checkpoint.
    pub fn append_span(&self, record: &LogRecord) -> (u64, u64) {
        let mut payload = BytesMut::new();
        record.encode(&mut payload);
        let mut tail = self.tail.lock();
        let start = tail.next_lsn;
        tail.pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        tail.pending
            .extend_from_slice(&fnv1a(&payload).to_le_bytes());
        tail.pending.extend_from_slice(&payload);
        tail.next_lsn += 8 + payload.len() as u64;
        if matches!(record, LogRecord::Commit { .. }) {
            tail.pending_commits += 1;
        }
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(8 + payload.len() as u64);
        (start, tail.next_lsn)
    }

    /// The durability watermark: every append whose returned LSN is `<=`
    /// this value has been written (and fsynced when configured).
    pub fn flushed_lsn(&self) -> u64 {
        self.flush.lock().flushed_lsn
    }

    /// LSN of the current logical end of the log.
    pub fn end_lsn(&self) -> u64 {
        self.tail.lock().next_lsn
    }

    /// Block until the record ending at `target` is durable, recording the
    /// wait in `commit_flush_wait_micros`. With group commit enabled the
    /// first committer in becomes the leader and flushes the whole pending
    /// tail (one write+fsync for every commit in it); the rest block on the
    /// watermark. With group commit disabled every caller runs its own
    /// flush cycle — the per-commit-fsync baseline.
    pub fn commit_wait(&self, target: u64) -> Result<()> {
        let t0 = std::time::Instant::now();
        let result = self.wait_durable(target);
        self.metrics
            .commit_flush_wait_micros
            .record(t0.elapsed().as_micros() as u64);
        result
    }

    /// Write the pending tail to the file (and fsync if configured).
    /// Equivalent to `commit_wait(end_lsn)` without the wait metric.
    pub fn flush(&self) -> Result<()> {
        let target = self.tail.lock().next_lsn;
        self.wait_durable(target)
    }

    /// Make the log durable through `target` if it is not already — the
    /// WAL-before-data rule's cheap path: a no-op when the watermark has
    /// passed the page's LSN, a (group) flush otherwise.
    pub fn flush_through(&self, target: u64) -> Result<()> {
        if self.flush.lock().flushed_lsn >= target {
            return Ok(());
        }
        self.wait_durable(target)
    }

    fn wait_durable(&self, target: u64) -> Result<()> {
        let mut st = self.flush.lock();
        // In baseline (non-group) mode each committer must pay its own
        // fsync even if a concurrent flush already covered its LSN.
        let mut flushed_myself = false;
        loop {
            if let Some(msg) = &st.poisoned {
                return Err(StorageError::WalPoisoned(msg.clone()));
            }
            if st.flushed_lsn >= target && (self.group_commit || flushed_myself) {
                return Ok(());
            }
            if st.leader_active {
                let _ = self.durable.wait_for(&mut st, Duration::from_millis(50));
                continue;
            }
            // Become the leader: snapshot the tail, release the flush lock
            // while doing I/O so appenders and new waiters are not blocked
            // behind the fsync.
            st.leader_active = true;
            drop(st);
            let (batch, end, commits) = {
                let mut tail = self.tail.lock();
                (
                    std::mem::take(&mut tail.pending),
                    tail.next_lsn,
                    std::mem::take(&mut tail.pending_commits),
                )
            };
            let io = self.write_batch(&batch);
            st = self.flush.lock();
            st.leader_active = false;
            match io {
                Ok(()) => {
                    st.flushed_lsn = st.flushed_lsn.max(end);
                    if commits > 0 {
                        self.metrics.wal_group_commits.inc();
                        self.metrics.wal_group_size_sum.add(commits);
                    }
                    flushed_myself = true;
                    self.durable.notify_all();
                }
                Err(e) => {
                    // The batch may be torn on disk and the commits in it
                    // were never acknowledged: fail them all, and every
                    // later commit too (a retried fsync proves nothing).
                    let msg = e.to_string();
                    st.poisoned = Some(msg.clone());
                    self.durable.notify_all();
                    self.metrics
                        .dump_flight(format!("WAL poisoned at lsn<={end}: {msg}"));
                    return Err(StorageError::WalPoisoned(msg));
                }
            }
        }
    }

    fn write_batch(&self, batch: &[u8]) -> std::io::Result<()> {
        let mut file = self.file.lock();
        if !batch.is_empty() {
            file.seek(SeekFrom::End(0))?;
            file.write_all(batch)?;
        }
        if self.fsync {
            let t0 = std::time::Instant::now();
            file.sync_data()?;
            self.metrics
                .fsync_micros
                .record(t0.elapsed().as_micros() as u64);
            self.metrics.wal_fsyncs.inc();
            self.metrics.emit(|| TraceEvent::WalFsync {
                bytes_flushed: batch.len() as u64,
            });
        }
        Ok(())
    }

    /// Truncate the log file to empty (done right after a quiesced
    /// checkpoint, when the data file already reflects everything). The
    /// LSN clock keeps running — the header's `base_lsn` is rewritten to
    /// the current end — and the now-empty log is durable by definition,
    /// so durability tickets taken before the reset remain satisfied.
    pub fn reset(&self) -> Result<()> {
        let mut st = self.flush.lock();
        while st.leader_active {
            let _ = self.durable.wait_for(&mut st, Duration::from_millis(50));
        }
        let mut tail = self.tail.lock();
        let mut file = self.file.lock();
        tail.pending.clear();
        tail.pending_commits = 0;
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_header(tail.next_lsn))?;
        if self.fsync {
            file.sync_data()?;
        }
        self.base_lsn
            .store(tail.next_lsn, std::sync::atomic::Ordering::Relaxed);
        st.flushed_lsn = tail.next_lsn;
        self.durable.notify_all();
        Ok(())
    }

    /// Drop every byte of the log before `horizon` (a frame boundary —
    /// every LSN handed out by this module is one). The retained suffix is
    /// rewritten to a temp file with `base_lsn = horizon` in its header
    /// and atomically renamed over the log, so a crash at any point leaves
    /// either the old complete log or the new complete log. Returns the
    /// number of log bytes freed.
    ///
    /// The caller must only pass a horizon it can recover without: behind
    /// the last complete checkpoint's `min(rec_lsn)` and every active
    /// transaction's first LSN.
    pub fn truncate_prefix(&self, horizon: u64) -> Result<u64> {
        let mut st = self.flush.lock();
        while st.leader_active {
            let _ = self.durable.wait_for(&mut st, Duration::from_millis(50));
        }
        // Unflushed bytes are not in the file yet; never truncate past the
        // durable watermark.
        let horizon = horizon.min(st.flushed_lsn);
        // Held (not read) so no appender can interleave with the rewrite.
        let _tail = self.tail.lock();
        let mut file = self.file.lock();
        let base = self.base_lsn.load(std::sync::atomic::Ordering::Relaxed);
        if horizon <= base {
            return Ok(0);
        }
        // Read the retained suffix out of the current file.
        file.seek(SeekFrom::Start(WAL_HEADER + (horizon - base)))?;
        let mut suffix = Vec::new();
        file.read_to_end(&mut suffix)?;
        // Write the new image beside the log and rename it into place.
        let tmp_path = self.path.with_extension("truncate");
        {
            let tmp = std::fs::OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            let mut tmp = FaultFile::new(tmp, self.injector.clone());
            tmp.write_all(&encode_header(horizon))?;
            tmp.write_all(&suffix)?;
            if self.fsync {
                tmp.sync_data()?;
            }
        }
        std::fs::rename(&tmp_path, &self.path)?;
        // The held handle still points at the old inode: reopen.
        let reopened = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)?;
        let mut reopened = FaultFile::new(reopened, self.injector.clone());
        reopened.seek(SeekFrom::End(0))?;
        *file = reopened;
        self.base_lsn
            .store(horizon, std::sync::atomic::Ordering::Relaxed);
        let freed = horizon - base;
        self.metrics.wal_truncated_bytes.add(freed);
        Ok(freed)
    }

    /// LSN of the first byte still present in the log file.
    pub fn base_lsn(&self) -> u64 {
        self.base_lsn.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Bytes currently occupied by the log file (header + retained
    /// frames); the quantity the truncation horizon is meant to bound.
    pub fn file_len(&self) -> Result<u64> {
        Ok(std::fs::metadata(&self.path)?.len())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every valid record currently in the log file, each paired with
    /// the LSN of its *end* (the value [`Wal::append`] returned for it). A
    /// torn or corrupt tail ends the scan silently (those records were
    /// never acknowledged); a missing file or missing header is an empty
    /// log.
    pub fn read_all(path: &Path) -> Result<Vec<(u64, LogRecord)>> {
        let mut out = Vec::new();
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let base = match decode_header(&bytes) {
            Some(base) => base,
            None => return Ok(out),
        };
        let frames = &bytes[WAL_HEADER as usize..];
        let valid = scan_valid_len(frames);
        let mut cursor = &frames[..valid];
        let mut lsn = base;
        while cursor.len() >= 8 {
            let len = u32::from_le_bytes(cursor[0..4].try_into().unwrap()) as usize;
            let payload = &cursor[8..8 + len];
            let mut p = payload;
            lsn += 8 + len as u64;
            match LogRecord::decode(&mut p) {
                Ok(rec) if p.is_empty() => out.push((lsn, rec)),
                _ => break,
            }
            cursor = &cursor[8 + len..];
        }
        Ok(out)
    }
}

/// Length of the valid frame prefix of a log image: the scan stops at a
/// short frame, a checksum mismatch, or trailing garbage.
fn scan_valid_len(bytes: &[u8]) -> usize {
    let mut offset = 0usize;
    while bytes.len() - offset >= 8 {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let sum = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if bytes.len() - offset < 8 + len {
            break; // torn tail
        }
        let payload = &bytes[offset + 8..offset + 8 + len];
        if fnv1a(payload) != sum {
            break; // corrupt tail
        }
        offset += 8 + len;
    }
    offset
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    /// The records of [`Wal::read_all`] with their LSNs stripped, for
    /// tests that only care about contents.
    fn records(path: &Path) -> Vec<LogRecord> {
        Wal::read_all(path)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::PageAlloc {
                txn: 1,
                page: 1,
                cluster: 2,
            },
            LogRecord::CellInsert {
                txn: 1,
                page: 1,
                slot: 0,
                data: b"hello".to_vec(),
            },
            LogRecord::CellUpdate {
                txn: 1,
                page: 1,
                slot: 0,
                data: b"world".to_vec(),
                before: b"hello".to_vec(),
            },
            LogRecord::CellDelete {
                txn: 1,
                page: 1,
                slot: 0,
                before: b"world".to_vec(),
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Begin { txn: 2 },
            LogRecord::Abort { txn: 2 },
        ]
    }

    #[test]
    fn append_flush_read_roundtrip() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        assert_eq!(records(&path), sample());
    }

    #[test]
    fn unflushed_records_are_not_durable() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        // no flush
        assert!(Wal::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        // Append garbage simulating a torn write.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(records(&path), sample());
    }

    #[test]
    fn corrupt_checksum_ends_scan() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the last record's payload.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(records(&path).len(), sample().len() - 1);
    }

    #[test]
    fn reset_truncates_but_lsns_stay_monotonic() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        let before = wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush().unwrap();
        wal.reset().unwrap();
        assert!(Wal::read_all(&path).unwrap().is_empty());
        // The LSN clock keeps running across reset, and everything up to
        // the reset point counts as durable (the log is empty).
        assert!(wal.flushed_lsn() >= before);
        let after = wal.append(&LogRecord::Begin { txn: 2 });
        assert!(after > before);
        // A ticket taken before the reset is immediately satisfiable.
        wal.commit_wait(before).unwrap();
    }

    #[test]
    fn truncate_prefix_drops_records_and_persists_base_lsn() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        let a = wal.append(&LogRecord::Begin { txn: 1 });
        let b = wal.append(&LogRecord::Commit { txn: 1 });
        let c = wal.append(&LogRecord::Begin { txn: 2 });
        wal.flush().unwrap();
        let len_before = wal.file_len().unwrap();
        // Truncate behind txn 2's first record: txn 1 disappears, the
        // file shrinks by exactly the freed bytes, LSNs are unchanged.
        let freed = wal.truncate_prefix(b).unwrap();
        assert!(freed > 0);
        assert_eq!(wal.file_len().unwrap(), len_before - freed);
        assert_eq!(wal.base_lsn(), b);
        let kept = Wal::read_all(&path).unwrap();
        assert_eq!(kept, vec![(c, LogRecord::Begin { txn: 2 })]);
        // A horizon at or below the base is a no-op.
        assert_eq!(wal.truncate_prefix(a).unwrap(), 0);
        // Appends continue monotonically past the truncation...
        let d = wal.append(&LogRecord::Commit { txn: 2 });
        assert!(d > c);
        wal.flush().unwrap();
        drop(wal);
        // ...and the base LSN survives reopen, so records keep their
        // original LSNs even though the file's prefix is gone.
        let wal = Wal::open(&path, false).unwrap();
        assert_eq!(wal.base_lsn(), b);
        assert_eq!(
            Wal::read_all(&path).unwrap(),
            vec![
                (c, LogRecord::Begin { txn: 2 }),
                (d, LogRecord::Commit { txn: 2 })
            ]
        );
        assert_eq!(wal.end_lsn(), d);
    }

    #[test]
    fn checkpoint_records_round_trip() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        let (_, begin_end) = wal.append_span(&LogRecord::BeginCheckpoint);
        let end = LogRecord::EndCheckpoint {
            begin_lsn: begin_end,
            dirty: vec![(3, 100), (7, 42)],
            active: vec![(11, 90)],
        };
        let e = wal.append(&end);
        wal.flush().unwrap();
        assert_eq!(
            Wal::read_all(&path).unwrap(),
            vec![(begin_end, LogRecord::BeginCheckpoint), (e, end)]
        );
    }

    #[test]
    fn reading_missing_log_is_empty() {
        let dir = TempDir::new("wal");
        assert!(Wal::read_all(&dir.file("absent")).unwrap().is_empty());
    }

    #[test]
    fn lsns_increase() {
        let dir = TempDir::new("wal");
        let wal = Wal::open(&dir.file("log"), false).unwrap();
        let a = wal.append(&LogRecord::Begin { txn: 1 });
        let b = wal.append(&LogRecord::Commit { txn: 1 });
        assert!(b > a);
    }

    #[test]
    fn open_truncates_torn_tail() {
        // Satellite regression: garbage appended to wal.log (a torn final
        // frame) must be truncated at open so later appends stay readable.
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        {
            let wal = Wal::open(&path, false).unwrap();
            for r in sample() {
                wal.append(&r);
            }
            wal.flush().unwrap();
        }
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, 9, 9, 9, 9, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        let wal = Wal::open(&path, false).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // New appends land after the valid prefix and are all readable.
        wal.append(&LogRecord::Begin { txn: 9 });
        wal.append(&LogRecord::Commit { txn: 9 });
        wal.flush().unwrap();
        let mut expect = sample();
        expect.push(LogRecord::Begin { txn: 9 });
        expect.push(LogRecord::Commit { txn: 9 });
        assert_eq!(records(&path), expect);
    }

    #[test]
    fn commit_wait_makes_record_durable() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        let lsn = wal.append(&LogRecord::Commit { txn: 1 });
        assert!(wal.flushed_lsn() < lsn);
        wal.commit_wait(lsn).unwrap();
        assert!(wal.flushed_lsn() >= lsn);
        assert_eq!(Wal::read_all(&path).unwrap().len(), 2);
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let mut wal = Wal::open_with(&path, true, None, true).unwrap();
        let metrics = Arc::new(Metrics::new());
        wal.set_metrics(Arc::clone(&metrics));
        let wal = Arc::new(wal);
        const N: u64 = 16;
        let barrier = Arc::new(std::sync::Barrier::new(N as usize));
        let handles: Vec<_> = (0..N)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let lsn = wal.append(&LogRecord::Commit { txn: t });
                    wal.commit_wait(lsn).unwrap();
                    assert!(wal.flushed_lsn() >= lsn);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = metrics.snapshot();
        // Every commit is accounted for in exactly one flush batch. How
        // many commits actually share a batch is scheduling-dependent —
        // a fully serialized interleaving (each thread leading its own
        // record) is legal, so only the accounting is asserted, not a
        // strict batching inequality.
        assert_eq!(snap.wal_group_size_sum, N);
        assert!((1..=N).contains(&snap.wal_group_commits));
        assert_eq!(Wal::read_all(&path).unwrap().len(), N as usize);
    }

    #[test]
    fn solo_mode_fsyncs_every_commit() {
        let dir = TempDir::new("wal");
        let mut wal = Wal::open_with(&dir.file("log"), true, None, false).unwrap();
        let metrics = Arc::new(Metrics::new());
        wal.set_metrics(Arc::clone(&metrics));
        for t in 0..4 {
            let lsn = wal.append(&LogRecord::Commit { txn: t });
            wal.commit_wait(lsn).unwrap();
        }
        assert_eq!(metrics.snapshot().wal_fsyncs, 4);
    }

    #[test]
    fn failed_fsync_poisons_the_log() {
        let dir = TempDir::new("wal");
        let injector = Arc::new(crate::fault::FaultInjector::new());
        let wal =
            Wal::open_with(&dir.file("log"), true, Some(Arc::clone(&injector)), true).unwrap();
        injector.arm_fail_fsync();
        let lsn = wal.append(&LogRecord::Commit { txn: 1 });
        assert!(matches!(
            wal.commit_wait(lsn),
            Err(StorageError::WalPoisoned(_))
        ));
        // Sticky: even after the device "recovers", commits keep failing
        // until reopen (the on-disk tail state is unknowable).
        injector.disarm();
        let lsn2 = wal.append(&LogRecord::Commit { txn: 2 });
        assert!(matches!(
            wal.commit_wait(lsn2),
            Err(StorageError::WalPoisoned(_))
        ));
    }
}
