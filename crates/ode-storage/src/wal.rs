//! Write-ahead log for the disk engine.
//!
//! Logging is *physiological*: records describe cell-level operations
//! (insert/update/delete of a slot on a page) tagged with the transaction
//! that performed them. Combined with the buffer pool's no-steal policy and
//! quiesced checkpoints, recovery is redo-only — the data file is exactly
//! the last checkpoint image, and replaying the committed transactions'
//! cell operations in log order reproduces the pre-crash committed state.
//! Aborted and in-flight transactions are simply not replayed, which is how
//! "actions of aborted transactions are rolled back, \[and\] so are their
//! associated events" (§5.5) — trigger state lives in ordinary records, so
//! its rollback rides the same mechanism.
//!
//! Frame format: `[len u32][fnv1a-checksum u32][payload]`. A torn tail
//! (short frame or bad checksum) ends replay; everything before it is used.

use crate::codec::{Decode, Encode};
use crate::error::{Result, StorageError};
use crate::oid::{ClusterId, PageId};
use bytes::{BufMut, BytesMut};
use ode_obs::{Metrics, TraceEvent};
use parking_lot::Mutex;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One log record.
#[allow(missing_docs)] // fields are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A transaction started.
    Begin { txn: u64 },
    /// A cell was inserted at (page, slot) with the given bytes.
    CellInsert {
        txn: u64,
        page: PageId,
        slot: u16,
        data: Vec<u8>,
    },
    /// The cell at (page, slot) was overwritten with the given bytes.
    CellUpdate {
        txn: u64,
        page: PageId,
        slot: u16,
        data: Vec<u8>,
    },
    /// The cell at (page, slot) was deleted.
    CellDelete { txn: u64, page: PageId, slot: u16 },
    /// A fresh page was allocated and assigned to a cluster.
    PageAlloc {
        txn: u64,
        page: PageId,
        cluster: ClusterId,
    },
    /// The transaction committed (durable once this record is on disk).
    Commit { txn: u64 },
    /// The transaction aborted (informational; recovery ignores its ops).
    Abort { txn: u64 },
}

const TAG_BEGIN: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_PAGE_ALLOC: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;

impl LogRecord {
    /// The transaction the record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::CellInsert { txn, .. }
            | LogRecord::CellUpdate { txn, .. }
            | LogRecord::CellDelete { txn, .. }
            | LogRecord::PageAlloc { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

impl Encode for LogRecord {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            LogRecord::Begin { txn } => {
                buf.put_u8(TAG_BEGIN);
                txn.encode(buf);
            }
            LogRecord::CellInsert {
                txn,
                page,
                slot,
                data,
            } => {
                buf.put_u8(TAG_INSERT);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                data.encode(buf);
            }
            LogRecord::CellUpdate {
                txn,
                page,
                slot,
                data,
            } => {
                buf.put_u8(TAG_UPDATE);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
                data.encode(buf);
            }
            LogRecord::CellDelete { txn, page, slot } => {
                buf.put_u8(TAG_DELETE);
                txn.encode(buf);
                page.encode(buf);
                slot.encode(buf);
            }
            LogRecord::PageAlloc { txn, page, cluster } => {
                buf.put_u8(TAG_PAGE_ALLOC);
                txn.encode(buf);
                page.encode(buf);
                cluster.encode(buf);
            }
            LogRecord::Commit { txn } => {
                buf.put_u8(TAG_COMMIT);
                txn.encode(buf);
            }
            LogRecord::Abort { txn } => {
                buf.put_u8(TAG_ABORT);
                txn.encode(buf);
            }
        }
    }
}

impl Decode for LogRecord {
    fn decode(buf: &mut &[u8]) -> Result<LogRecord> {
        let tag = u8::decode(buf)?;
        Ok(match tag {
            TAG_BEGIN => LogRecord::Begin {
                txn: u64::decode(buf)?,
            },
            TAG_INSERT => LogRecord::CellInsert {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                data: Vec::<u8>::decode(buf)?,
            },
            TAG_UPDATE => LogRecord::CellUpdate {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
                data: Vec::<u8>::decode(buf)?,
            },
            TAG_DELETE => LogRecord::CellDelete {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                slot: u16::decode(buf)?,
            },
            TAG_PAGE_ALLOC => LogRecord::PageAlloc {
                txn: u64::decode(buf)?,
                page: PageId::decode(buf)?,
                cluster: ClusterId::decode(buf)?,
            },
            TAG_COMMIT => LogRecord::Commit {
                txn: u64::decode(buf)?,
            },
            TAG_ABORT => LogRecord::Abort {
                txn: u64::decode(buf)?,
            },
            t => return Err(StorageError::Codec(format!("bad log record tag {t}"))),
        })
    }
}

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

struct WalInner {
    file: std::fs::File,
    /// Bytes appended since the last flush, kept in memory so that commit
    /// can batch-write them.
    pending: Vec<u8>,
    /// Next log sequence number (byte offset of the end of the log).
    next_lsn: u64,
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
    /// Whether commit flushes call fsync. Off by default for tests/benches;
    /// on for durability-critical deployments.
    fsync: bool,
    metrics: Arc<Metrics>,
}

impl Wal {
    /// Open (creating if missing) the log at `path`.
    pub fn open(path: &Path, fsync: bool) -> Result<Wal> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // Existing log contents are the recovery source: never clobber.
            .truncate(false)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            path: path.to_path_buf(),
            inner: Mutex::new(WalInner {
                file,
                pending: Vec::new(),
                next_lsn: len,
            }),
            fsync,
            metrics: Arc::new(Metrics::new()),
        })
    }

    /// Replace the metrics registry (done once at storage assembly so the
    /// WAL shares the database-wide registry).
    pub fn set_metrics(&mut self, metrics: Arc<Metrics>) {
        self.metrics = metrics;
    }

    /// Append a record to the in-memory tail; returns its LSN. The record
    /// becomes durable at the next [`Wal::flush`].
    pub fn append(&self, record: &LogRecord) -> u64 {
        let mut payload = BytesMut::new();
        record.encode(&mut payload);
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner
            .pending
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        inner
            .pending
            .extend_from_slice(&fnv1a(&payload).to_le_bytes());
        inner.pending.extend_from_slice(&payload);
        inner.next_lsn += 8 + payload.len() as u64;
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(8 + payload.len() as u64);
        lsn
    }

    /// Write the pending tail to the file (and fsync if configured).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        let flushed = inner.pending.len() as u64;
        if !inner.pending.is_empty() {
            let pending = std::mem::take(&mut inner.pending);
            inner.file.seek(SeekFrom::End(0))?;
            inner.file.write_all(&pending)?;
        }
        if self.fsync {
            inner.file.sync_data()?;
            self.metrics.wal_fsyncs.inc();
            self.metrics.emit(|| TraceEvent::WalFsync {
                bytes_flushed: flushed,
            });
        }
        Ok(())
    }

    /// Truncate the log to empty (done right after a checkpoint, when the
    /// data file already reflects everything).
    pub fn reset(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.pending.clear();
        inner.file.set_len(0)?;
        inner.file.seek(SeekFrom::Start(0))?;
        if self.fsync {
            inner.file.sync_data()?;
        }
        inner.next_lsn = 0;
        Ok(())
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read every valid record currently in the log file. A torn or corrupt
    /// tail ends the scan silently (those records were never acknowledged).
    pub fn read_all(path: &Path) -> Result<Vec<LogRecord>> {
        let mut out = Vec::new();
        let mut file = match std::fs::File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e.into()),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut cursor = &bytes[..];
        while cursor.len() >= 8 {
            let len = u32::from_le_bytes(cursor[0..4].try_into().unwrap()) as usize;
            let sum = u32::from_le_bytes(cursor[4..8].try_into().unwrap());
            if cursor.len() < 8 + len {
                break; // torn tail
            }
            let payload = &cursor[8..8 + len];
            if fnv1a(payload) != sum {
                break; // corrupt tail
            }
            let mut p = payload;
            match LogRecord::decode(&mut p) {
                Ok(rec) if p.is_empty() => out.push(rec),
                _ => break,
            }
            cursor = &cursor[8 + len..];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    fn sample() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { txn: 1 },
            LogRecord::PageAlloc {
                txn: 1,
                page: 1,
                cluster: 2,
            },
            LogRecord::CellInsert {
                txn: 1,
                page: 1,
                slot: 0,
                data: b"hello".to_vec(),
            },
            LogRecord::CellUpdate {
                txn: 1,
                page: 1,
                slot: 0,
                data: b"world".to_vec(),
            },
            LogRecord::CellDelete {
                txn: 1,
                page: 1,
                slot: 0,
            },
            LogRecord::Commit { txn: 1 },
            LogRecord::Begin { txn: 2 },
            LogRecord::Abort { txn: 2 },
        ]
    }

    #[test]
    fn append_flush_read_roundtrip() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        let back = Wal::read_all(&path).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn unflushed_records_are_not_durable() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        // no flush
        assert!(Wal::read_all(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        // Append garbage simulating a torn write.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[200, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(Wal::read_all(&path).unwrap(), sample());
    }

    #[test]
    fn corrupt_checksum_ends_scan() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        for r in sample() {
            wal.append(&r);
        }
        wal.flush().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the last record's payload.
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let back = Wal::read_all(&path).unwrap();
        assert_eq!(back.len(), sample().len() - 1);
    }

    #[test]
    fn reset_truncates() {
        let dir = TempDir::new("wal");
        let path = dir.file("log");
        let wal = Wal::open(&path, false).unwrap();
        wal.append(&LogRecord::Begin { txn: 1 });
        wal.flush().unwrap();
        wal.reset().unwrap();
        assert!(Wal::read_all(&path).unwrap().is_empty());
        // LSNs restart after reset.
        let lsn = wal.append(&LogRecord::Begin { txn: 2 });
        assert_eq!(lsn, 0);
    }

    #[test]
    fn reading_missing_log_is_empty() {
        let dir = TempDir::new("wal");
        assert!(Wal::read_all(&dir.file("absent")).unwrap().is_empty());
    }

    #[test]
    fn lsns_increase() {
        let dir = TempDir::new("wal");
        let wal = Wal::open(&dir.file("log"), false).unwrap();
        let a = wal.append(&LogRecord::Begin { txn: 1 });
        let b = wal.append(&LogRecord::Commit { txn: 1 });
        assert!(b > a);
    }
}
