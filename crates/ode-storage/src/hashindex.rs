//! A persistent hash index.
//!
//! §5.1.3 of the paper: trigger state is stored *outside* the object, "using
//! a hash table to map the object to the set of active triggers associated
//! with it". This module provides that table as a persistent, transactional
//! multimap from `u64` keys (packed Oids, usually) to sets of Oids.
//!
//! Representation: a directory record holding the bucket Oids, plus one
//! record per bucket with its `(key, values)` entries. The table doubles
//! its bucket count when the average chain grows past a threshold. All
//! mutations run inside the caller's transaction, so index updates commit
//! or roll back atomically with the trigger state they reference — which is
//! precisely what lets aborted transactions roll back "their associated
//! events" (§5.5).

use crate::codec::{decode_all, encode_to_vec, Decode, Encode};
use crate::error::Result;
use crate::oid::{ClusterId, Oid};
use crate::storage::Storage;
use crate::txn::TxnId;
use bytes::{BufMut, BytesMut};

/// Average entries per bucket that triggers a doubling.
const SPLIT_THRESHOLD: u64 = 8;

/// Initial bucket count.
const INITIAL_BUCKETS: u32 = 8;

struct Directory {
    cluster: ClusterId,
    buckets: Vec<Oid>,
}

impl Encode for Directory {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.cluster);
        self.buckets.encode(buf);
    }
}

impl Decode for Directory {
    fn decode(buf: &mut &[u8]) -> Result<Directory> {
        Ok(Directory {
            cluster: ClusterId::decode(buf)?,
            buckets: Vec::<Oid>::decode(buf)?,
        })
    }
}

type Bucket = Vec<(u64, Vec<Oid>)>;

fn hash(mut key: u64) -> u64 {
    // SplitMix64 finalizer. Bucket selection takes `hash % len`, i.e. the
    // LOW bits, so the hash needs full avalanche there. (A single
    // Fibonacci multiply does not: its low k bits are a bijection of the
    // key's low k bits, and packed Oids share their low slot bits — big
    // records mean few slots per page, so every key fell into a handful
    // of buckets, chains never shortened, and `grow` doubled the
    // directory unboundedly.)
    key ^= key >> 30;
    key = key.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    key ^= key >> 27;
    key = key.wrapping_mul(0x94D0_49BB_1331_11EB);
    key ^= key >> 31;
    key
}

/// Handle to a persistent hash index. Cheap to copy; all state is in the
/// database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashIndex {
    dir: Oid,
}

impl HashIndex {
    /// Create a fresh index whose records live in `cluster`.
    pub fn create(storage: &Storage, txn: TxnId, cluster: ClusterId) -> Result<HashIndex> {
        let mut buckets = Vec::with_capacity(INITIAL_BUCKETS as usize);
        for _ in 0..INITIAL_BUCKETS {
            let empty: Bucket = Vec::new();
            buckets.push(storage.allocate(txn, cluster, &encode_to_vec(&empty))?);
        }
        let dir = Directory { cluster, buckets };
        let dir_oid = storage.allocate(txn, cluster, &encode_to_vec(&dir))?;
        Ok(HashIndex { dir: dir_oid })
    }

    /// Re-attach to an existing index by its directory Oid.
    pub fn open(dir: Oid) -> HashIndex {
        HashIndex { dir }
    }

    /// The directory Oid (store it in a named root to find the index again).
    pub fn oid(&self) -> Oid {
        self.dir
    }

    fn load_dir(&self, storage: &Storage, txn: TxnId) -> Result<Directory> {
        decode_all(&storage.read(txn, self.dir)?)
    }

    fn store_dir(&self, storage: &Storage, txn: TxnId, dir: &Directory) -> Result<()> {
        storage.update(txn, self.dir, &encode_to_vec(dir))
    }

    fn load_bucket(storage: &Storage, txn: TxnId, oid: Oid) -> Result<Bucket> {
        decode_all(&storage.read(txn, oid)?)
    }

    fn store_bucket(storage: &Storage, txn: TxnId, oid: Oid, bucket: &Bucket) -> Result<()> {
        storage.update(txn, oid, &encode_to_vec(bucket))
    }

    fn bucket_of(dir: &Directory, key: u64) -> Oid {
        let idx = (hash(key) % dir.buckets.len() as u64) as usize;
        dir.buckets[idx]
    }

    /// Add `value` under `key`. Duplicate (key, value) pairs are kept out.
    ///
    /// Hot path: only the affected bucket record is rewritten; the
    /// directory is touched only when a local overflow triggers a table
    /// doubling (keeping inserts O(bucket), the property §5.1.3's trigger
    /// index relies on).
    pub fn insert(&self, storage: &Storage, txn: TxnId, key: u64, value: Oid) -> Result<()> {
        let mut dir = self.load_dir(storage, txn)?;
        let bucket_oid = Self::bucket_of(&dir, key);
        let mut bucket = Self::load_bucket(storage, txn, bucket_oid)?;
        match bucket.iter_mut().find(|(k, _)| *k == key) {
            Some((_, values)) => {
                if values.contains(&value) {
                    return Ok(());
                }
                values.push(value);
            }
            None => {
                bucket.push((key, vec![value]));
            }
        }
        Self::store_bucket(storage, txn, bucket_oid, &bucket)?;
        // Grow on local overflow: with a good hash, a chain past twice the
        // target average means the table is due for doubling.
        if bucket.len() as u64 > 2 * SPLIT_THRESHOLD {
            self.grow(storage, txn, &mut dir)?;
            self.store_dir(storage, txn, &dir)?;
        }
        Ok(())
    }

    fn grow(&self, storage: &Storage, txn: TxnId, dir: &mut Directory) -> Result<()> {
        let old_buckets = dir.buckets.clone();
        let new_len = dir.buckets.len() * 2;
        // Collect all entries, then redistribute into the doubled table.
        let mut entries: Vec<(u64, Vec<Oid>)> = Vec::new();
        for oid in &old_buckets {
            entries.append(&mut Self::load_bucket(storage, txn, *oid)?);
        }
        let mut fresh: Vec<Bucket> = vec![Vec::new(); new_len];
        for (key, values) in entries {
            let idx = (hash(key) % new_len as u64) as usize;
            fresh[idx].push((key, values));
        }
        // Reuse the old bucket records for the first half, allocate the rest.
        for (i, bucket) in fresh.iter().enumerate() {
            if i < old_buckets.len() {
                Self::store_bucket(storage, txn, old_buckets[i], bucket)?;
            } else {
                dir.buckets
                    .push(storage.allocate(txn, dir.cluster, &encode_to_vec(bucket))?);
            }
        }
        Ok(())
    }

    /// All values stored under `key` (empty when absent).
    pub fn get(&self, storage: &Storage, txn: TxnId, key: u64) -> Result<Vec<Oid>> {
        let mut out = Vec::new();
        self.get_into(storage, txn, key, &mut out)?;
        Ok(out)
    }

    /// Fill `out` (cleared first) with the values stored under `key` — the
    /// reuse-a-scratch-buffer sibling of [`HashIndex::get`] for hot paths
    /// like event posting, where a fresh `Vec` per lookup would dominate
    /// the §5.4.5 cost. Probes the encoded directory and bucket records at
    /// fixed offsets instead of decoding them into nested vectors.
    pub fn get_into(
        &self,
        storage: &Storage,
        txn: TxnId,
        key: u64,
        out: &mut Vec<Oid>,
    ) -> Result<()> {
        out.clear();
        let short = |what: &str| crate::error::StorageError::Codec(format!("short {what} record"));
        // Directory wire format: u32 cluster, u32 len, len × 6-byte Oids.
        let dir_raw = storage.read(txn, self.dir)?;
        let nbuckets = u64::from(u32::from_le_bytes(
            dir_raw
                .get(4..8)
                .ok_or_else(|| short("hash directory"))?
                .try_into()
                .expect("4-byte slice"),
        ));
        if nbuckets == 0 {
            return Err(short("hash directory"));
        }
        let at = 8 + (hash(key) % nbuckets) as usize * 6;
        let bucket_raw = dir_raw
            .get(at..at + 6)
            .ok_or_else(|| short("hash directory"))?;
        let bucket_oid = Oid::new(
            u32::from_le_bytes(bucket_raw[0..4].try_into().expect("4-byte slice")),
            u16::from_le_bytes(bucket_raw[4..6].try_into().expect("2-byte slice")),
        );
        // Bucket wire format: u32 entries, each u64 key + u32 len + Oids.
        let raw = storage.read(txn, bucket_oid)?;
        let mut rest: &[u8] = raw.get(4..).ok_or_else(|| short("hash bucket"))?;
        let entries = u32::from_le_bytes(raw[0..4].try_into().expect("4-byte slice"));
        for _ in 0..entries {
            let (head, tail) = rest
                .split_at_checked(12)
                .ok_or_else(|| short("hash bucket"))?;
            let k = u64::from_le_bytes(head[0..8].try_into().expect("8-byte slice"));
            let vlen = u32::from_le_bytes(head[8..12].try_into().expect("4-byte slice")) as usize;
            let values = tail.get(..vlen * 6).ok_or_else(|| short("hash bucket"))?;
            if k == key {
                out.reserve(vlen);
                for v in values.chunks_exact(6) {
                    out.push(Oid::new(
                        u32::from_le_bytes(v[0..4].try_into().expect("4-byte slice")),
                        u16::from_le_bytes(v[4..6].try_into().expect("2-byte slice")),
                    ));
                }
                return Ok(());
            }
            rest = &tail[vlen * 6..];
        }
        Ok(())
    }

    /// Remove one `(key, value)` pair; returns whether it was present.
    pub fn remove(&self, storage: &Storage, txn: TxnId, key: u64, value: Oid) -> Result<bool> {
        let dir = self.load_dir(storage, txn)?;
        let bucket_oid = Self::bucket_of(&dir, key);
        let mut bucket = Self::load_bucket(storage, txn, bucket_oid)?;
        let Some(pos) = bucket.iter().position(|(k, _)| *k == key) else {
            return Ok(false);
        };
        let values = &mut bucket[pos].1;
        let Some(vpos) = values.iter().position(|v| *v == value) else {
            return Ok(false);
        };
        values.remove(vpos);
        if values.is_empty() {
            bucket.remove(pos);
        }
        Self::store_bucket(storage, txn, bucket_oid, &bucket)?;
        Ok(true)
    }

    /// Remove every value under `key`; returns how many were removed.
    pub fn remove_all(&self, storage: &Storage, txn: TxnId, key: u64) -> Result<usize> {
        let dir = self.load_dir(storage, txn)?;
        let bucket_oid = Self::bucket_of(&dir, key);
        let mut bucket = Self::load_bucket(storage, txn, bucket_oid)?;
        let Some(pos) = bucket.iter().position(|(k, _)| *k == key) else {
            return Ok(0);
        };
        let removed = bucket.remove(pos).1.len();
        Self::store_bucket(storage, txn, bucket_oid, &bucket)?;
        Ok(removed)
    }

    /// Number of distinct keys (computed by scanning buckets — used for
    /// monitoring and tests, not on the posting hot path).
    pub fn key_count(&self, storage: &Storage, txn: TxnId) -> Result<u64> {
        Ok(self.entries(storage, txn)?.len() as u64)
    }

    /// Every `(key, values)` entry (for scans and debugging).
    pub fn entries(&self, storage: &Storage, txn: TxnId) -> Result<Vec<(u64, Vec<Oid>)>> {
        let dir = self.load_dir(storage, txn)?;
        let mut out = Vec::new();
        for oid in &dir.buckets {
            out.append(&mut Self::load_bucket(storage, txn, *oid)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::FIRST_USER_CLUSTER;

    fn setup() -> (Storage, TxnId, HashIndex) {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        assert_eq!(c, FIRST_USER_CLUSTER);
        let idx = HashIndex::create(&s, t, c).unwrap();
        (s, t, idx)
    }

    #[test]
    fn insert_get_remove() {
        let (s, t, idx) = setup();
        let v1 = Oid::new(9, 1);
        let v2 = Oid::new(9, 2);
        idx.insert(&s, t, 42, v1).unwrap();
        idx.insert(&s, t, 42, v2).unwrap();
        assert_eq!(idx.get(&s, t, 42).unwrap(), vec![v1, v2]);
        assert!(idx.remove(&s, t, 42, v1).unwrap());
        assert_eq!(idx.get(&s, t, 42).unwrap(), vec![v2]);
        assert!(!idx.remove(&s, t, 42, v1).unwrap());
        assert!(idx.remove(&s, t, 42, v2).unwrap());
        assert!(idx.get(&s, t, 42).unwrap().is_empty());
        assert_eq!(idx.key_count(&s, t).unwrap(), 0);
    }

    #[test]
    fn duplicate_pairs_are_ignored() {
        let (s, t, idx) = setup();
        let v = Oid::new(1, 1);
        idx.insert(&s, t, 7, v).unwrap();
        idx.insert(&s, t, 7, v).unwrap();
        assert_eq!(idx.get(&s, t, 7).unwrap(), vec![v]);
    }

    #[test]
    fn missing_key_is_empty() {
        let (s, t, idx) = setup();
        assert!(idx.get(&s, t, 999).unwrap().is_empty());
        assert_eq!(idx.remove_all(&s, t, 999).unwrap(), 0);
    }

    #[test]
    fn grows_past_threshold() {
        let (s, t, idx) = setup();
        for key in 0..200u64 {
            idx.insert(&s, t, key, Oid::from_u64(key)).unwrap();
        }
        assert_eq!(idx.key_count(&s, t).unwrap(), 200);
        for key in 0..200u64 {
            assert_eq!(
                idx.get(&s, t, key).unwrap(),
                vec![Oid::from_u64(key)],
                "key {key} lost in resize"
            );
        }
        let entries = idx.entries(&s, t).unwrap();
        assert_eq!(entries.len(), 200);
    }

    #[test]
    fn packed_oid_keys_spread_across_buckets() {
        // Regression: keys shaped like packed Oids of big records — many
        // pages, slots only 0..3, so the keys' low 16 bits collide almost
        // entirely. A hash without low-bit avalanche funnels them into a
        // handful of buckets and the table doubles unboundedly (until the
        // directory record itself overflows). The directory must stay
        // proportional to the key count.
        let (s, t, idx) = setup();
        const KEYS: u64 = 600;
        for page in 0..KEYS / 3 {
            for slot in 0..3 {
                idx.insert(
                    &s,
                    t,
                    Oid::new(page as u32 + 10, slot).to_u64(),
                    Oid::new(1, 1),
                )
                .unwrap();
            }
        }
        assert_eq!(idx.key_count(&s, t).unwrap(), KEYS);
        let dir = idx.load_dir(&s, t).unwrap();
        assert!(
            (dir.buckets.len() as u64) <= KEYS / SPLIT_THRESHOLD * 4,
            "directory exploded: {} buckets for {KEYS} keys",
            dir.buckets.len()
        );
    }

    #[test]
    fn get_into_matches_get_and_reuses_the_buffer() {
        let (s, t, idx) = setup();
        // Enough keys to force a table doubling, so the byte-walking probe
        // is exercised against a grown directory too.
        for key in 0..200u64 {
            idx.insert(&s, t, key, Oid::from_u64(key)).unwrap();
            idx.insert(&s, t, key, Oid::from_u64(key + 1000)).unwrap();
        }
        let mut scratch = Vec::new();
        for key in 0..200u64 {
            idx.get_into(&s, t, key, &mut scratch).unwrap();
            assert_eq!(scratch, idx.get(&s, t, key).unwrap(), "key {key}");
            assert_eq!(scratch.len(), 2);
        }
        // Missing keys leave the buffer empty, not stale.
        idx.get_into(&s, t, 9_999, &mut scratch).unwrap();
        assert!(scratch.is_empty());
    }

    #[test]
    fn remove_all_clears_key() {
        let (s, t, idx) = setup();
        for i in 0..5u16 {
            idx.insert(&s, t, 1, Oid::new(2, i)).unwrap();
        }
        assert_eq!(idx.remove_all(&s, t, 1).unwrap(), 5);
        assert!(idx.get(&s, t, 1).unwrap().is_empty());
    }

    #[test]
    fn index_survives_commit_and_abort() {
        let (s, t, idx) = setup();
        idx.insert(&s, t, 5, Oid::new(3, 3)).unwrap();
        s.commit(t).unwrap();

        let t2 = s.begin().unwrap();
        idx.insert(&s, t2, 5, Oid::new(3, 4)).unwrap();
        idx.insert(&s, t2, 6, Oid::new(3, 5)).unwrap();
        s.abort(t2).unwrap();

        let t3 = s.begin().unwrap();
        assert_eq!(idx.get(&s, t3, 5).unwrap(), vec![Oid::new(3, 3)]);
        assert!(idx.get(&s, t3, 6).unwrap().is_empty());
        s.commit(t3).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        use ode_testutil::TempDir;
        let dir = TempDir::new("hashidx");
        let idx_oid;
        {
            let s = Storage::create(dir.path(), crate::storage::StorageOptions::default()).unwrap();
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let idx = HashIndex::create(&s, t, c).unwrap();
            idx.insert(&s, t, 11, Oid::new(8, 8)).unwrap();
            s.set_root(t, "idx", idx.oid()).unwrap();
            idx_oid = idx.oid();
            s.commit(t).unwrap();
            s.close().unwrap();
        }
        {
            let s = Storage::open(dir.path(), crate::storage::StorageOptions::default()).unwrap();
            let t = s.begin().unwrap();
            assert_eq!(s.get_root(t, "idx").unwrap(), idx_oid);
            let idx = HashIndex::open(idx_oid);
            assert_eq!(idx.get(&s, t, 11).unwrap(), vec![Oid::new(8, 8)]);
            s.commit(t).unwrap();
        }
    }
}
