//! Slotted pages.
//!
//! Both the EOS-like disk engine and the Dali-like main-memory engine store
//! objects in fixed-size slotted pages: a small header, a slot directory
//! growing downward from the header, and cell data growing upward from the
//! end of the page. A record's slot number never changes while it lives on
//! the page, which is what keeps [`crate::oid::Oid`]s stable.
//!
//! Layout (all little-endian):
//!
//! ```text
//! 0..8    lsn        u64   log sequence number of the last change
//! 8..10   slot_count u16   number of slot directory entries (incl. free)
//! 10..12  free_end   u16   offset where the cell area begins
//! 12..16  cluster    u32   cluster this page belongs to (pages are
//!                          cluster-exclusive, mirroring Ode's clusters)
//! 16..    slot directory: 4 bytes per slot (offset u16, len u16)
//! ...     free space
//! free_end..PAGE_SIZE  cell data
//! ```
//!
//! A slot entry with `offset == 0` is free (0 can never be a valid cell
//! offset because the header occupies it).

use crate::oid::ClusterId;

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Bytes taken by the fixed page header.
pub const HEADER_SIZE: usize = 16;

/// Bytes per slot directory entry.
const SLOT_ENTRY: usize = 4;

/// The largest record payload a single page can hold (header + one slot
/// entry subtracted). Larger records use overflow chains in the heap layer.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_ENTRY;

/// A fixed-size slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

/// Why an insert or update could not be performed on this page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageOpError {
    /// Not enough contiguous + reclaimable free space.
    Full,
    /// The slot number does not exist or is free.
    BadSlot,
    /// `insert_at` was asked to fill a slot that is already occupied.
    SlotOccupied,
}

impl Page {
    /// A fresh page: zero slots, whole body free.
    pub fn new() -> Page {
        let mut p = Page {
            data: Box::new([0u8; PAGE_SIZE]),
        };
        p.set_free_end(PAGE_SIZE as u16);
        p
    }

    /// Rehydrate a page from raw bytes (from disk or a checkpoint image).
    pub fn from_bytes(bytes: &[u8]) -> Page {
        assert_eq!(bytes.len(), PAGE_SIZE, "page image must be PAGE_SIZE");
        let mut data = Box::new([0u8; PAGE_SIZE]);
        data.copy_from_slice(bytes);
        Page { data }
    }

    /// Raw page image.
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn get_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn set_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Log sequence number of the last modification (used by recovery).
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.data[0..8].try_into().unwrap())
    }

    /// Set the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.data[0..8].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Number of slot directory entries, including freed ones.
    pub fn slot_count(&self) -> u16 {
        self.get_u16(8)
    }

    fn set_slot_count(&mut self, v: u16) {
        self.set_u16(8, v);
    }

    fn free_end(&self) -> u16 {
        self.get_u16(10)
    }

    fn set_free_end(&mut self, v: u16) {
        self.set_u16(10, v);
    }

    /// Cluster this page's records belong to.
    pub fn cluster(&self) -> ClusterId {
        u32::from_le_bytes(self.data[12..16].try_into().unwrap())
    }

    /// Assign the page to a cluster.
    pub fn set_cluster(&mut self, cluster: ClusterId) {
        self.data[12..16].copy_from_slice(&cluster.to_le_bytes());
    }

    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let at = HEADER_SIZE + SLOT_ENTRY * slot as usize;
        (self.get_u16(at), self.get_u16(at + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let at = HEADER_SIZE + SLOT_ENTRY * slot as usize;
        self.set_u16(at, offset);
        self.set_u16(at + 2, len);
    }

    fn dir_end(&self) -> usize {
        HEADER_SIZE + SLOT_ENTRY * self.slot_count() as usize
    }

    /// Contiguous free space between the slot directory and the cell area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end() as usize - self.dir_end()
    }

    /// Total reclaimable free space: contiguous free space plus dead cell
    /// bytes that compaction would recover. Does not count free slot entries.
    pub fn usable_free(&self) -> usize {
        let live: usize = self.live_slots().map(|(_, _, len)| len as usize).sum();
        (PAGE_SIZE - self.dir_end()) - live
    }

    /// Whether a record of `len` bytes can be inserted (possibly after
    /// compaction), accounting for a new slot entry if none is free.
    pub fn can_insert(&self, len: usize) -> bool {
        if len > MAX_RECORD {
            return false;
        }
        let slot_cost = if self.find_free_slot().is_some() {
            0
        } else {
            SLOT_ENTRY
        };
        self.usable_free() >= len + slot_cost
    }

    fn find_free_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == 0)
    }

    /// Iterator over `(slot, offset, len)` of occupied slots.
    fn live_slots(&self) -> impl Iterator<Item = (u16, u16, u16)> + '_ {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            (off != 0).then_some((s, off, len))
        })
    }

    /// Occupied slot numbers, for scans.
    pub fn occupied_slots(&self) -> Vec<u16> {
        self.live_slots().map(|(s, _, _)| s).collect()
    }

    /// Iterator over `(slot, cell bytes)` of occupied slots — the scan
    /// primitive shared by the 2PL and snapshot cluster scans.
    pub fn occupied_cells(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        self.live_slots()
            .map(move |(s, off, len)| (s, &self.data[off as usize..off as usize + len as usize]))
    }

    /// Read the record in `slot`.
    pub fn read(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return None;
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Move all live cells to the end of the page, eliminating dead space.
    fn compact(&mut self) {
        let mut live: Vec<(u16, Vec<u8>)> = self
            .live_slots()
            .map(|(s, off, len)| {
                (
                    s,
                    self.data[off as usize..off as usize + len as usize].to_vec(),
                )
            })
            .collect();
        // Pack from the end of the page.
        let mut cursor = PAGE_SIZE;
        // Sort for determinism (order does not matter for correctness).
        live.sort_by_key(|(s, _)| *s);
        for (slot, bytes) in &live {
            cursor -= bytes.len();
            self.data[cursor..cursor + bytes.len()].copy_from_slice(bytes);
            self.set_slot_entry(*slot, cursor as u16, bytes.len() as u16);
        }
        self.set_free_end(cursor as u16);
    }

    fn place_cell(&mut self, len: usize) -> Result<u16, PageOpError> {
        if self.contiguous_free() < len {
            self.compact();
        }
        if self.contiguous_free() < len {
            return Err(PageOpError::Full);
        }
        let off = self.free_end() as usize - len;
        self.set_free_end(off as u16);
        Ok(off as u16)
    }

    /// Insert a record; returns its slot.
    pub fn insert(&mut self, data: &[u8]) -> Result<u16, PageOpError> {
        if !self.can_insert(data.len()) {
            return Err(PageOpError::Full);
        }
        let slot = match self.find_free_slot() {
            Some(s) => s,
            None => {
                // Growing the directory consumes contiguous space at its
                // end; compact first if fragmentation left fewer than
                // SLOT_ENTRY contiguous bytes, or the new entry would
                // overlap the lowest cell.
                if self.contiguous_free() < SLOT_ENTRY {
                    self.compact();
                }
                debug_assert!(self.contiguous_free() >= SLOT_ENTRY);
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                // Newly added directory entry must start out free.
                self.set_slot_entry(s, 0, 0);
                s
            }
        };
        let off = self.place_cell(data.len())?;
        self.data[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.set_slot_entry(slot, off, data.len() as u16);
        Ok(slot)
    }

    /// Insert a record into a specific (currently free) slot. Used by
    /// recovery replay and by undo of deletes so that Oids are reproduced
    /// exactly.
    pub fn insert_at(&mut self, slot: u16, data: &[u8]) -> Result<(), PageOpError> {
        if data.len() > MAX_RECORD {
            return Err(PageOpError::Full);
        }
        if slot < self.slot_count() && self.slot_entry(slot).0 != 0 {
            return Err(PageOpError::SlotOccupied);
        }
        // Grow the directory if needed; intervening new slots start free.
        let needed_dir = HEADER_SIZE + SLOT_ENTRY * (slot as usize + 1);
        if slot >= self.slot_count() {
            let extra_dir = needed_dir - self.dir_end();
            if self.usable_free() < data.len() + extra_dir {
                return Err(PageOpError::Full);
            }
            if self.contiguous_free() < extra_dir {
                self.compact();
            }
            if self.contiguous_free() < extra_dir {
                return Err(PageOpError::Full);
            }
            let old = self.slot_count();
            self.set_slot_count(slot + 1);
            for s in old..=slot {
                self.set_slot_entry(s, 0, 0);
            }
        } else if self.usable_free() < data.len() {
            return Err(PageOpError::Full);
        }
        let off = self.place_cell(data.len())?;
        self.data[off as usize..off as usize + data.len()].copy_from_slice(data);
        self.set_slot_entry(slot, off, data.len() as u16);
        Ok(())
    }

    /// Replace the record in `slot` with `data`, keeping the slot number.
    pub fn update(&mut self, slot: u16, data: &[u8]) -> Result<(), PageOpError> {
        if slot >= self.slot_count() || self.slot_entry(slot).0 == 0 {
            return Err(PageOpError::BadSlot);
        }
        let (off, len) = self.slot_entry(slot);
        if data.len() <= len as usize {
            // Shrink in place; the tail bytes become dead space reclaimed by
            // the next compaction.
            let off = off as usize;
            self.data[off..off + data.len()].copy_from_slice(data);
            self.set_slot_entry(slot, off as u16, data.len() as u16);
            return Ok(());
        }
        // Grow: logically free the old cell, then place a new one. Freeing
        // first lets compaction reclaim the old copy.
        self.set_slot_entry(slot, 0, 0);
        if self.usable_free() < data.len() {
            // Roll back the slot entry so the page is unchanged on failure.
            self.set_slot_entry(slot, off, len);
            return Err(PageOpError::Full);
        }
        let new_off = self.place_cell(data.len())?;
        self.data[new_off as usize..new_off as usize + data.len()].copy_from_slice(data);
        self.set_slot_entry(slot, new_off, data.len() as u16);
        Ok(())
    }

    /// Delete the record in `slot`. The slot entry becomes reusable.
    pub fn delete(&mut self, slot: u16) -> Result<(), PageOpError> {
        if slot >= self.slot_count() || self.slot_entry(slot).0 == 0 {
            return Err(PageOpError::BadSlot);
        }
        self.set_slot_entry(slot, 0, 0);
        // Shrink the directory if a suffix of slots is free, so pages that
        // empty out fully recover their space.
        let mut count = self.slot_count();
        while count > 0 && self.slot_entry(count - 1).0 == 0 {
            count -= 1;
        }
        self.set_slot_count(count);
        Ok(())
    }

    /// True when no slot holds a record.
    pub fn is_empty(&self) -> bool {
        self.live_slots().next().is_none()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("lsn", &self.lsn())
            .field("slots", &self.slot_count())
            .field("free", &self.usable_free())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_read() {
        let mut p = Page::new();
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.read(a).unwrap(), b"hello");
        assert_eq!(p.read(b).unwrap(), b"world!");
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut p = Page::new();
        let a = p.insert(b"one").unwrap();
        let _b = p.insert(b"two").unwrap();
        p.delete(a).unwrap();
        assert!(p.read(a).is_none());
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, a, "freed slot should be reused");
    }

    #[test]
    fn trailing_delete_shrinks_directory() {
        let mut p = Page::new();
        let a = p.insert(b"one").unwrap();
        let b = p.insert(b"two").unwrap();
        p.delete(b).unwrap();
        assert_eq!(p.slot_count(), 1);
        p.delete(a).unwrap();
        assert_eq!(p.slot_count(), 0);
        assert!(p.is_empty());
        assert_eq!(p.usable_free(), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let a = p.insert(b"abcdef").unwrap();
        p.update(a, b"xy").unwrap();
        assert_eq!(p.read(a).unwrap(), b"xy");
        p.update(a, b"a longer record than before").unwrap();
        assert_eq!(p.read(a).unwrap(), b"a longer record than before");
    }

    #[test]
    fn fills_up_and_reports_full() {
        let mut p = Page::new();
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).is_ok() {
            n += 1;
        }
        // 4096 - 12 header; each record costs 104 bytes => 39 fit.
        assert_eq!(n, (PAGE_SIZE - HEADER_SIZE) / (100 + SLOT_ENTRY));
        assert!(!p.can_insert(100));
        assert!(p.can_insert(10));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut p = Page::new();
        let mut slots = Vec::new();
        let rec = [1u8; 200];
        while let Ok(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Free every other record; contiguous space stays small but usable
        // space is large, so a big insert must trigger compaction.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let big = [2u8; 1000];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.read(s).unwrap(), &big[..]);
    }

    #[test]
    fn roundtrip_via_bytes() {
        let mut p = Page::new();
        p.set_lsn(77);
        let a = p.insert(b"persist me").unwrap();
        let q = Page::from_bytes(p.as_bytes());
        assert_eq!(q.lsn(), 77);
        assert_eq!(q.read(a).unwrap(), b"persist me");
    }

    #[test]
    fn insert_at_reproduces_slots() {
        let mut p = Page::new();
        p.insert_at(3, b"late").unwrap();
        assert_eq!(p.slot_count(), 4);
        assert_eq!(p.read(3).unwrap(), b"late");
        assert!(p.read(0).is_none());
        // Occupied slot rejects insert_at.
        assert_eq!(p.insert_at(3, b"x"), Err(PageOpError::SlotOccupied));
        // Fresh inserts fill the earlier free slots.
        let s = p.insert(b"early").unwrap();
        assert_eq!(s, 0);
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = Page::new();
        let rec = vec![9u8; MAX_RECORD];
        let s = p.insert(&rec).unwrap();
        assert_eq!(p.read(s).unwrap().len(), MAX_RECORD);
        assert!(!p.can_insert(1) || p.can_insert(0));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new();
        let rec = vec![9u8; MAX_RECORD + 1];
        assert_eq!(p.insert(&rec), Err(PageOpError::Full));
    }

    #[test]
    fn directory_growth_compacts_when_fragmented() {
        // Regression: with no free slot entries and zero contiguous bytes
        // (only dead-space fragmentation), growing the directory used to
        // overlap the lowest cell and underflow contiguous_free.
        let mut p = Page::new();
        // Fill the page exactly: 40 records of 98 bytes (40 × (98+4) =
        // 4080 = PAGE_SIZE - HEADER_SIZE).
        let rec = [7u8; 98];
        for _ in 0..40 {
            p.insert(&rec).unwrap();
        }
        assert_eq!(p.contiguous_free(), 0);
        assert!(p.insert(&[0u8; 1]).is_err());
        // Shrink one record in place: usable space appears as a dead
        // fragment, contiguous stays 0, and no slot entry is free.
        p.update(3, &[1u8; 50]).unwrap();
        assert_eq!(p.contiguous_free(), 0);
        assert!(p.usable_free() >= 48);
        // This insert must grow the directory; it used to panic/corrupt.
        let snapshot: Vec<_> = p
            .occupied_slots()
            .iter()
            .map(|&s| (s, p.read(s).unwrap().to_vec()))
            .collect();
        let slot = p.insert(&[2u8; 20]).unwrap();
        assert_eq!(p.read(slot).unwrap(), &[2u8; 20]);
        for (s, data) in snapshot {
            assert_eq!(p.read(s).unwrap(), &data[..], "slot {s} corrupted");
        }
    }

    #[test]
    fn update_failure_leaves_page_unchanged() {
        let mut p = Page::new();
        let filler = vec![1u8; 2000];
        let a = p.insert(&filler).unwrap();
        let b = p.insert(&filler).unwrap();
        let too_big = vec![2u8; 2500];
        assert_eq!(p.update(b, &too_big), Err(PageOpError::Full));
        assert_eq!(p.read(a).unwrap(), &filler[..]);
        assert_eq!(p.read(b).unwrap(), &filler[..]);
    }
}
