//! Fault injection for crash-recovery testing.
//!
//! A [`FaultInjector`] is an armable plan shared (via `Arc`) by every
//! [`FaultFile`] of a database — the WAL file and the data file both wrap
//! their handles in one. While disarmed it costs one atomic load per
//! write/fsync. Armed plans model the three ways a commit pipeline dies:
//!
//! * **Write cap** — the device accepts N more bytes, writes a *prefix* of
//!   the next overflowing write (tearing the frame mid-record), then fails
//!   every subsequent write and fsync. This is the classic torn-tail crash.
//! * **Fsync failure** — writes land in the OS cache but `sync_data`
//!   reports an error, after which the file is dead (fsyncgate semantics:
//!   a failed fsync is fail-stop, not retryable).
//!
//! After the first injected fault the injector is *tripped*: all further
//! writes and fsyncs fail, modelling a machine that is simply gone. The
//! crash-recovery harness then reopens the directory with a fresh,
//! uninjected [`Storage`](crate::storage::Storage) and asserts the
//! recovered state is a committed prefix.
//!
//! Every injected fault ticks the engine-wide `faults_injected` counter
//! (when a registry has been attached) plus a local count readable via
//! [`FaultInjector::injected`].

use ode_obs::Metrics;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What the armed plan does to the next matching operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plan {
    /// Nothing armed; all I/O passes through.
    Disarmed,
    /// Allow `remaining` more payload bytes, tear the write that crosses
    /// the budget, then trip.
    WriteCap { remaining: u64 },
    /// The next fsync fails, then trip.
    FailFsync,
    /// A fault already fired: every write and fsync fails from now on.
    Tripped,
}

/// Shared, armable fault plan. See module docs.
pub struct FaultInjector {
    armed: AtomicBool,
    plan: Mutex<Plan>,
    injected: AtomicU64,
    metrics: Mutex<Option<Arc<Metrics>>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &*self.plan.lock())
            .field("injected", &self.injected.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new()
    }
}

/// Outcome of consulting the plan before a write.
enum WriteOutcome {
    /// Perform the full write.
    Full,
    /// Write only the first `n` bytes, then report the device dead.
    Torn(usize),
    /// Perform no write at all; the device is dead.
    Dead,
}

impl FaultInjector {
    /// A disarmed injector (all I/O passes through until armed).
    pub fn new() -> FaultInjector {
        FaultInjector {
            armed: AtomicBool::new(false),
            plan: Mutex::new(Plan::Disarmed),
            injected: AtomicU64::new(0),
            metrics: Mutex::new(None),
        }
    }

    /// Tick injected faults into this registry too (done at storage
    /// assembly, so harness assertions can use `MetricsSnapshot`).
    pub fn attach_metrics(&self, metrics: Arc<Metrics>) {
        *self.metrics.lock() = Some(metrics);
    }

    /// Allow `bytes` more written bytes across all wrapped files, then
    /// tear the overflowing write and kill the device.
    pub fn arm_write_cap(&self, bytes: u64) {
        *self.plan.lock() = Plan::WriteCap { remaining: bytes };
        self.armed.store(true, Ordering::Release);
    }

    /// Fail the next fsync, then kill the device.
    pub fn arm_fail_fsync(&self) {
        *self.plan.lock() = Plan::FailFsync;
        self.armed.store(true, Ordering::Release);
    }

    /// Return to pass-through mode (also clears a tripped state).
    pub fn disarm(&self) {
        *self.plan.lock() = Plan::Disarmed;
        self.armed.store(false, Ordering::Release);
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Has a fault fired (device considered dead)?
    pub fn tripped(&self) -> bool {
        self.armed.load(Ordering::Acquire) && *self.plan.lock() == Plan::Tripped
    }

    fn record_injection(&self) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.metrics.lock().as_ref() {
            m.faults_injected.inc();
        }
    }

    fn on_write(&self, len: usize) -> WriteOutcome {
        if !self.armed.load(Ordering::Acquire) {
            return WriteOutcome::Full;
        }
        let mut plan = self.plan.lock();
        match *plan {
            Plan::Disarmed | Plan::FailFsync => WriteOutcome::Full,
            Plan::WriteCap { remaining } => {
                if (len as u64) <= remaining {
                    *plan = Plan::WriteCap {
                        remaining: remaining - len as u64,
                    };
                    WriteOutcome::Full
                } else {
                    *plan = Plan::Tripped;
                    drop(plan);
                    self.record_injection();
                    WriteOutcome::Torn(remaining as usize)
                }
            }
            Plan::Tripped => {
                drop(plan);
                self.record_injection();
                WriteOutcome::Dead
            }
        }
    }

    fn on_fsync(&self) -> std::io::Result<()> {
        if !self.armed.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut plan = self.plan.lock();
        match *plan {
            Plan::Disarmed | Plan::WriteCap { .. } => Ok(()),
            Plan::FailFsync | Plan::Tripped => {
                *plan = Plan::Tripped;
                drop(plan);
                self.record_injection();
                Err(dead("fsync failed"))
            }
        }
    }
}

fn dead(what: &str) -> std::io::Error {
    std::io::Error::other(format!("fault injected: {what}"))
}

/// A [`File`] wrapper that routes writes and fsyncs through an optional
/// [`FaultInjector`]. Reads, seeks, and truncation pass through untouched
/// (a crashed machine stops *writing*; recovery reads are real I/O).
pub struct FaultFile {
    file: File,
    injector: Option<Arc<FaultInjector>>,
}

impl FaultFile {
    /// Wrap `file`; `injector: None` is zero-overhead pass-through.
    pub fn new(file: File, injector: Option<Arc<FaultInjector>>) -> FaultFile {
        FaultFile { file, injector }
    }

    /// Write all of `buf`, subject to the armed fault plan.
    pub fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match self.injector.as_ref().map(|i| i.on_write(buf.len())) {
            None | Some(WriteOutcome::Full) => self.file.write_all(buf),
            Some(WriteOutcome::Torn(n)) => {
                // The device dies mid-write: a prefix reaches the file.
                self.file.write_all(&buf[..n])?;
                Err(dead("write killed by byte cap"))
            }
            Some(WriteOutcome::Dead) => Err(dead("write after device death")),
        }
    }

    /// `sync_data`, subject to the armed fault plan.
    pub fn sync_data(&self) -> std::io::Result<()> {
        if let Some(injector) = &self.injector {
            injector.on_fsync()?;
        }
        self.file.sync_data()
    }

    /// Seek (pass-through).
    pub fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.file.seek(pos)
    }

    /// Exact read (pass-through).
    pub fn read_exact(&mut self, buf: &mut [u8]) -> std::io::Result<()> {
        self.file.read_exact(buf)
    }

    /// Read to end (pass-through).
    pub fn read_to_end(&mut self, buf: &mut Vec<u8>) -> std::io::Result<usize> {
        self.file.read_to_end(buf)
    }

    /// Truncate (pass-through; recovery repairs torn tails with this).
    pub fn set_len(&self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    fn scratch(dir: &TempDir, injector: Option<Arc<FaultInjector>>) -> FaultFile {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.file("f"))
            .unwrap();
        FaultFile::new(file, injector)
    }

    #[test]
    fn pass_through_without_injector() {
        let dir = TempDir::new("fault");
        let mut f = scratch(&dir, None);
        f.write_all(b"hello").unwrap();
        f.sync_data().unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"hello");
    }

    #[test]
    fn write_cap_tears_and_trips() {
        let dir = TempDir::new("fault");
        let injector = Arc::new(FaultInjector::new());
        let mut f = scratch(&dir, Some(Arc::clone(&injector)));
        injector.arm_write_cap(6);
        f.write_all(b"abcd").unwrap(); // 4 of 6 bytes used
        let err = f.write_all(b"efgh").unwrap_err(); // tears after 2 bytes
        assert!(err.to_string().contains("fault injected"));
        assert!(injector.tripped());
        // Device dead: further writes and fsyncs fail.
        assert!(f.write_all(b"x").is_err());
        assert!(f.sync_data().is_err());
        assert!(injector.injected() >= 3);
        // The torn prefix reached the file.
        f.seek(SeekFrom::Start(0)).unwrap();
        let mut buf = Vec::new();
        f.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"abcdef");
    }

    #[test]
    fn fsync_failure_trips() {
        let dir = TempDir::new("fault");
        let injector = Arc::new(FaultInjector::new());
        let mut f = scratch(&dir, Some(Arc::clone(&injector)));
        injector.arm_fail_fsync();
        f.write_all(b"written but never durable").unwrap();
        assert!(f.sync_data().is_err());
        assert!(injector.tripped());
        assert!(f.write_all(b"x").is_err());
    }

    #[test]
    fn disarm_restores_io() {
        let dir = TempDir::new("fault");
        let injector = Arc::new(FaultInjector::new());
        let mut f = scratch(&dir, Some(Arc::clone(&injector)));
        injector.arm_write_cap(0);
        assert!(f.write_all(b"no").is_err());
        injector.disarm();
        f.write_all(b"yes").unwrap();
        f.sync_data().unwrap();
    }

    #[test]
    fn metrics_tick_on_injection() {
        let dir = TempDir::new("fault");
        let injector = Arc::new(FaultInjector::new());
        let metrics = Arc::new(Metrics::new());
        injector.attach_metrics(Arc::clone(&metrics));
        let f = scratch(&dir, Some(Arc::clone(&injector)));
        injector.arm_fail_fsync();
        assert!(f.sync_data().is_err());
        assert_eq!(metrics.snapshot().faults_injected, 1);
        assert_eq!(injector.injected(), 1);
    }
}
