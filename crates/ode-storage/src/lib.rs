//! # ode-storage — the storage substrate of the Ode reproduction
//!
//! The Ode object manager "is built on top of a storage manager which
//! provides much of the required database functionality such as locking,
//! logging, transactions" (§2 of the paper). Ode shipped on two such
//! managers: the disk-based **EOS** and the main-memory **Dali** (for
//! MM-Ode), sharing one run-time. This crate reproduces that layering:
//!
//! * [`storage::Storage`] — the transactional object heap. One facade, two
//!   engines ([`storage::EngineKind::Disk`] / [`storage::EngineKind::Memory`]),
//!   shared locking/transaction/rollback run-time.
//! * [`page`] — slotted pages; [`disk`] + [`buffer`] — the EOS-like page
//!   file and its no-steal buffer pool; [`mem`] — the Dali-like in-memory
//!   page store with checkpoint durability.
//! * [`wal`] — physiological write-ahead logging with redo-only recovery.
//! * [`lock`] — strict 2PL with deadlock detection and wait statistics
//!   (the measurement hook for the paper's "triggers turn reads into
//!   writes" observation, §6).
//! * [`txn`] — transactions, system transactions, and commit dependencies
//!   (the substrate for the `dependent`/`!dependent` coupling modes, §5.5).
//! * [`version`] — per-object version chains backing MVCC snapshot reads:
//!   read-only transactions bypass the lock manager entirely, which
//!   removes the §6 read-amplification ceiling for pure readers.
//! * [`hashindex`] — the persistent object→triggers multimap of §5.1.3.
//! * [`btree`] — a persistent B+-tree (disk-Ode's ordered index, §5.6).
//! * [`codec`] — explicit, layout-stable binary encoding (§3, goal 5).
//!
//! ## Quick start
//!
//! ```
//! use ode_storage::storage::Storage;
//!
//! let db = Storage::volatile();
//! let txn = db.begin().unwrap();
//! let cluster = db.create_cluster(txn).unwrap();
//! let oid = db.allocate(txn, cluster, b"hello").unwrap();
//! assert_eq!(db.read(txn, oid).unwrap(), b"hello");
//! db.commit(txn).unwrap();
//! ```

#![warn(missing_docs)]

pub mod btree;
pub mod buffer;
pub mod codec;
pub mod disk;
pub mod error;
pub mod fault;
pub mod hashindex;
pub mod lock;
pub mod mem;
pub mod oid;
pub mod page;
pub mod storage;
pub mod txn;
pub mod version;
pub mod wal;

pub use error::{Result, StorageError};
pub use fault::{FaultFile, FaultInjector};
pub use oid::{ClusterId, Oid, PageId};
pub use storage::{CommitTicket, EngineKind, Storage, StorageOptions};
pub use txn::{TxnId, TxnState};
pub use version::{SnapshotLookup, VersionStats};
