//! Transaction bookkeeping shared by both storage engines.
//!
//! Transactions here are the substrate for everything §5.5 of the paper
//! needs: ordinary user transactions, *system transactions* ("a transaction
//! not explicitly requested by the user, but required for trigger
//! processing" — how `dependent` and `!dependent` actions run), and commit
//! dependencies (a `dependent` trigger's transaction "can commit only if
//! the event detecting transaction does").
//!
//! Rollback is implemented with in-memory undo records captured at
//! operation time; because the buffer pool never steals dirty pages, undo
//! never needs to *read* the log. Each applied undo step is nevertheless
//! *written* to the log as an ordinary cell record (compensation-log
//! style), so crash recovery can repeat history through aborts — a
//! committed transaction's operations may physically depend on page
//! layout an abort produced (e.g. a relocated cell).
//!
//! The transaction table is striped by transaction id: every storage
//! operation consults it (`require_active`, `push_undo`, ...), so a single
//! table mutex would serialize otherwise-independent transactions. Each
//! stripe has its own condvar; [`TxnManager::finish`] notifies the
//! finished transaction's stripe, which is exactly where
//! [`TxnManager::await_dependencies`] waits for it.

use crate::error::{Result, StorageError};
use crate::oid::{Oid, PageId};
use ode_obs::Metrics;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default number of transaction-table stripes (power of two).
pub const DEFAULT_TXN_STRIPES: usize = 8;

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "txn#{}", self.0)
    }
}

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Running; may still read and write.
    Active,
    /// Durably finished; effects visible.
    Committed,
    /// Rolled back; effects undone.
    Aborted,
}

/// One cell-level undo action, applied in reverse order on abort.
#[allow(missing_docs)] // fields are self-describing
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UndoOp {
    /// Undo an insert: delete the cell again.
    UndoInsert { page: PageId, slot: u16 },
    /// Undo an update: restore the previous cell bytes.
    UndoUpdate {
        page: PageId,
        slot: u16,
        before: Vec<u8>,
    },
    /// Undo a delete: re-insert the previous cell bytes at the same slot.
    UndoDelete {
        page: PageId,
        slot: u16,
        before: Vec<u8>,
    },
}

struct TxnRecord {
    state: TxnState,
    system: bool,
    undo: Vec<UndoOp>,
    /// Cells tombstoned by this transaction's deletes, physically removed
    /// at commit (their slots and bytes stay reserved until then so the
    /// deletes remain undoable and no concurrent insert can take the Oid).
    pending_deletes: Vec<Oid>,
    /// Transactions this one may only commit after (commit dependencies).
    depends_on: Vec<TxnId>,
    /// Whether a WAL Begin record has been written for this transaction.
    /// Stays false for read-only transactions, which therefore skip the
    /// Commit record and flush entirely.
    logged: bool,
    /// Conservative lower bound on the LSN of this transaction's first WAL
    /// record (its Begin), set with `logged` under the stripe lock. The
    /// fuzzy checkpointer's truncation horizon must stay behind the
    /// minimum of these across active transactions.
    first_lsn: Option<u64>,
    /// LSN of this transaction's Commit record, recorded at commit time so
    /// durability waits (`flushed_lsn >= commit_lsn`) can be ordered after
    /// dependency release.
    commit_lsn: Option<u64>,
    /// Primary Oids (as `u64`) whose pages this transaction has mutated —
    /// the write set whose committed values the version store installs at
    /// commit (or unpins on abort).
    dirty: HashSet<u64>,
    /// For read-only transactions: the version-store snapshot sequence
    /// every read is served at. `None` for ordinary (writer) transactions.
    snapshot: Option<u64>,
    /// For read-only transactions: the WAL read barrier captured at begin
    /// time (commit pipeline durability watermark the snapshot may depend
    /// on). `None` when the WAL was already flushed past it.
    read_barrier: Option<u64>,
}

struct TxnStripe {
    txns: Mutex<HashMap<TxnId, TxnRecord>>,
    cv: Condvar,
}

/// Registry of transactions and their states, striped by transaction id.
pub struct TxnManager {
    next: AtomicU64,
    stripes: Box<[TxnStripe]>,
    /// `stripes.len() - 1`; stripe count is always a power of two.
    mask: usize,
    dep_timeout: Duration,
    metrics: Arc<Metrics>,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new(Duration::from_secs(10))
    }
}

impl TxnManager {
    /// Create a manager; `dep_timeout` bounds waits on commit dependencies.
    pub fn new(dep_timeout: Duration) -> TxnManager {
        TxnManager::with_config(dep_timeout, Arc::new(Metrics::new()), DEFAULT_TXN_STRIPES)
    }

    /// Fully configured constructor. `stripes` is rounded up to a power of
    /// two; `1` reproduces the pre-striping single-table manager.
    pub fn with_config(dep_timeout: Duration, metrics: Arc<Metrics>, stripes: usize) -> TxnManager {
        let n = stripes.max(1).next_power_of_two();
        TxnManager {
            next: AtomicU64::new(1),
            stripes: (0..n)
                .map(|_| TxnStripe {
                    txns: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            mask: n - 1,
            dep_timeout,
            metrics,
        }
    }

    fn stripe(&self, txn: TxnId) -> &TxnStripe {
        &self.stripes[(txn.0 as usize) & self.mask]
    }

    /// Lock a transaction's stripe, counting contended acquisitions.
    fn lock_stripe(&self, txn: TxnId) -> MutexGuard<'_, HashMap<TxnId, TxnRecord>> {
        let stripe = self.stripe(txn);
        match stripe.txns.try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.txn_stripe_contention.inc();
                let started = Instant::now();
                let guard = stripe.txns.lock();
                self.metrics
                    .shard_acquire_nanos
                    .record(started.elapsed().as_nanos() as u64);
                guard
            }
        }
    }

    /// Start a transaction. `system` marks trigger-processing transactions.
    pub fn begin(&self, system: bool) -> TxnId {
        let id = TxnId(self.next.fetch_add(1, Ordering::Relaxed));
        self.lock_stripe(id).insert(
            id,
            TxnRecord {
                state: TxnState::Active,
                system,
                undo: Vec::new(),
                pending_deletes: Vec::new(),
                depends_on: Vec::new(),
                logged: false,
                first_lsn: None,
                commit_lsn: None,
                dirty: HashSet::new(),
                snapshot: None,
                read_barrier: None,
            },
        );
        id
    }

    /// Current state, if the transaction is known.
    pub fn state(&self, txn: TxnId) -> Option<TxnState> {
        self.lock_stripe(txn).get(&txn).map(|r| r.state)
    }

    /// Whether the transaction was started as a system transaction.
    pub fn is_system(&self, txn: TxnId) -> bool {
        self.lock_stripe(txn).get(&txn).is_some_and(|r| r.system)
    }

    /// Fail unless `txn` is active.
    pub fn require_active(&self, txn: TxnId) -> Result<()> {
        match self.state(txn) {
            Some(TxnState::Active) => Ok(()),
            _ => Err(StorageError::TxnNotActive(txn)),
        }
    }

    /// Record an undo action for `txn`.
    pub fn push_undo(&self, txn: TxnId, op: UndoOp) -> Result<()> {
        let mut txns = self.lock_stripe(txn);
        let rec = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        if rec.state != TxnState::Active {
            return Err(StorageError::TxnNotActive(txn));
        }
        rec.undo.push(op);
        Ok(())
    }

    /// Take the undo list (newest last) for rollback.
    pub fn take_undo(&self, txn: TxnId) -> Vec<UndoOp> {
        self.lock_stripe(txn)
            .get_mut(&txn)
            .map(|r| std::mem::take(&mut r.undo))
            .unwrap_or_default()
    }

    /// Record a cell tombstoned by `txn`, to be physically deleted at
    /// commit.
    pub fn note_pending_delete(&self, txn: TxnId, oid: Oid) -> Result<()> {
        let mut txns = self.lock_stripe(txn);
        let rec = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        rec.pending_deletes.push(oid);
        Ok(())
    }

    /// Drain the cells awaiting physical deletion at `txn`'s commit.
    pub fn take_pending_deletes(&self, txn: TxnId) -> Vec<Oid> {
        self.lock_stripe(txn)
            .get_mut(&txn)
            .map(|r| std::mem::take(&mut r.pending_deletes))
            .unwrap_or_default()
    }

    /// Mark that `txn` has written its WAL Begin record. Returns `true` the
    /// first time (the caller must log Begin then), `false` afterwards.
    /// `first_lsn` is a lower bound on where that Begin will land (the WAL
    /// end sampled *before* the append), recorded with the flag under the
    /// stripe lock so the checkpointer never observes a logged transaction
    /// without a first LSN.
    pub fn mark_logged(&self, txn: TxnId, first_lsn: u64) -> Result<bool> {
        let mut txns = self.lock_stripe(txn);
        let rec = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        if rec.state != TxnState::Active {
            return Err(StorageError::TxnNotActive(txn));
        }
        let first = !std::mem::replace(&mut rec.logged, true);
        if first {
            rec.first_lsn = Some(first_lsn);
        }
        Ok(first)
    }

    /// Whether `txn` has written any WAL records (false ⇒ read-only so far).
    pub fn has_logged(&self, txn: TxnId) -> bool {
        self.lock_stripe(txn).get(&txn).is_some_and(|r| r.logged)
    }

    /// Record the LSN of `txn`'s Commit record.
    pub fn set_commit_lsn(&self, txn: TxnId, lsn: u64) {
        if let Some(rec) = self.lock_stripe(txn).get_mut(&txn) {
            rec.commit_lsn = Some(lsn);
        }
    }

    /// LSN of `txn`'s Commit record, if it has been appended.
    pub fn commit_lsn(&self, txn: TxnId) -> Option<u64> {
        self.lock_stripe(txn).get(&txn).and_then(|r| r.commit_lsn)
    }

    /// Add `oid` to `txn`'s MVCC write set. Returns `true` on the first
    /// insertion — the caller must seed the object's committed value into
    /// the version store before mutating its pages.
    pub fn track_dirty(&self, txn: TxnId, oid: u64) -> Result<bool> {
        let mut txns = self.lock_stripe(txn);
        let rec = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        if rec.state != TxnState::Active {
            return Err(StorageError::TxnNotActive(txn));
        }
        Ok(rec.dirty.insert(oid))
    }

    /// Drain `txn`'s MVCC write set (for install at commit, or unpinning
    /// on abort).
    pub fn take_dirty(&self, txn: TxnId) -> Vec<u64> {
        self.lock_stripe(txn)
            .get_mut(&txn)
            .map(|r| r.dirty.drain().collect())
            .unwrap_or_default()
    }

    /// Mark `txn` as a read-only snapshot transaction: `seq` is its
    /// version-store snapshot, `barrier` the begin-time WAL read barrier.
    pub fn set_snapshot(&self, txn: TxnId, seq: u64, barrier: Option<u64>) {
        if let Some(rec) = self.lock_stripe(txn).get_mut(&txn) {
            rec.snapshot = Some(seq);
            rec.read_barrier = barrier;
        }
    }

    /// The snapshot sequence of a read-only transaction, if `txn` is one.
    pub fn snapshot_of(&self, txn: TxnId) -> Option<u64> {
        self.lock_stripe(txn).get(&txn).and_then(|r| r.snapshot)
    }

    /// The begin-time WAL read barrier of a read-only transaction.
    pub fn read_barrier_of(&self, txn: TxnId) -> Option<u64> {
        self.lock_stripe(txn).get(&txn).and_then(|r| r.read_barrier)
    }

    /// Declare that `txn` may only commit if `on` commits.
    pub fn add_dependency(&self, txn: TxnId, on: TxnId) -> Result<()> {
        let mut txns = self.lock_stripe(txn);
        let rec = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
        rec.depends_on.push(on);
        Ok(())
    }

    /// Block until every dependency of `txn` has resolved; error if any
    /// aborted. Each wait parks on the *dependency's* stripe — the one
    /// [`TxnManager::finish`] notifies.
    pub fn await_dependencies(&self, txn: TxnId) -> Result<()> {
        let deps: Vec<TxnId> = self
            .lock_stripe(txn)
            .get(&txn)
            .map(|r| r.depends_on.clone())
            .unwrap_or_default();
        for dep in deps {
            let stripe = self.stripe(dep);
            let mut txns = stripe.txns.lock();
            let start = Instant::now();
            loop {
                match txns.get(&dep).map(|r| r.state) {
                    Some(TxnState::Committed) => break,
                    Some(TxnState::Aborted) | None => {
                        return Err(StorageError::DependencyAborted { txn, on: dep });
                    }
                    Some(TxnState::Active) => {
                        if stripe
                            .cv
                            .wait_for(&mut txns, Duration::from_millis(20))
                            .timed_out()
                            && start.elapsed() >= self.dep_timeout
                        {
                            return Err(StorageError::LockTimeout(txn));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Transition to a final state and wake dependency waiters. The undo
    /// list is dropped (commit) — callers take it before aborting.
    pub fn finish(&self, txn: TxnId, state: TxnState) -> Result<()> {
        debug_assert_ne!(state, TxnState::Active);
        {
            let mut txns = self.lock_stripe(txn);
            let rec = txns.get_mut(&txn).ok_or(StorageError::TxnNotActive(txn))?;
            if rec.state != TxnState::Active {
                return Err(StorageError::TxnNotActive(txn));
            }
            rec.state = state;
            rec.undo.clear();
            rec.pending_deletes.clear();
            rec.dirty.clear();
        }
        self.stripe(txn).cv.notify_all();
        Ok(())
    }

    /// (txn id, first LSN) of every active transaction that has logged WAL
    /// records — the active-transaction table a fuzzy checkpoint records,
    /// and whose minimum first LSN bounds log truncation.
    pub fn active_logged_first_lsns(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let txns = stripe.txns.lock();
            out.extend(
                txns.iter()
                    .filter(|(_, r)| r.state == TxnState::Active && r.logged)
                    .filter_map(|(&id, r)| r.first_lsn.map(|lsn| (id.0, lsn))),
            );
        }
        out
    }

    /// Ids of all currently active transactions.
    pub fn active(&self) -> Vec<TxnId> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let txns = stripe.txns.lock();
            out.extend(
                txns.iter()
                    .filter(|(_, r)| r.state == TxnState::Active)
                    .map(|(&id, _)| id),
            );
        }
        out
    }

    /// Drop finished-transaction records older than the newest `keep`
    /// (dependency checks only ever look back a short window).
    pub fn prune(&self, keep: usize) {
        let mut total = 0;
        let mut finished: Vec<TxnId> = Vec::new();
        for stripe in self.stripes.iter() {
            let txns = stripe.txns.lock();
            total += txns.len();
            finished.extend(
                txns.iter()
                    .filter(|(_, r)| r.state != TxnState::Active)
                    .map(|(&id, _)| id),
            );
        }
        if total <= keep {
            return;
        }
        finished.sort_unstable();
        let excess = total.saturating_sub(keep);
        for id in finished.into_iter().take(excess) {
            self.stripe(id).txns.lock().remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn begin_assigns_unique_ids() {
        let tm = TxnManager::default();
        let a = tm.begin(false);
        let b = tm.begin(true);
        assert_ne!(a, b);
        assert!(!tm.is_system(a));
        assert!(tm.is_system(b));
        assert_eq!(tm.state(a), Some(TxnState::Active));
    }

    #[test]
    fn finish_transitions_once() {
        let tm = TxnManager::default();
        let t = tm.begin(false);
        tm.finish(t, TxnState::Committed).unwrap();
        assert_eq!(tm.state(t), Some(TxnState::Committed));
        assert!(tm.finish(t, TxnState::Aborted).is_err());
    }

    #[test]
    fn undo_list_roundtrip() {
        let tm = TxnManager::default();
        let t = tm.begin(false);
        tm.push_undo(t, UndoOp::UndoInsert { page: 1, slot: 2 })
            .unwrap();
        tm.push_undo(
            t,
            UndoOp::UndoUpdate {
                page: 1,
                slot: 2,
                before: vec![9],
            },
        )
        .unwrap();
        let undo = tm.take_undo(t);
        assert_eq!(undo.len(), 2);
        assert!(tm.take_undo(t).is_empty());
    }

    #[test]
    fn push_undo_rejects_finished_txn() {
        let tm = TxnManager::default();
        let t = tm.begin(false);
        tm.finish(t, TxnState::Committed).unwrap();
        assert!(tm
            .push_undo(t, UndoOp::UndoInsert { page: 1, slot: 0 })
            .is_err());
    }

    #[test]
    fn dependency_on_committed_passes() {
        let tm = TxnManager::default();
        let a = tm.begin(false);
        tm.finish(a, TxnState::Committed).unwrap();
        let b = tm.begin(true);
        tm.add_dependency(b, a).unwrap();
        tm.await_dependencies(b).unwrap();
    }

    #[test]
    fn dependency_on_aborted_fails() {
        let tm = TxnManager::default();
        let a = tm.begin(false);
        tm.finish(a, TxnState::Aborted).unwrap();
        let b = tm.begin(true);
        tm.add_dependency(b, a).unwrap();
        assert!(matches!(
            tm.await_dependencies(b),
            Err(StorageError::DependencyAborted { .. })
        ));
    }

    #[test]
    fn dependency_waits_for_resolution() {
        let tm = Arc::new(TxnManager::default());
        let a = tm.begin(false);
        let b = tm.begin(true);
        tm.add_dependency(b, a).unwrap();
        let tm2 = Arc::clone(&tm);
        let handle = std::thread::spawn(move || tm2.await_dependencies(b));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished());
        tm.finish(a, TxnState::Committed).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn dependency_waits_across_stripes() {
        // Dependency resolution must work when txn and dependency live in
        // different stripes (ids differ in the low bits).
        let tm = Arc::new(TxnManager::with_config(
            Duration::from_secs(10),
            Arc::new(Metrics::new()),
            8,
        ));
        let mut a = tm.begin(false);
        let mut b = tm.begin(true);
        // Burn ids until the two ids differ in stripe.
        while (a.0 as usize & 7) == (b.0 as usize & 7) {
            a = b;
            b = tm.begin(true);
        }
        tm.add_dependency(b, a).unwrap();
        let tm2 = Arc::clone(&tm);
        let handle = std::thread::spawn(move || tm2.await_dependencies(b));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished());
        tm.finish(a, TxnState::Committed).unwrap();
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn mark_logged_fires_once() {
        let tm = TxnManager::default();
        let t = tm.begin(false);
        assert!(!tm.has_logged(t));
        assert!(tm.mark_logged(t, 17).unwrap());
        assert!(!tm.mark_logged(t, 99).unwrap());
        assert!(tm.has_logged(t));
        // The first LSN is pinned by the first call; later calls are no-ops.
        assert_eq!(tm.active_logged_first_lsns(), vec![(t.0, 17)]);
        assert_eq!(tm.commit_lsn(t), None);
        tm.set_commit_lsn(t, 42);
        assert_eq!(tm.commit_lsn(t), Some(42));
    }

    #[test]
    fn active_logged_first_lsns_skips_readers_and_finished() {
        let tm = TxnManager::default();
        let reader = tm.begin(false);
        let writer = tm.begin(false);
        let done = tm.begin(false);
        tm.mark_logged(writer, 5).unwrap();
        tm.mark_logged(done, 3).unwrap();
        tm.finish(done, TxnState::Committed).unwrap();
        let _ = reader; // never logged
        assert_eq!(tm.active_logged_first_lsns(), vec![(writer.0, 5)]);
    }

    #[test]
    fn dirty_set_dedupes_and_drains() {
        let tm = TxnManager::default();
        let t = tm.begin(false);
        assert!(tm.track_dirty(t, 7).unwrap());
        assert!(!tm.track_dirty(t, 7).unwrap());
        assert!(tm.track_dirty(t, 9).unwrap());
        let mut dirty = tm.take_dirty(t);
        dirty.sort_unstable();
        assert_eq!(dirty, vec![7, 9]);
        assert!(tm.take_dirty(t).is_empty());
        tm.finish(t, TxnState::Committed).unwrap();
        assert!(tm.track_dirty(t, 1).is_err());
    }

    #[test]
    fn snapshot_fields_roundtrip() {
        let tm = TxnManager::default();
        let t = tm.begin(false);
        assert_eq!(tm.snapshot_of(t), None);
        tm.set_snapshot(t, 5, Some(99));
        assert_eq!(tm.snapshot_of(t), Some(5));
        assert_eq!(tm.read_barrier_of(t), Some(99));
    }

    #[test]
    fn active_lists_only_active() {
        let tm = TxnManager::default();
        let a = tm.begin(false);
        let b = tm.begin(false);
        tm.finish(a, TxnState::Committed).unwrap();
        assert_eq!(tm.active(), vec![b]);
    }

    #[test]
    fn prune_keeps_active() {
        let tm = TxnManager::default();
        let keep_me = tm.begin(false);
        for _ in 0..100 {
            let t = tm.begin(false);
            tm.finish(t, TxnState::Committed).unwrap();
        }
        tm.prune(10);
        assert_eq!(tm.state(keep_me), Some(TxnState::Active));
    }
}
