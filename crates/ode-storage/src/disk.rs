//! File-backed page storage — the EOS stand-in's lowest layer.
//!
//! A database file is a flat array of [`PAGE_SIZE`] pages. Page 0 is the
//! database header (magic, format version, checkpoint counter); data pages
//! start at 1. All access goes through the buffer pool; this module only
//! knows how to read, write, and extend the file.

use crate::error::{Result, StorageError};
use crate::fault::{FaultFile, FaultInjector};
use crate::oid::PageId;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::OpenOptions;
use std::io::SeekFrom;
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"ODEDB\0\x01\x00";

/// The on-disk database header living in page 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbHeader {
    /// Number of pages in the file, including the header page.
    pub page_count: u32,
    /// Monotonic checkpoint counter; bumped on every checkpoint.
    pub checkpoint_seq: u64,
    /// Whether the database was closed cleanly (checkpointed, log empty).
    pub clean_shutdown: bool,
}

impl DbHeader {
    fn to_page(self) -> Page {
        let mut bytes = [0u8; PAGE_SIZE];
        bytes[0..8].copy_from_slice(MAGIC);
        bytes[8..12].copy_from_slice(&self.page_count.to_le_bytes());
        bytes[12..20].copy_from_slice(&self.checkpoint_seq.to_le_bytes());
        bytes[20] = u8::from(self.clean_shutdown);
        Page::from_bytes(&bytes)
    }

    fn from_page(page: &Page) -> Result<DbHeader> {
        let bytes = page.as_bytes();
        if &bytes[0..8] != MAGIC {
            return Err(StorageError::Corrupt("bad magic in header page".into()));
        }
        Ok(DbHeader {
            page_count: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            checkpoint_seq: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
            clean_shutdown: bytes[20] == 1,
        })
    }
}

/// A page file on disk.
pub struct DiskFile {
    file: Mutex<FaultFile>,
    /// Cached page count (authoritative: kept in sync with the header).
    page_count: Mutex<u32>,
}

impl DiskFile {
    /// Create a brand-new database file (fails if it exists with content).
    pub fn create(path: &Path) -> Result<DiskFile> {
        DiskFile::create_with(path, None)
    }

    /// Create, routing writes/fsyncs through an optional fault injector.
    pub fn create_with(path: &Path, injector: Option<Arc<FaultInjector>>) -> Result<DiskFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let disk = DiskFile {
            file: Mutex::new(FaultFile::new(file, injector)),
            page_count: Mutex::new(1),
        };
        disk.write_header(DbHeader {
            page_count: 1,
            checkpoint_seq: 0,
            clean_shutdown: true,
        })?;
        Ok(disk)
    }

    /// Open an existing database file.
    pub fn open(path: &Path) -> Result<DiskFile> {
        DiskFile::open_with(path, None)
    }

    /// Open, routing writes/fsyncs through an optional fault injector.
    pub fn open_with(path: &Path, injector: Option<Arc<FaultInjector>>) -> Result<DiskFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut file = FaultFile::new(file, injector);
        let len = file.seek(SeekFrom::End(0))?;
        if len < PAGE_SIZE as u64 || len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is not a whole number of pages"
            )));
        }
        let disk = DiskFile {
            file: Mutex::new(file),
            page_count: Mutex::new(0),
        };
        let header = disk.read_header_raw()?;
        let physical = (len / PAGE_SIZE as u64) as u32;
        // A crash can leave pages allocated after the last checkpoint, so
        // the file may legitimately be longer than the header records; the
        // physical length is the truth. Shorter than the header is real
        // corruption (truncated file).
        if header.page_count > physical {
            return Err(StorageError::Corrupt(format!(
                "header page_count {} exceeds file length {len}",
                header.page_count
            )));
        }
        *disk.page_count.lock() = physical;
        Ok(disk)
    }

    fn read_header_raw(&self) -> Result<DbHeader> {
        let page = self.read_page_internal(0)?;
        DbHeader::from_page(&page)
    }

    /// Read the database header.
    pub fn read_header(&self) -> Result<DbHeader> {
        self.read_header_raw()
    }

    /// Overwrite the database header.
    pub fn write_header(&self, header: DbHeader) -> Result<()> {
        *self.page_count.lock() = header.page_count;
        self.write_page(0, &header.to_page())
    }

    fn read_page_internal(&self, id: PageId) -> Result<Page> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_exact(&mut buf)?;
        Ok(Page::from_bytes(&buf))
    }

    /// Read a data page.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        if id >= *self.page_count.lock() {
            return Err(StorageError::NoSuchPage(id));
        }
        self.read_page_internal(id)
    }

    /// Write a page image at its position (extends the file if needed).
    pub fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(page.as_bytes())?;
        Ok(())
    }

    /// Append a fresh page and return its id. The header's page_count is
    /// updated lazily (at checkpoint), so the in-memory counter is the
    /// authority while running.
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut count = self.page_count.lock();
        let id = *count;
        *count += 1;
        // Materialise the page so the file length always covers page_count.
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(Page::new().as_bytes())?;
        Ok(id)
    }

    /// Ensure the file contains at least `count` pages (used by recovery).
    pub fn ensure_pages(&self, count: u32) -> Result<()> {
        while *self.page_count.lock() < count {
            self.allocate_page()?;
        }
        Ok(())
    }

    /// Current page count including the header page.
    pub fn page_count(&self) -> u32 {
        *self.page_count.lock()
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    #[test]
    fn create_open_roundtrip() {
        let dir = TempDir::new("disk");
        let path = dir.file("db");
        {
            let d = DiskFile::create(&path).unwrap();
            let p1 = d.allocate_page().unwrap();
            assert_eq!(p1, 1);
            let mut page = Page::new();
            page.insert(b"on disk").unwrap();
            d.write_page(p1, &page).unwrap();
            let mut h = d.read_header().unwrap();
            h.page_count = d.page_count();
            d.write_header(h).unwrap();
        }
        {
            let d = DiskFile::open(&path).unwrap();
            assert_eq!(d.page_count(), 2);
            let page = d.read_page(1).unwrap();
            assert_eq!(page.read(0).unwrap(), b"on disk");
        }
    }

    #[test]
    fn open_missing_file_fails() {
        let dir = TempDir::new("disk");
        assert!(DiskFile::open(&dir.file("nope")).is_err());
    }

    #[test]
    fn open_garbage_fails() {
        let dir = TempDir::new("disk");
        let path = dir.file("garbage");
        std::fs::write(&path, vec![0xAB; PAGE_SIZE]).unwrap();
        assert!(matches!(
            DiskFile::open(&path),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_file_fails() {
        let dir = TempDir::new("disk");
        let path = dir.file("short");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(
            DiskFile::open(&path),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn read_past_end_fails() {
        let dir = TempDir::new("disk");
        let d = DiskFile::create(&dir.file("db")).unwrap();
        assert!(matches!(d.read_page(5), Err(StorageError::NoSuchPage(5))));
    }

    #[test]
    fn header_roundtrip() {
        let dir = TempDir::new("disk");
        let d = DiskFile::create(&dir.file("db")).unwrap();
        let h = DbHeader {
            page_count: 1,
            checkpoint_seq: 9,
            clean_shutdown: false,
        };
        d.write_header(h).unwrap();
        assert_eq!(d.read_header().unwrap(), h);
    }
}
