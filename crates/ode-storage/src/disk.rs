//! File-backed page storage — the EOS stand-in's lowest layer.
//!
//! A database file is a flat array of [`PAGE_SIZE`] pages. Page 0 is the
//! database header (magic, format version, checkpoint counter); data pages
//! start at 1. All access goes through the buffer pool; this module only
//! knows how to read, write, and extend the file.
//!
//! ## Torn-page protection (doublewrite)
//!
//! Once the buffer pool steals dirty frames and the WAL is truncated
//! behind the checkpoint horizon, replay can no longer rebuild an
//! arbitrary page from log start — a page write torn mid-frame would be
//! unrecoverable. Every in-place page write therefore first appends the
//! full image to a sidecar doublewrite journal (`<db>.dw`): a torn
//! journal frame is ignored (the in-place write never started), a torn
//! in-place write is repaired at open from the journal's complete frame.
//! The journal is truncated at each checkpoint.

use crate::error::{Result, StorageError};
use crate::fault::{FaultFile, FaultInjector};
use crate::oid::PageId;
use crate::page::{Page, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::OpenOptions;
use std::io::SeekFrom;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: &[u8; 8] = b"ODEDB\0\x01\x00";

/// The on-disk database header living in page 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbHeader {
    /// Number of pages in the file, including the header page.
    pub page_count: u32,
    /// Monotonic checkpoint counter; bumped on every checkpoint.
    pub checkpoint_seq: u64,
    /// Whether the database was closed cleanly (checkpointed, log empty).
    pub clean_shutdown: bool,
}

impl DbHeader {
    fn to_page(self) -> Page {
        let mut bytes = [0u8; PAGE_SIZE];
        bytes[0..8].copy_from_slice(MAGIC);
        bytes[8..12].copy_from_slice(&self.page_count.to_le_bytes());
        bytes[12..20].copy_from_slice(&self.checkpoint_seq.to_le_bytes());
        bytes[20] = u8::from(self.clean_shutdown);
        Page::from_bytes(&bytes)
    }

    fn from_page(page: &Page) -> Result<DbHeader> {
        let bytes = page.as_bytes();
        if &bytes[0..8] != MAGIC {
            return Err(StorageError::Corrupt("bad magic in header page".into()));
        }
        Ok(DbHeader {
            page_count: u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
            checkpoint_seq: u64::from_le_bytes(bytes[12..20].try_into().unwrap()),
            clean_shutdown: bytes[20] == 1,
        })
    }
}

/// Checksum over a doublewrite frame's page image (same FNV-1a the WAL
/// uses for its frames).
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Bytes per doublewrite journal frame: page id + checksum + image.
const DW_FRAME: usize = 8 + PAGE_SIZE;

fn dw_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".dw");
    PathBuf::from(os)
}

/// A page file on disk.
pub struct DiskFile {
    file: Mutex<FaultFile>,
    /// Cached page count (authoritative: kept in sync with the header).
    page_count: Mutex<u32>,
    /// Doublewrite journal. Held across the journal append *and* the
    /// in-place write so a checkpoint's journal truncation can never race
    /// between the two halves of a steal's write-back.
    dw: Mutex<FaultFile>,
}

impl DiskFile {
    /// Create a brand-new database file (fails if it exists with content).
    pub fn create(path: &Path) -> Result<DiskFile> {
        DiskFile::create_with(path, None)
    }

    /// Create, routing writes/fsyncs through an optional fault injector.
    pub fn create_with(path: &Path, injector: Option<Arc<FaultInjector>>) -> Result<DiskFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let dw = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dw_path(path))?;
        let disk = DiskFile {
            file: Mutex::new(FaultFile::new(file, injector.clone())),
            page_count: Mutex::new(1),
            dw: Mutex::new(FaultFile::new(dw, injector)),
        };
        disk.write_header(DbHeader {
            page_count: 1,
            checkpoint_seq: 0,
            clean_shutdown: true,
        })?;
        Ok(disk)
    }

    /// Open an existing database file.
    pub fn open(path: &Path) -> Result<DiskFile> {
        DiskFile::open_with(path, None)
    }

    /// Open, routing writes/fsyncs through an optional fault injector.
    /// Repairs torn in-place page writes from the doublewrite journal and
    /// truncates a torn tail page (a crash mid-extension) before any
    /// validation.
    pub fn open_with(path: &Path, injector: Option<Arc<FaultInjector>>) -> Result<DiskFile> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut file = FaultFile::new(file, injector.clone());
        let dw = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            // Keep existing journal frames: they are replayed just below.
            .truncate(false)
            .open(dw_path(path))?;
        let mut dw = FaultFile::new(dw, injector);
        // Replay every complete doublewrite frame in order: page images
        // are idempotent, so re-applying ones whose in-place write did
        // succeed is harmless.
        dw.seek(SeekFrom::Start(0))?;
        let mut journal = Vec::new();
        dw.read_to_end(&mut journal)?;
        let mut cursor = &journal[..];
        while cursor.len() >= DW_FRAME {
            let id = u32::from_le_bytes(cursor[0..4].try_into().unwrap());
            let sum = u32::from_le_bytes(cursor[4..8].try_into().unwrap());
            let image = &cursor[8..DW_FRAME];
            if fnv1a(image) != sum {
                break; // torn journal tail: its in-place write never began
            }
            file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
            file.write_all(image)?;
            cursor = &cursor[DW_FRAME..];
        }
        dw.set_len(0)?;
        dw.seek(SeekFrom::Start(0))?;
        // A crash while extending the file can leave a torn tail page;
        // drop it (its contents were never acknowledged anywhere).
        let len = file.seek(SeekFrom::End(0))?;
        let whole = len - len % PAGE_SIZE as u64;
        if whole < len {
            file.set_len(whole)?;
        }
        if whole < PAGE_SIZE as u64 {
            return Err(StorageError::Corrupt(format!(
                "file length {len} is shorter than the header page"
            )));
        }
        let disk = DiskFile {
            file: Mutex::new(file),
            page_count: Mutex::new(0),
            dw: Mutex::new(dw),
        };
        let header = disk.read_header_raw()?;
        let physical = (whole / PAGE_SIZE as u64) as u32;
        // A crash can leave pages allocated after the last checkpoint, so
        // the file may legitimately be longer than the header records; the
        // physical length is the truth. Shorter than the header is real
        // corruption (truncated file).
        if header.page_count > physical {
            return Err(StorageError::Corrupt(format!(
                "header page_count {} exceeds file length {len}",
                header.page_count
            )));
        }
        *disk.page_count.lock() = physical;
        Ok(disk)
    }

    fn read_header_raw(&self) -> Result<DbHeader> {
        let page = self.read_page_internal(0)?;
        DbHeader::from_page(&page)
    }

    /// Read the database header.
    pub fn read_header(&self) -> Result<DbHeader> {
        self.read_header_raw()
    }

    /// Overwrite the database header.
    pub fn write_header(&self, header: DbHeader) -> Result<()> {
        *self.page_count.lock() = header.page_count;
        self.write_page(0, &header.to_page())
    }

    fn read_page_internal(&self, id: PageId) -> Result<Page> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        let mut buf = vec![0u8; PAGE_SIZE];
        file.read_exact(&mut buf)?;
        Ok(Page::from_bytes(&buf))
    }

    /// Read a data page.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        if id >= *self.page_count.lock() {
            return Err(StorageError::NoSuchPage(id));
        }
        self.read_page_internal(id)
    }

    /// Write a page image at its position (extends the file if needed),
    /// journaling the full image to the doublewrite file first so a torn
    /// in-place write is repairable at the next open.
    pub fn write_page(&self, id: PageId, page: &Page) -> Result<()> {
        let mut dw = self.dw.lock();
        dw.seek(SeekFrom::End(0))?;
        dw.write_all(&id.to_le_bytes())?;
        dw.write_all(&fnv1a(page.as_bytes()).to_le_bytes())?;
        dw.write_all(page.as_bytes())?;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(page.as_bytes())?;
        Ok(())
    }

    /// Truncate the doublewrite journal — only safe when every journaled
    /// in-place write has landed (checkpoint end, after the data fsync).
    pub fn dw_reset(&self) -> Result<()> {
        let mut dw = self.dw.lock();
        dw.set_len(0)?;
        dw.seek(SeekFrom::Start(0))?;
        Ok(())
    }

    /// Flush the doublewrite journal to stable storage.
    pub fn sync_dw(&self) -> Result<()> {
        self.dw.lock().sync_data()?;
        Ok(())
    }

    /// Append a fresh page and return its id. The header's page_count is
    /// updated lazily (at checkpoint), so the in-memory counter is the
    /// authority while running.
    pub fn allocate_page(&self) -> Result<PageId> {
        let mut count = self.page_count.lock();
        let id = *count;
        *count += 1;
        // Materialise the page so the file length always covers page_count.
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(Page::new().as_bytes())?;
        Ok(id)
    }

    /// Ensure the file contains at least `count` pages (used by recovery).
    pub fn ensure_pages(&self, count: u32) -> Result<()> {
        while *self.page_count.lock() < count {
            self.allocate_page()?;
        }
        Ok(())
    }

    /// Current page count including the header page.
    pub fn page_count(&self) -> u32 {
        *self.page_count.lock()
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    #[test]
    fn create_open_roundtrip() {
        let dir = TempDir::new("disk");
        let path = dir.file("db");
        {
            let d = DiskFile::create(&path).unwrap();
            let p1 = d.allocate_page().unwrap();
            assert_eq!(p1, 1);
            let mut page = Page::new();
            page.insert(b"on disk").unwrap();
            d.write_page(p1, &page).unwrap();
            let mut h = d.read_header().unwrap();
            h.page_count = d.page_count();
            d.write_header(h).unwrap();
        }
        {
            let d = DiskFile::open(&path).unwrap();
            assert_eq!(d.page_count(), 2);
            let page = d.read_page(1).unwrap();
            assert_eq!(page.read(0).unwrap(), b"on disk");
        }
    }

    #[test]
    fn open_missing_file_fails() {
        let dir = TempDir::new("disk");
        assert!(DiskFile::open(&dir.file("nope")).is_err());
    }

    #[test]
    fn open_garbage_fails() {
        let dir = TempDir::new("disk");
        let path = dir.file("garbage");
        std::fs::write(&path, vec![0xAB; PAGE_SIZE]).unwrap();
        assert!(matches!(
            DiskFile::open(&path),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_file_fails() {
        let dir = TempDir::new("disk");
        let path = dir.file("short");
        std::fs::write(&path, vec![0u8; 100]).unwrap();
        assert!(matches!(
            DiskFile::open(&path),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn read_past_end_fails() {
        let dir = TempDir::new("disk");
        let d = DiskFile::create(&dir.file("db")).unwrap();
        assert!(matches!(d.read_page(5), Err(StorageError::NoSuchPage(5))));
    }

    #[test]
    fn torn_tail_page_is_dropped_at_open() {
        let dir = TempDir::new("disk");
        let path = dir.file("db");
        {
            let d = DiskFile::create(&path).unwrap();
            d.allocate_page().unwrap();
        }
        // Crash mid-extension: half a page of garbage past the last page.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&vec![0xCD; PAGE_SIZE / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let d = DiskFile::open(&path).unwrap();
        assert_eq!(d.page_count(), 2);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            2 * PAGE_SIZE as u64
        );
    }

    #[test]
    fn doublewrite_repairs_torn_page_write() {
        let dir = TempDir::new("disk");
        let path = dir.file("db");
        let mut good = Page::new();
        good.insert(b"committed image").unwrap();
        {
            let d = DiskFile::create(&path).unwrap();
            let p1 = d.allocate_page().unwrap();
            d.write_page(p1, &good).unwrap();
        }
        // Tear the in-place copy of page 1 (its doublewrite frame is
        // intact in the journal, as after a crash mid write-back).
        let mut bytes = std::fs::read(&path).unwrap();
        for b in &mut bytes[PAGE_SIZE..PAGE_SIZE + 64] {
            *b = 0xEE;
        }
        std::fs::write(&path, &bytes).unwrap();
        let d = DiskFile::open(&path).unwrap();
        assert_eq!(d.read_page(1).unwrap().as_bytes(), good.as_bytes());
        // The journal was drained by the repair.
        assert_eq!(std::fs::metadata(dw_path(&path)).unwrap().len(), 0);
    }

    #[test]
    fn torn_doublewrite_frame_is_ignored() {
        let dir = TempDir::new("disk");
        let path = dir.file("db");
        let mut good = Page::new();
        good.insert(b"v1").unwrap();
        {
            let d = DiskFile::create(&path).unwrap();
            let p1 = d.allocate_page().unwrap();
            d.write_page(p1, &good).unwrap();
            d.dw_reset().unwrap();
        }
        // A torn journal append (crash before the in-place write began):
        // half a frame of garbage must not clobber the good page.
        let mut frame = vec![1u8, 0, 0, 0, 9, 9, 9, 9];
        frame.extend_from_slice(&vec![0xAB; PAGE_SIZE / 3]);
        std::fs::write(dw_path(&path), &frame).unwrap();
        let d = DiskFile::open(&path).unwrap();
        assert_eq!(d.read_page(1).unwrap().as_bytes(), good.as_bytes());
    }

    #[test]
    fn header_roundtrip() {
        let dir = TempDir::new("disk");
        let d = DiskFile::create(&dir.file("db")).unwrap();
        let h = DbHeader {
            page_count: 1,
            checkpoint_seq: 9,
            clean_shutdown: false,
        };
        d.write_header(h).unwrap();
        assert_eq!(d.read_header().unwrap(), h);
    }
}
