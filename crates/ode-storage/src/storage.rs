//! The transactional object heap — the facade of the storage substrate.
//!
//! [`Storage`] plays the role of the paper's *storage manager* layer: "the
//! object manager is built on top of a storage manager which provides much
//! of the required database functionality such as locking, logging,
//! transactions" (§2). One implementation serves both the EOS-like
//! disk-backed engine and the Dali-like main-memory engine; they differ
//! only in the page store behind the same run-time, exactly as Ode and
//! MM-Ode "share a great deal of run-time system code" (§5.6).
//!
//! Capabilities:
//! * `pnew`/`pdelete`-style allocation of byte records identified by stable
//!   [`Oid`]s, grouped into clusters (one cluster per class, like O++).
//! * Strict 2PL via the [`LockManager`]; shared locks for reads, exclusive
//!   for writes, with deadlock detection.
//! * Rollback via in-memory undo (each step also logged, compensation
//!   style); durability via the WAL with repeat-history recovery — redo
//!   in log order from the last complete checkpoint, gated on each page's
//!   LSN so stolen pages never double-apply, then roll back in-flight
//!   losers from before-images. The buffer pool steals dirty frames under
//!   the WAL-before-data rule, and fuzzy incremental checkpoints (dirty-
//!   page table + active-transaction table in the log) truncate the WAL
//!   behind `min(rec_lsn)` without quiescing writers.
//! * Named roots and a persistent cluster counter for bootstrapping.
//! * Commit dependencies and system transactions for trigger coupling
//!   modes (§5.5).
//!
//! Record representation inside pages (first byte of every cell):
//!
//! | tag | meaning                                    |
//! |-----|--------------------------------------------|
//! | 0   | primary inline data                        |
//! | 1   | forward stub → Oid of the moved record     |
//! | 2   | primary overflow head (len, chunk Oids)    |
//! | 3   | moved inline data (forward target)         |
//! | 4   | overflow chunk                             |
//! | 5   | moved overflow head                        |
//!
//! Cluster scans enumerate primaries (tags 0, 1, 2) so an object is always
//! reported under its original, stable Oid.

use crate::buffer::{BufferPool, PoolStats};
use crate::codec::{decode_all, encode_to_vec, Decode, Encode};
use crate::disk::DiskFile;
use crate::error::{Result, StorageError};
use crate::fault::FaultInjector;
use crate::lock::{LockKey, LockManager, LockMode, LockStats};
use crate::mem::MemStore;
use crate::oid::{ClusterId, Oid, PageId, FIRST_USER_CLUSTER, SYSTEM_CLUSTER, UNASSIGNED_CLUSTER};
use crate::page::{Page, PageOpError, MAX_RECORD};
use crate::txn::{TxnId, TxnManager, TxnState, UndoOp};
use crate::version::{SnapshotLookup, VersionStats, VersionStore};
use crate::wal::{LogRecord, Wal};
use bytes::{BufMut, BytesMut};
use ode_obs::{Metrics, TraceEvent};
use parking_lot::Mutex;
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TAG_DATA: u8 = 0;
const TAG_FORWARD: u8 = 1;
const TAG_OVF_HEAD: u8 = 2;
const TAG_MOVED_DATA: u8 = 3;
const TAG_OVF_CHUNK: u8 = 4;
const TAG_MOVED_OVF_HEAD: u8 = 5;
/// A cell deleted by a still-active transaction. The slot and bytes stay
/// reserved (invisible to reads, allocation, and scans) until the deleting
/// transaction commits and physically removes the cell — or aborts and
/// restores the original tag. Releasing them earlier would let a concurrent
/// insert claim the slot, making the delete impossible to undo and handing
/// the object's Oid to an unrelated record. Tombstones appear in the WAL
/// (the tombstoning is logged like any cell update, and replay repeats it
/// transiently) but never in checkpoints: the committing transaction
/// physically purges its tombstones before it leaves the active set, and
/// checkpoints require quiescence.
const TAG_TOMBSTONE: u8 = 6;

/// Max payload bytes in one inline cell (tag byte subtracted).
const MAX_INLINE: usize = MAX_RECORD - 1;

/// A page is considered to "have space" while this many bytes are free.
const SPACE_THRESHOLD: usize = 32;

/// The roots directory is always the very first object allocated.
pub const ROOTS_OID: Oid = Oid::new(1, 0);

/// Which page store backs the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// EOS-like: disk pages behind a buffer pool, WAL durability.
    Disk,
    /// Dali-like: main-memory pages; durable via checkpoint + WAL when
    /// opened with a directory, fully volatile otherwise.
    Memory,
}

/// Tuning and policy knobs.
#[derive(Debug, Clone)]
pub struct StorageOptions {
    /// Engine selection.
    pub engine: EngineKind,
    /// Buffer pool capacity in frames (disk engine only).
    pub buffer_pages: usize,
    /// Whether commits fsync the WAL.
    pub fsync: bool,
    /// Lock-wait safety-net timeout.
    pub lock_timeout: Duration,
    /// Auto-checkpoint after this many commits (0 = only at close).
    /// On the disk engine the commit-path checkpoint is fuzzy (no
    /// quiescence, log truncated incrementally); the memory engine still
    /// checkpoints opportunistically when quiesced.
    pub checkpoint_every: u64,
    /// Run a background thread that takes a fuzzy checkpoint every
    /// interval (disk engine only). `None` disables the thread; commits
    /// and trigger firings proceed concurrently with the checkpointer.
    pub checkpoint_interval: Option<Duration>,
    /// Batch concurrent commits into one WAL write+fsync (leader/follower).
    /// Disable to get the per-commit-flush baseline for benchmarking.
    pub group_commit: bool,
    /// Fault injector routed through the WAL and data files (crash tests).
    pub fault: Option<Arc<FaultInjector>>,
    /// Concurrency-core shard count for the buffer pool, allocator, and
    /// transaction table (rounded to a power of two; the buffer pool also
    /// clamps to `buffer_pages`). `1` reproduces the old single-mutex
    /// behavior and is the bench baseline.
    pub shards: usize,
    /// Lock-table stripe count (rounded up to a power of two). `1`
    /// reproduces the old single-table lock manager.
    pub lock_stripes: usize,
    /// Slow-statement threshold. When set, every session statement is
    /// traced and any statement slower than this many microseconds has
    /// its full span tree written to the slow log (stderr) and counted
    /// in `ode_slow_statements`. `None` (the default) disables the slow
    /// log and leaves tracing opt-in per session.
    pub slow_statement_micros: Option<u64>,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            engine: EngineKind::Disk,
            buffer_pages: 256,
            fsync: false,
            lock_timeout: Duration::from_secs(10),
            checkpoint_every: 0,
            checkpoint_interval: None,
            group_commit: true,
            fault: None,
            shards: crate::buffer::DEFAULT_POOL_SHARDS,
            lock_stripes: crate::lock::DEFAULT_LOCK_STRIPES,
            slow_statement_micros: None,
        }
    }
}

impl StorageOptions {
    /// Defaults with the main-memory engine selected.
    pub fn memory() -> StorageOptions {
        StorageOptions {
            engine: EngineKind::Memory,
            ..StorageOptions::default()
        }
    }
}

enum Store {
    Disk(Arc<BufferPool>),
    Mem(MemStore),
}

impl Store {
    fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        match self {
            Store::Disk(pool) => pool.with_page(id, f),
            Store::Mem(mem) => mem.with_page(id, f),
        }
    }

    fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        match self {
            Store::Disk(pool) => pool.with_page_mut(id, f),
            Store::Mem(mem) => mem.with_page_mut(id, f),
        }
    }

    fn allocate_page(&self) -> Result<PageId> {
        match self {
            Store::Disk(pool) => pool.allocate_page(),
            Store::Mem(mem) => mem.allocate_page(),
        }
    }

    fn ensure_pages(&self, count: u32) -> Result<()> {
        match self {
            Store::Disk(pool) => pool.disk().ensure_pages(count),
            Store::Mem(mem) => mem.ensure_pages(count),
        }
    }

    fn page_count(&self) -> u32 {
        match self {
            Store::Disk(pool) => pool.page_count(),
            Store::Mem(mem) => mem.page_count(),
        }
    }
}

/// Pages pulled from the store in one batch when every allocator shard is
/// out of reusable pages (the shards' "refill" from global growth).
const ALLOC_REFILL_BATCH: usize = 4;

/// Cold-path allocation directory shared by all shards, rebuilt from page
/// tags at open. Only touched when a page changes cluster membership or a
/// cluster is scanned.
#[derive(Default)]
struct AllocGlobal {
    /// All pages belonging to each cluster.
    cluster_pages: HashMap<ClusterId, BTreeSet<PageId>>,
}

/// One shard of the allocation directory; a page's shard is fixed by its
/// id, so `note_space` and the `pick_page` fast path touch one shard mutex
/// instead of a process-wide one.
#[derive(Default)]
struct AllocShard {
    /// Pages per cluster believed to have usable space (this shard only).
    with_space: HashMap<ClusterId, BTreeSet<PageId>>,
    /// Pages not yet assigned to any cluster (this shard only).
    unassigned: BTreeSet<PageId>,
}

/// Serialized contents of the roots directory object.
struct RootsRecord {
    next_cluster: ClusterId,
    roots: Vec<(String, Oid)>,
}

impl Encode for RootsRecord {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.next_cluster);
        self.roots.encode(buf);
    }
}

impl Decode for RootsRecord {
    fn decode(buf: &mut &[u8]) -> Result<RootsRecord> {
        Ok(RootsRecord {
            next_cluster: ClusterId::decode(buf)?,
            roots: Vec::<(String, Oid)>::decode(buf)?,
        })
    }
}

/// Receipt from [`Storage::commit_deferred`]: the durability target the
/// commit must reach before it may be acknowledged. `lsn` is `None` for
/// read-only transactions (nothing to flush) and WAL-less stores; a
/// read-only transaction that overlapped not-yet-durable writers instead
/// carries the log tail it observed in `read_barrier`, which
/// [`Storage::commit_wait`] waits on so an acknowledged read never
/// exposes state recovery could discard.
#[derive(Debug, Clone, Copy)]
#[must_use = "a deferred commit is not durable until commit_wait succeeds"]
pub struct CommitTicket {
    txn: TxnId,
    lsn: Option<u64>,
    read_barrier: Option<u64>,
}

impl CommitTicket {
    /// LSN of the Commit record, if one was written.
    pub fn lsn(&self) -> Option<u64> {
        self.lsn
    }

    /// The committing transaction.
    pub fn txn(&self) -> TxnId {
        self.txn
    }
}

/// The transactional object heap. See module docs.
pub struct Storage {
    store: Store,
    wal: Option<Arc<Wal>>,
    locks: LockManager,
    txns: Arc<TxnManager>,
    /// Per-object committed version chains serving MVCC snapshot readers
    /// (see [`crate::version`]): read-only transactions resolve every read
    /// here or from quiescent pages, never through the lock manager.
    versions: VersionStore,
    alloc_shards: Box<[Mutex<AllocShard>]>,
    /// `alloc_shards.len() - 1`; shard count is always a power of two.
    alloc_mask: usize,
    alloc_global: Mutex<AllocGlobal>,
    options: StorageOptions,
    /// Directory holding data + log files; None for volatile stores.
    dir: Option<std::path::PathBuf>,
    commits_since_checkpoint: Arc<AtomicU64>,
    next_lsn: AtomicU64,
    /// Background fuzzy checkpointer, when `checkpoint_interval` is set.
    checkpointer: Mutex<Option<Checkpointer>>,
    metrics: Arc<Metrics>,
}

/// Handle to the background checkpoint thread: a stop flag + condvar the
/// thread waits its interval on, so shutdown interrupts a sleep instead
/// of waiting it out.
struct Checkpointer {
    stop: Arc<(Mutex<bool>, parking_lot::Condvar)>,
    handle: std::thread::JoinHandle<()>,
}

/// Everything a fuzzy checkpoint needs, Arc'd so the background thread
/// can run one without holding (and thus leaking) the whole [`Storage`].
struct CheckpointShared {
    pool: Arc<BufferPool>,
    wal: Arc<Wal>,
    txns: Arc<TxnManager>,
    metrics: Arc<Metrics>,
    fsync: bool,
    commits: Arc<AtomicU64>,
}

/// One fuzzy checkpoint cycle. Runs concurrently with commits, aborts,
/// steals, and other page traffic; the only global synchronization is the
/// WAL appends themselves.
///
/// Protocol (order is load-bearing):
/// 1. Append the `BeginCheckpoint` marker, *then* sample the dirty-page
///    table and the active-transaction table. Anything dirtied or begun
///    too late to be sampled necessarily logs past the marker, so redo
///    from `min(marker, sampled minima)` can miss nothing.
/// 2. Flush every sampled dirty page (each under its shard latch, WAL
///    flushed through the page LSN first — the same WAL-before-data rule
///    a steal obeys).
/// 3. Update the data-file header (page count, checkpoint seq). The file
///    is *not* marked clean: log replay is still required after a crash.
/// 4. Recycle the doublewrite journal — everything it protected is
///    durable (after the data-file sync when fsync is on).
/// 5. Append `EndCheckpoint` carrying the sampled tables and flush: the
///    checkpoint is now complete and recovery may start from it.
/// 6. Truncate the log behind `min(Begin start, current dirty rec_lsns,
///    current active first_lsns)` — recomputed *now*, not at the sample,
///    so pages dirtied or transactions begun mid-checkpoint hold the
///    horizon back exactly as far as redo/undo still need the log.
fn fuzzy_checkpoint(shared: &CheckpointShared) -> Result<u64> {
    let CheckpointShared {
        pool,
        wal,
        txns,
        metrics,
        fsync,
        commits,
    } = shared;
    let (begin_start, begin_end) = wal.append_span(&LogRecord::BeginCheckpoint);
    let dirty = pool.dirty_page_table();
    let active = txns.active_logged_first_lsns();
    let mut ids: Vec<PageId> = dirty.iter().map(|&(id, _)| id).collect();
    ids.sort_unstable();
    for id in ids {
        pool.flush_page(id)?;
    }
    if *fsync {
        pool.sync()?;
    }
    let mut header = pool.disk().read_header()?;
    header.page_count = pool.page_count();
    header.checkpoint_seq += 1;
    header.clean_shutdown = false;
    pool.disk().write_header(header)?;
    if *fsync {
        pool.sync()?;
        pool.disk().sync_dw()?;
    }
    pool.disk().dw_reset()?;
    wal.append(&LogRecord::EndCheckpoint {
        begin_lsn: begin_end,
        dirty,
        active,
    });
    wal.flush()?;
    let horizon = begin_start.min(pool.min_rec_lsn().unwrap_or(u64::MAX)).min(
        txns.active_logged_first_lsns()
            .iter()
            .map(|&(_, first)| first)
            .min()
            .unwrap_or(u64::MAX),
    );
    let freed = wal.truncate_prefix(horizon)?;
    metrics.checkpoints.inc();
    metrics.dpt_size.set(pool.dirty_page_table().len() as u64);
    commits.store(0, Ordering::Relaxed);
    Ok(freed)
}

impl Drop for Storage {
    fn drop(&mut self) {
        // `close` already stopped it; a bare drop (or a crash-simulating
        // test that forgot the storage) must not leave the thread looping
        // on Arcs that outlive the Storage.
        self.stop_checkpointer();
    }
}

impl Storage {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Create a new database in `dir` (which must exist and be empty of
    /// database files).
    pub fn create(dir: &Path, options: StorageOptions) -> Result<Storage> {
        std::fs::create_dir_all(dir)?;
        let store = match options.engine {
            EngineKind::Disk => {
                let disk = DiskFile::create_with(&dir.join("data.odb"), options.fault.clone())?;
                Store::Disk(Arc::new(BufferPool::with_shards(
                    disk,
                    options.buffer_pages,
                    options.shards,
                )))
            }
            EngineKind::Memory => Store::Mem(MemStore::with_shards(options.shards)),
        };
        let wal = Wal::open_with(
            &dir.join("wal.log"),
            options.fsync,
            options.fault.clone(),
            options.group_commit,
        )?;
        wal.reset()?;
        let storage = Storage::assemble(store, Some(wal), options, Some(dir.to_path_buf()));
        storage.bootstrap_roots()?;
        storage.checkpoint()?;
        storage.start_checkpointer();
        Ok(storage)
    }

    /// Open an existing database in `dir`, running recovery if the last
    /// shutdown was not clean.
    pub fn open(dir: &Path, options: StorageOptions) -> Result<Storage> {
        let store = match options.engine {
            EngineKind::Disk => {
                let disk = DiskFile::open(&dir.join("data.odb"))?;
                Store::Disk(Arc::new(BufferPool::with_shards(
                    disk,
                    options.buffer_pages,
                    options.shards,
                )))
            }
            EngineKind::Memory => {
                let ckpt = dir.join("mem.ckpt");
                if ckpt.exists() {
                    Store::Mem(MemStore::load_from(&ckpt, options.shards)?)
                } else {
                    Store::Mem(MemStore::with_shards(options.shards))
                }
            }
        };
        let wal_path = dir.join("wal.log");
        let records = Wal::read_all(&wal_path)?;
        let wal = Wal::open_with(
            &wal_path,
            options.fsync,
            options.fault.clone(),
            options.group_commit,
        )?;
        let storage = Storage::assemble(store, Some(wal), options, Some(dir.to_path_buf()));
        storage.replay(&records)?;
        storage.rebuild_alloc()?;
        storage.checkpoint()?;
        storage.start_checkpointer();
        Ok(storage)
    }

    /// A fully volatile main-memory database: no files, no WAL, rollback
    /// still works. The closest thing to "just give me a database" for
    /// tests and examples.
    pub fn volatile() -> Storage {
        Storage::volatile_with(StorageOptions::memory())
    }

    /// [`Storage::volatile`] with explicit options (engine is forced to
    /// memory; the concurrency knobs — `shards`, `lock_stripes`,
    /// `lock_timeout` — are what callers usually come here for, e.g. the
    /// stripe-count-1 bench baseline).
    pub fn volatile_with(options: StorageOptions) -> Storage {
        let options = StorageOptions {
            engine: EngineKind::Memory,
            ..options
        };
        let storage = Storage::assemble(
            Store::Mem(MemStore::with_shards(options.shards)),
            None,
            options,
            None,
        );
        storage
            .bootstrap_roots()
            .expect("bootstrap of a volatile store cannot fail");
        storage
    }

    fn assemble(
        store: Store,
        wal: Option<Wal>,
        options: StorageOptions,
        dir: Option<std::path::PathBuf>,
    ) -> Storage {
        // One registry per database: the lock manager, WAL, and buffer pool
        // all record into the same instance, which `Storage::metrics` then
        // exposes to the event and trigger layers above.
        let metrics = Arc::new(Metrics::new());
        let mut wal = wal;
        if let Some(w) = &mut wal {
            w.set_metrics(Arc::clone(&metrics));
        }
        let wal = wal.map(Arc::new);
        let mut store = store;
        if let Store::Disk(pool) = &mut store {
            let pool = Arc::get_mut(pool).expect("pool is unshared at assembly");
            pool.set_metrics(Arc::clone(&metrics));
            if let Some(w) = &wal {
                // Enables steal: dirty frames may be written back once the
                // WAL is flushed through their page LSN.
                pool.attach_wal(Arc::clone(w));
            }
        }
        if let Some(injector) = &options.fault {
            injector.attach_metrics(Arc::clone(&metrics));
        }
        let alloc_shards = options.shards.max(1).next_power_of_two();
        Storage {
            store,
            wal,
            locks: LockManager::with_config(
                options.lock_timeout,
                Arc::clone(&metrics),
                options.lock_stripes,
            ),
            txns: Arc::new(TxnManager::with_config(
                options.lock_timeout,
                Arc::clone(&metrics),
                options.shards,
            )),
            versions: VersionStore::new(options.shards, Arc::clone(&metrics)),
            alloc_shards: (0..alloc_shards)
                .map(|_| Mutex::new(AllocShard::default()))
                .collect(),
            alloc_mask: alloc_shards - 1,
            alloc_global: Mutex::new(AllocGlobal::default()),
            options,
            dir,
            commits_since_checkpoint: Arc::new(AtomicU64::new(0)),
            next_lsn: AtomicU64::new(1),
            checkpointer: Mutex::new(None),
            metrics,
        }
    }

    /// Spawn the background fuzzy checkpointer when configured (disk
    /// engine with a WAL and `checkpoint_interval` set). Called after the
    /// initial quiesced checkpoint so the thread never overlaps create/
    /// open-time log resets.
    fn start_checkpointer(&self) {
        let interval = match self.options.checkpoint_interval {
            Some(interval) if !interval.is_zero() => interval,
            _ => return,
        };
        let (pool, wal) = match (&self.store, &self.wal) {
            (Store::Disk(pool), Some(wal)) => (Arc::clone(pool), Arc::clone(wal)),
            _ => return,
        };
        let shared = CheckpointShared {
            pool,
            wal,
            txns: Arc::clone(&self.txns),
            metrics: Arc::clone(&self.metrics),
            fsync: self.options.fsync,
            commits: Arc::clone(&self.commits_since_checkpoint),
        };
        let stop = Arc::new((Mutex::new(false), parking_lot::Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("ode-checkpointer".into())
            .spawn(move || loop {
                {
                    let mut stopped = thread_stop.0.lock();
                    if !*stopped {
                        thread_stop.1.wait_for(&mut stopped, interval);
                    }
                    if *stopped {
                        return;
                    }
                }
                // Checkpoint failures (e.g. a poisoned WAL under fault
                // injection) must not kill the thread: the condition is
                // surfaced to committers through their own WAL writes, and
                // the next cycle retries.
                let _ = fuzzy_checkpoint(&shared);
            })
            .expect("spawning the checkpointer thread cannot fail");
        *self.checkpointer.lock() = Some(Checkpointer { stop, handle });
    }

    /// Signal and join the background checkpointer, if running.
    /// Idempotent; called from `close` and `Drop`.
    fn stop_checkpointer(&self) {
        let ckpt = self.checkpointer.lock().take();
        if let Some(ckpt) = ckpt {
            *ckpt.stop.0.lock() = true;
            ckpt.stop.1.notify_all();
            let _ = ckpt.handle.join();
        }
    }

    /// The database-wide metrics registry shared by every layer.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The options this storage was assembled with (layers above use the
    /// concurrency knobs to size their own sharded structures).
    pub fn options(&self) -> &StorageOptions {
        &self.options
    }

    fn bootstrap_roots(&self) -> Result<()> {
        let txn = self.begin()?;
        let record = RootsRecord {
            next_cluster: FIRST_USER_CLUSTER,
            roots: Vec::new(),
        };
        let bytes = encode_to_vec(&record);
        let oid = self.allocate(txn, SYSTEM_CLUSTER, &bytes)?;
        debug_assert_eq!(oid, ROOTS_OID, "roots record must land at the fixed Oid");
        self.commit(txn)
    }

    /// Recovery: repeat history, then roll back the losers (ARIES-style).
    ///
    /// Every logged cell operation is reapplied in log order regardless of
    /// its transaction's fate — the log includes abort-time rollback steps
    /// (compensation-style), so a transaction with an Abort record is
    /// self-neutralizing and committed operations that physically depend
    /// on an aborted neighbour's page layout (e.g. an update addressed to
    /// a cell an abort relocated, or an insert into space an uncommitted
    /// shrink freed) replay against exactly the layout they saw live.
    /// Transactions still in flight at the crash (neither Commit nor Abort
    /// in the log) are then rolled back from the records' before-images,
    /// newest first.
    ///
    /// Two refinements over blind reapply, both required once the buffer
    /// pool steals dirty pages and checkpoints are fuzzy:
    ///
    /// * **Checkpoint-bounded redo.** The scan starts at the last complete
    ///   checkpoint's `min(Begin-marker end, dirty-page rec_lsns, active
    ///   first_lsns)` instead of the log start; records wholly before that
    ///   are only consulted for the winner/loser verdicts.
    /// * **LSN-gated apply.** Each record mutates its page only when the
    ///   page's stamped LSN is older than the record's end LSN; a page
    ///   stolen (written back) after the record was applied live carries a
    ///   newer stamp, and re-applying would double-insert or double-delete.
    ///   Loser undo is collected from the record either way — the effect
    ///   is in the page whether redo or the steal put it there.
    fn replay(&self, records: &[(u64, LogRecord)]) -> Result<()> {
        use std::collections::HashSet;
        let resolved: HashSet<u64> = records
            .iter()
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { txn } | LogRecord::Abort { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        // Redo lower bound from the last complete fuzzy checkpoint (its
        // End record carries the tables sampled just after its Begin
        // marker; anything sampled too late to appear logs past the
        // marker, so the min below can miss nothing).
        let mut redo_start = 0u64;
        for (_, record) in records.iter().rev() {
            if let LogRecord::EndCheckpoint {
                begin_lsn,
                dirty,
                active,
            } = record
            {
                redo_start = dirty
                    .iter()
                    .map(|&(_, rec_lsn)| rec_lsn)
                    .chain(active.iter().map(|&(_, first)| first))
                    .min()
                    .unwrap_or(*begin_lsn)
                    .min(*begin_lsn);
                break;
            }
        }
        // Phase 1: repeat history. Collect undo work for in-flight losers.
        let mut loser_undo: Vec<UndoOp> = Vec::new();
        for (end, record) in records {
            if *end <= redo_start {
                continue;
            }
            let end = *end;
            let loser = !resolved.contains(&record.txn());
            match record {
                LogRecord::PageAlloc { page, cluster, .. } => {
                    self.store.ensure_pages(page + 1)?;
                    self.store.with_page_mut(*page, |p| {
                        if p.lsn() < end {
                            p.set_cluster(*cluster);
                            p.set_lsn(end);
                        }
                    })?;
                }
                LogRecord::CellInsert {
                    page, slot, data, ..
                } => {
                    self.store.ensure_pages(page + 1)?;
                    self.store
                        .with_page_mut(*page, |p| {
                            if p.lsn() >= end {
                                return Ok(());
                            }
                            p.insert_at(*slot, data).map(|()| p.set_lsn(end))
                        })?
                        .map_err(|e| {
                            StorageError::Corrupt(format!("replay insert failed: {e:?}"))
                        })?;
                    if loser {
                        loser_undo.push(UndoOp::UndoInsert {
                            page: *page,
                            slot: *slot,
                        });
                    }
                }
                LogRecord::CellUpdate {
                    page,
                    slot,
                    data,
                    before,
                    ..
                } => {
                    self.store
                        .with_page_mut(*page, |p| {
                            if p.lsn() >= end {
                                return Ok(());
                            }
                            p.update(*slot, data).map(|()| p.set_lsn(end))
                        })?
                        .map_err(|e| {
                            StorageError::Corrupt(format!("replay update failed: {e:?}"))
                        })?;
                    if loser {
                        loser_undo.push(UndoOp::UndoUpdate {
                            page: *page,
                            slot: *slot,
                            before: before.clone(),
                        });
                    }
                }
                LogRecord::CellDelete {
                    page, slot, before, ..
                } => {
                    self.store
                        .with_page_mut(*page, |p| {
                            if p.lsn() >= end {
                                return Ok(());
                            }
                            p.delete(*slot).map(|()| p.set_lsn(end))
                        })?
                        .map_err(|e| {
                            StorageError::Corrupt(format!("replay delete failed: {e:?}"))
                        })?;
                    if loser {
                        loser_undo.push(UndoOp::UndoDelete {
                            page: *page,
                            slot: *slot,
                            before: before.clone(),
                        });
                    }
                }
                LogRecord::Begin { .. }
                | LogRecord::Commit { .. }
                | LogRecord::Abort { .. }
                | LogRecord::BeginCheckpoint
                | LogRecord::EndCheckpoint { .. } => {}
            }
        }
        // Phase 2: roll back the losers in reverse global log order, so
        // interleaved losers unwind their shared-page space interactions
        // in the opposite order they were applied.
        for op in loser_undo.into_iter().rev() {
            match op {
                UndoOp::UndoInsert { page, slot } => {
                    self.store
                        .with_page_mut(page, |p| p.delete(slot))?
                        .map_err(|e| {
                            StorageError::Corrupt(format!("recovery undo insert failed: {e:?}"))
                        })?;
                }
                UndoOp::UndoUpdate { page, slot, before } => {
                    match self
                        .store
                        .with_page_mut(page, |p| p.update(slot, &before))?
                    {
                        Ok(()) => {}
                        Err(PageOpError::Full) => {
                            self.replay_relocate(Oid::new(page, slot), &before, true)?;
                        }
                        Err(e) => {
                            return Err(StorageError::Corrupt(format!(
                                "recovery undo update failed: {e:?}"
                            )));
                        }
                    }
                }
                UndoOp::UndoDelete { page, slot, before } => {
                    match self
                        .store
                        .with_page_mut(page, |p| p.insert_at(slot, &before))?
                    {
                        Ok(()) => {}
                        Err(PageOpError::Full) => {
                            self.replay_relocate(Oid::new(page, slot), &before, false)?;
                        }
                        Err(e) => {
                            return Err(StorageError::Corrupt(format!(
                                "recovery undo delete failed: {e:?}"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Recovery-time analogue of [`Storage::undo_restore_moved`]: rolling
    /// back an in-flight loser can find its before-image no longer fits in
    /// place, because a *committed* transaction claimed the bytes the
    /// loser's uncommitted shrink or delete had freed. The image moves to
    /// another page of the same cluster behind a forward stub, keeping the
    /// object's Oid and committed value intact. Runs before
    /// `rebuild_alloc`, so target pages are found by direct scan; nothing
    /// is logged — `open` checkpoints immediately after replay.
    fn replay_relocate(&self, oid: Oid, before: &[u8], occupied: bool) -> Result<()> {
        let mut relocated = before.to_vec();
        match before.first() {
            Some(&TAG_DATA) => relocated[0] = TAG_MOVED_DATA,
            Some(&TAG_OVF_HEAD) => relocated[0] = TAG_MOVED_OVF_HEAD,
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "recovery cannot relocate cell with tag {tag:?} at {oid}"
                )));
            }
        }
        let cluster = self.cluster_of(oid.page())?;
        let mut target_page = None;
        for id in 1..self.store.page_count() {
            if id == oid.page() {
                continue;
            }
            let fits = self.store.with_page(id, |p| {
                p.cluster() == cluster && p.can_insert(relocated.len())
            })?;
            if fits {
                target_page = Some(id);
                break;
            }
        }
        let target_page = match target_page {
            Some(p) => p,
            None => {
                let p = self.store.allocate_page()?;
                self.store.with_page_mut(p, |pg| pg.set_cluster(cluster))?;
                p
            }
        };
        let slot = self
            .store
            .with_page_mut(target_page, |p| p.insert(&relocated))?
            .map_err(|e| {
                StorageError::Corrupt(format!("recovery relocation insert failed: {e:?}"))
            })?;
        let target = Oid::new(target_page, slot);
        let mut stub = Vec::with_capacity(7);
        stub.push(TAG_FORWARD);
        stub.extend_from_slice(&encode_to_vec(&target));
        self.store
            .with_page_mut(oid.page(), |p| {
                if occupied {
                    match p.update(oid.slot(), &stub) {
                        // The slot's current cell is too small to grow into
                        // a stub on a full page: free it first.
                        Err(PageOpError::Full) => {
                            p.delete(oid.slot()).ok();
                            p.insert_at(oid.slot(), &stub)
                        }
                        r => r,
                    }
                } else {
                    p.insert_at(oid.slot(), &stub)
                }
            })?
            .map_err(|e| StorageError::Corrupt(format!("recovery stub at {oid} failed: {e:?}")))
    }

    /// Rebuild the allocation directory by scanning page tags.
    fn rebuild_alloc(&self) -> Result<()> {
        let mut global = AllocGlobal::default();
        let mut shards: Vec<AllocShard> = (0..self.alloc_shards.len())
            .map(|_| AllocShard::default())
            .collect();
        for id in 1..self.store.page_count() {
            let (cluster, free) = self
                .store
                .with_page(id, |p| (p.cluster(), p.usable_free()))?;
            let shard = &mut shards[self.alloc_shard_of(id)];
            if cluster == UNASSIGNED_CLUSTER {
                shard.unassigned.insert(id);
            } else {
                global.cluster_pages.entry(cluster).or_default().insert(id);
                if free >= SPACE_THRESHOLD {
                    shard.with_space.entry(cluster).or_default().insert(id);
                }
            }
        }
        *self.alloc_global.lock() = global;
        for (slot, shard) in self.alloc_shards.iter().zip(shards) {
            *slot.lock() = shard;
        }
        Ok(())
    }

    /// Flush everything and truncate the log. Requires quiescence: with
    /// transactions active this fails with [`StorageError::NotQuiesced`]
    /// (use [`Storage::checkpoint_fuzzy`] to checkpoint under load).
    pub fn checkpoint(&self) -> Result<()> {
        let active = self.txns.active().len();
        if active != 0 {
            return Err(StorageError::NotQuiesced(active));
        }
        // Quiescence means no snapshot can be registered and no writer is
        // pinning a chain, so this sweep empties the version store: the
        // checkpoint image (pages only) must not be shadowed by superseded
        // versions that would otherwise survive it in memory — the same
        // "no stale state rides through a checkpoint" rule the tombstone
        // purge enforces for deleted cells.
        self.versions.vacuum();
        debug_assert_eq!(
            self.versions.stats().entries,
            0,
            "quiesced vacuum must empty the version store"
        );
        match (&self.store, &self.wal) {
            (Store::Disk(pool), Some(wal)) => {
                wal.flush()?;
                pool.flush_all()?;
                // Page images must be stable before the header declares the
                // checkpoint, and the header must be stable before the log
                // (the only redo source) is truncated.
                if self.options.fsync {
                    pool.sync()?;
                }
                let mut header = pool.disk().read_header()?;
                header.page_count = pool.page_count();
                header.checkpoint_seq += 1;
                header.clean_shutdown = true;
                pool.disk().write_header(header)?;
                if self.options.fsync {
                    pool.sync()?;
                    pool.disk().sync_dw()?;
                }
                // Every in-place page write is now durable, so the
                // doublewrite journal has nothing left to protect.
                pool.disk().dw_reset()?;
                wal.reset()?;
            }
            (Store::Mem(mem), Some(wal)) => {
                wal.flush()?;
                if let Some(dir) = &self.dir {
                    mem.checkpoint_to(&dir.join("mem.ckpt"))?;
                }
                wal.reset()?;
            }
            _ => {}
        }
        self.metrics.checkpoints.inc();
        self.commits_since_checkpoint.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Take a fuzzy (non-quiescent) checkpoint: flush the sampled dirty-
    /// page table under the WAL-before-data rule, log the checkpoint, and
    /// truncate the WAL behind the recovery horizon — all while commits,
    /// aborts, and trigger firings proceed concurrently. Returns the
    /// number of log bytes freed.
    ///
    /// On the memory engine (whose checkpoint is a full image and needs
    /// quiescence) this degrades to an opportunistic quiesced checkpoint:
    /// busy means no-op, not an error.
    pub fn checkpoint_fuzzy(&self) -> Result<u64> {
        match (&self.store, &self.wal) {
            (Store::Disk(pool), Some(wal)) => {
                let shared = CheckpointShared {
                    pool: Arc::clone(pool),
                    wal: Arc::clone(wal),
                    txns: Arc::clone(&self.txns),
                    metrics: Arc::clone(&self.metrics),
                    fsync: self.options.fsync,
                    commits: Arc::clone(&self.commits_since_checkpoint),
                };
                fuzzy_checkpoint(&shared)
            }
            _ => match self.checkpoint() {
                Ok(()) => Ok(0),
                Err(StorageError::NotQuiesced(_)) => Ok(0),
                Err(e) => Err(e),
            },
        }
    }

    /// Checkpoint and drop the handle. (Dropping without `close` is safe —
    /// recovery replays the log — just slower on next open.)
    pub fn close(self) -> Result<()> {
        self.stop_checkpointer();
        self.checkpoint()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begin a user transaction. No WAL record is written yet — the Begin
    /// is logged lazily at the transaction's first write, so read-only
    /// transactions never touch the log.
    pub fn begin(&self) -> Result<TxnId> {
        Ok(self.txns.begin(false))
    }

    /// Begin a system transaction (trigger processing, §5.5).
    pub fn begin_system(&self) -> Result<TxnId> {
        Ok(self.txns.begin(true))
    }

    /// Begin a read-only snapshot transaction. Every read it performs is
    /// served at one consistent commit sequence — the MVCC snapshot — and
    /// takes **no lock-manager locks**, so it can neither wait for nor
    /// deadlock with writers (nor force them to wait). Write operations
    /// fail with [`StorageError::ReadOnlyTxn`].
    ///
    /// Durability: the snapshot may include writers whose Commit records
    /// are appended but not yet flushed, so the transaction's begin-time
    /// log tail is remembered and [`Storage::commit_wait`] waits for it —
    /// an acknowledged snapshot read never exposes state recovery could
    /// discard (the same read-barrier rule PR 3 established for 2PL
    /// readers, pinned at begin instead of commit).
    pub fn begin_read_only(&self) -> Result<TxnId> {
        let txn = self.txns.begin(false);
        // Order matters: register the snapshot *first*, then capture the
        // log tail. Any writer whose install is visible at this snapshot
        // appended its Commit record before publishing the sequence, so
        // `end_lsn` taken afterwards covers it.
        let snap = self.versions.register_snapshot();
        let barrier = self.wal.as_ref().and_then(|wal| {
            let end = wal.end_lsn();
            (end > wal.flushed_lsn()).then_some(end)
        });
        self.txns.set_snapshot(txn, snap, barrier);
        Ok(txn)
    }

    /// Whether `txn` is a read-only snapshot transaction.
    pub fn is_read_only(&self, txn: TxnId) -> bool {
        self.txns.snapshot_of(txn).is_some()
    }

    /// Fail when `txn` is a read-only snapshot transaction: those may not
    /// acquire exclusive locks or mutate pages.
    fn require_writer(&self, txn: TxnId) -> Result<()> {
        match self.txns.snapshot_of(txn) {
            Some(_) => Err(StorageError::ReadOnlyTxn(txn)),
            None => Ok(()),
        }
    }

    /// Ensure `txn`'s Begin record is in the WAL. Called before taking a
    /// page latch whose closure will append a cell record: cell records
    /// are appended *under* the latch so WAL order is identical to
    /// page-mutation order — the invariant replay's repeat-history pass
    /// depends on. (Begin order itself is immaterial.)
    fn wal_begin(&self, txn: TxnId) -> Result<()> {
        if let Some(wal) = &self.wal {
            // Sample the log tail *before* appending: the recorded
            // first-LSN must lower-bound every record of the transaction,
            // and the checkpointer reads it concurrently.
            let first = wal.end_lsn();
            if self.txns.mark_logged(txn, first)? {
                wal.append(&LogRecord::Begin { txn: txn.0 });
            }
        }
        Ok(())
    }

    /// Declare that `txn` may only commit if `on` commits (the `dependent`
    /// coupling mode's commit dependency).
    pub fn add_commit_dependency(&self, txn: TxnId, on: TxnId) -> Result<()> {
        self.txns.add_dependency(txn, on)
    }

    /// Commit: wait for dependencies, make the log durable, release locks.
    /// Equivalent to [`Storage::commit_deferred`] + [`Storage::commit_wait`];
    /// returns once the commit is durable (group-commit batches concurrent
    /// committers into one fsync).
    pub fn commit(&self, txn: TxnId) -> Result<()> {
        let ticket = self.commit_deferred(txn)?;
        self.commit_wait(ticket)
    }

    /// First half of commit: wait for dependencies, append the Commit
    /// record, mark the transaction committed, and release its locks —
    /// WITHOUT waiting for durability. The returned ticket must be passed
    /// to [`Storage::commit_wait`] before the commit is acknowledged to
    /// anyone outside the database.
    ///
    /// The early lock release is safe because WAL order bounds visibility:
    /// a writing transaction that reads this one's writes appends its own
    /// Commit record at a later LSN, so it cannot become durable (and thus
    /// cannot be acknowledged) before this one does, and a read-only
    /// transaction's ticket carries the log tail it observed, which
    /// `commit_wait` waits on. The trigger layer uses the gap to let
    /// dependent system transactions append their Commit records into the
    /// same flush batch as their parent.
    pub fn commit_deferred(&self, txn: TxnId) -> Result<CommitTicket> {
        self.txns.require_active(txn)?;
        // Snapshot transactions wrote nothing: no log, no locks, no purge.
        // Their ticket carries the *begin-time* read barrier (every commit
        // visible at the snapshot sits at or below that log tail), and
        // releasing the snapshot unpins the GC horizon.
        if let Some(snap) = self.txns.snapshot_of(txn) {
            let read_barrier = self.txns.read_barrier_of(txn);
            self.versions.release_snapshot(snap);
            self.txns.finish(txn, TxnState::Committed)?;
            self.metrics.txn_commits.inc();
            self.metrics.emit(|| TraceEvent::TxnCommit { txn: txn.0 });
            return Ok(CommitTicket {
                txn,
                lsn: None,
                read_barrier,
            });
        }
        if let Err(e) = self.txns.await_dependencies(txn) {
            // Dependency failed: this transaction must abort instead.
            self.abort(txn)?;
            return Err(e);
        }
        // Physically remove every cell this transaction tombstoned, each
        // logged and applied under ONE page latch (log order = mutation
        // order, and the page LSN is stamped with the record's exact end
        // so a stolen page never replays the delete twice). Ahead of the
        // Commit record, so recovery repeats the purge exactly when it
        // replays the commit; running it here is irrevocable-safe because
        // dependencies are resolved and nothing past this point can abort
        // the transaction. The slots stayed reserved (tombstoned) until
        // now, so reading them inside the latch is race-free, and the
        // locks are still held, so no reader can observe the purge early.
        let pending = self.txns.take_pending_deletes(txn);
        debug_assert!(
            pending.is_empty() || self.wal.is_none() || self.txns.has_logged(txn),
            "a delete implies a logged txn"
        );
        for oid in &pending {
            let removed = self.store.with_page_mut(oid.page(), |p| {
                let before = p.read(oid.slot()).map(<[u8]>::to_vec).unwrap_or_default();
                let ok = p.delete(oid.slot()).is_ok();
                if ok {
                    let lsn = match &self.wal {
                        Some(wal) => wal.append(&LogRecord::CellDelete {
                            txn: txn.0,
                            page: oid.page(),
                            slot: oid.slot(),
                            before,
                        }),
                        None => self.bump_lsn(),
                    };
                    p.set_lsn(lsn);
                }
                ok
            });
            debug_assert!(
                matches!(removed, Ok(true)),
                "commit-time delete of a tombstoned cell cannot fail"
            );
            let _ = self.note_space(oid.page());
        }
        // Read-only transactions never logged anything: skip the Commit
        // record and the flush entirely.
        let lsn = match &self.wal {
            Some(wal) if self.txns.has_logged(txn) => {
                let lsn = wal.append(&LogRecord::Commit { txn: txn.0 });
                self.txns.set_commit_lsn(txn, lsn);
                Some(lsn)
            }
            _ => None,
        };
        // A read-only transaction may have observed writes whose Commit
        // records are appended but not yet durable (locks release before
        // the flush). Acknowledging the read must imply those writers are
        // durable, so remember the log tail observed now — every write
        // this transaction read committed at or below it — for
        // `commit_wait` to wait on. `None` when the tail is already
        // durable, which keeps the common read-after-durable path free.
        let read_barrier = match &self.wal {
            Some(wal) if lsn.is_none() => {
                let end = wal.end_lsn();
                (end > wal.flushed_lsn()).then_some(end)
            }
            _ => None,
        };
        // Install the committed values of this transaction's write set as
        // one atomic version-store sequence step. Past the commit point
        // (Commit record appended): a purged slot resolves as
        // NoSuchObject, which installs the delete marker snapshot readers
        // need.
        let dirty = self.txns.take_dirty(txn);
        if !dirty.is_empty() {
            self.versions.install(&dirty, |o| {
                let oid = Oid::from_u64(o);
                let cluster = self.cluster_of(oid.page())?;
                match self.resolve(oid) {
                    Ok((_, cell)) => Ok((cluster, Some(self.assemble_data(&cell)?))),
                    Err(StorageError::NoSuchObject(_)) => Ok((cluster, None)),
                    Err(e) => Err(e),
                }
            })?;
        }
        self.txns.finish(txn, TxnState::Committed)?;
        self.locks.unlock_all(txn);
        self.metrics.txn_commits.inc();
        self.metrics.emit(|| TraceEvent::TxnCommit { txn: txn.0 });
        Ok(CommitTicket {
            txn,
            lsn,
            read_barrier,
        })
    }

    /// Second half of commit: block until the ticket's Commit record is
    /// durable (`flushed_lsn >= commit_lsn`). Read-only tickets return
    /// immediately unless they observed not-yet-durable writers, in which
    /// case they wait for those writers' Commit records first (a read is
    /// only acknowledged once everything it saw is durable). Runs the
    /// auto-checkpoint policy.
    pub fn commit_wait(&self, ticket: CommitTicket) -> Result<()> {
        if let Some(wal) = &self.wal {
            if let Some(lsn) = ticket.lsn {
                let mut span = ode_trace::span(ode_trace::SpanKind::Commit, "");
                span.payload(ticket.txn.0, lsn);
                wal.commit_wait(lsn)?;
                drop(span);
                self.metrics.emit(|| TraceEvent::CommitDurable {
                    txn: ticket.txn.0,
                    lsn,
                });
            } else if let Some(barrier) = ticket.read_barrier {
                wal.commit_wait(barrier)?;
            }
        }
        if ticket.lsn.is_some() || self.wal.is_none() {
            let n = self
                .commits_since_checkpoint
                .fetch_add(1, Ordering::Relaxed)
                + 1;
            if self.options.checkpoint_every > 0 && n >= self.options.checkpoint_every {
                match &self.store {
                    // Disk: fuzzy — runs under load, truncates the log
                    // incrementally, never stalls concurrent committers.
                    Store::Disk(_) if self.wal.is_some() => {
                        self.checkpoint_fuzzy()?;
                    }
                    // Memory: the full-image checkpoint needs quiescence;
                    // stay opportunistic (busy commits just skip it).
                    _ => match self.checkpoint() {
                        Ok(()) | Err(StorageError::NotQuiesced(_)) => {}
                        Err(e) => return Err(e),
                    },
                }
            }
        }
        Ok(())
    }

    /// Abort: apply undo in reverse, release locks.
    ///
    /// Undo runs to completion even when an individual restore fails —
    /// bailing out early would leave the transaction `Active` with its
    /// locks held and its undo list already drained, permanently starving
    /// every later transaction that touches those keys (observed as a
    /// livelock of lock-timeout/retry cycles under the concurrency stress
    /// test). The first restore error is still reported, but the
    /// transaction always finishes and always releases its locks.
    pub fn abort(&self, txn: TxnId) -> Result<()> {
        self.txns.require_active(txn)?;
        let undo = self.txns.take_undo(txn);
        let mut first_err = None;
        for op in undo.into_iter().rev() {
            if let Err(e) = self.apply_undo(txn, op) {
                first_err.get_or_insert(e);
            }
        }
        // Unpin this transaction's version-chain entries: the rollback
        // above restored the pages to the committed values the chains
        // seeded, so the pins (not the seeds) are what must go. Entries
        // themselves stay — a reader mid-fallback relies on their presence
        // to detect that pages were mutated inside its read window.
        let dirty = self.txns.take_dirty(txn);
        if !dirty.is_empty() {
            self.versions.clear_writer(txn, &dirty);
        }
        if let Some(snap) = self.txns.snapshot_of(txn) {
            self.versions.release_snapshot(snap);
        }
        if let Some(wal) = &self.wal {
            // Informational only, so a read-only abort stays log-free.
            if self.txns.has_logged(txn) {
                wal.append(&LogRecord::Abort { txn: txn.0 });
            }
        }
        self.txns.finish(txn, TxnState::Aborted)?;
        self.locks.unlock_all(txn);
        self.metrics.txn_aborts.inc();
        self.metrics.emit(|| TraceEvent::TxnAbort { txn: txn.0 });
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Apply one rollback step — and *log* it. Abort-time page repairs are
    /// appended to the WAL as ordinary cell records (compensation-log
    /// style, under the page latch like every cell record), so recovery's
    /// repeat-history pass reproduces the rollback verbatim: a committed
    /// neighbour whose operations physically depend on the repaired layout
    /// (an update addressed to a relocated cell, an insert into freed
    /// space) replays against exactly the state it saw live. The txn's
    /// Begin record is guaranteed present — every undo op stems from a
    /// logged forward op.
    fn apply_undo(&self, txn: TxnId, op: UndoOp) -> Result<()> {
        match op {
            UndoOp::UndoInsert { page, slot } => {
                self.store
                    .with_page_mut(page, |p| {
                        let before = p.read(slot).map(<[u8]>::to_vec).unwrap_or_default();
                        p.delete(slot).map(|()| {
                            let lsn = match &self.wal {
                                Some(wal) => wal.append(&LogRecord::CellDelete {
                                    txn: txn.0,
                                    page,
                                    slot,
                                    before,
                                }),
                                None => self.bump_lsn(),
                            };
                            p.set_lsn(lsn);
                        })
                    })?
                    .map_err(|e| StorageError::Corrupt(format!("undo insert failed: {e:?}")))?;
                self.note_space(page)?;
            }
            UndoOp::UndoUpdate { page, slot, before } => {
                let outcome = self.store.with_page_mut(page, |p| {
                    let prior = p.read(slot).map(<[u8]>::to_vec).unwrap_or_default();
                    p.update(slot, &before).map(|()| {
                        let lsn = match &self.wal {
                            Some(wal) => wal.append(&LogRecord::CellUpdate {
                                txn: txn.0,
                                page,
                                slot,
                                data: before.clone(),
                                before: prior,
                            }),
                            None => self.bump_lsn(),
                        };
                        p.set_lsn(lsn);
                    })
                })?;
                match outcome {
                    Ok(()) => {}
                    Err(PageOpError::Full) => {
                        self.undo_restore_moved(txn, Oid::new(page, slot), &before, true)?;
                    }
                    Err(e) => {
                        return Err(StorageError::Corrupt(format!("undo update failed: {e:?}")));
                    }
                }
                self.note_space(page)?;
            }
            UndoOp::UndoDelete { page, slot, before } => {
                let outcome = self.store.with_page_mut(page, |p| {
                    p.insert_at(slot, &before).map(|()| {
                        let lsn = match &self.wal {
                            Some(wal) => wal.append(&LogRecord::CellInsert {
                                txn: txn.0,
                                page,
                                slot,
                                data: before.clone(),
                            }),
                            None => self.bump_lsn(),
                        };
                        p.set_lsn(lsn);
                    })
                })?;
                match outcome {
                    Ok(()) => {}
                    Err(PageOpError::Full) => {
                        self.undo_restore_moved(txn, Oid::new(page, slot), &before, false)?;
                    }
                    Err(e) => {
                        return Err(StorageError::Corrupt(format!("undo delete failed: {e:?}")));
                    }
                }
                self.note_space(page)?;
            }
        }
        Ok(())
    }

    /// Undo fallback for when the before-image no longer fits at its
    /// original location: pages are shared between transactions, so the
    /// space an update or delete freed may have been claimed by a
    /// concurrent insert before this transaction aborted. The image is
    /// placed on another page of the same cluster and a forward stub left
    /// at the original slot — the same relocation a growing update uses —
    /// keeping the object's Oid and committed value intact.
    ///
    /// Only primary cells can relocate; secondary cells (overflow chunks,
    /// already-moved targets) are anchored by pointers that cannot be
    /// rewritten here, so those fail and surface through [`Storage::abort`]
    /// as a corruption error after lock release.
    fn undo_restore_moved(
        &self,
        txn: TxnId,
        oid: Oid,
        before: &[u8],
        occupied: bool,
    ) -> Result<()> {
        let mut relocated = before.to_vec();
        match before.first() {
            Some(&TAG_DATA) => relocated[0] = TAG_MOVED_DATA,
            Some(&TAG_OVF_HEAD) => relocated[0] = TAG_MOVED_OVF_HEAD,
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "undo restore at {oid} cannot relocate cell with tag {tag:?}"
                )));
            }
        }
        let cluster = self.cluster_of(oid.page())?;
        let target = self.raw_insert(txn, cluster, &relocated, false)?;
        let mut stub = Vec::with_capacity(7);
        stub.push(TAG_FORWARD);
        stub.extend_from_slice(&encode_to_vec(&target));
        if occupied {
            if !self.raw_update(txn, oid, &stub)? {
                return Err(StorageError::Corrupt(format!(
                    "undo forward stub did not fit at {oid}"
                )));
            }
        } else {
            self.store
                .with_page_mut(oid.page(), |p| {
                    p.insert_at(oid.slot(), &stub).map(|()| {
                        let lsn = match &self.wal {
                            Some(wal) => wal.append(&LogRecord::CellInsert {
                                txn: txn.0,
                                page: oid.page(),
                                slot: oid.slot(),
                                data: stub.clone(),
                            }),
                            None => self.bump_lsn(),
                        };
                        p.set_lsn(lsn);
                    })
                })?
                .map_err(|e| StorageError::Corrupt(format!("undo stub insert failed: {e:?}")))?;
        }
        Ok(())
    }

    /// Which allocator shard a page belongs to (fixed by its id).
    fn alloc_shard_of(&self, page: PageId) -> usize {
        (page as usize) & self.alloc_mask
    }

    /// Lock one allocator shard, counting contended acquisitions.
    fn lock_alloc_shard(&self, idx: usize) -> parking_lot::MutexGuard<'_, AllocShard> {
        match self.alloc_shards[idx].try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.alloc_shard_contention.inc();
                let started = std::time::Instant::now();
                let guard = self.alloc_shards[idx].lock();
                self.metrics
                    .shard_acquire_nanos
                    .record(started.elapsed().as_nanos() as u64);
                guard
            }
        }
    }

    /// Lock the cold-path global allocation directory, counting contended
    /// acquisitions (same family as the shards — it is part of the
    /// allocator's serialization budget).
    fn lock_alloc_global(&self) -> parking_lot::MutexGuard<'_, AllocGlobal> {
        match self.alloc_global.try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.alloc_shard_contention.inc();
                let started = std::time::Instant::now();
                let guard = self.alloc_global.lock();
                self.metrics
                    .shard_acquire_nanos
                    .record(started.elapsed().as_nanos() as u64);
                guard
            }
        }
    }

    /// Each thread starts its shard probes at its own offset so concurrent
    /// allocators spread across shards (and thus across page latches)
    /// instead of all fighting over the same "best" page.
    fn preferred_alloc_shard(&self) -> usize {
        use std::cell::Cell;
        use std::sync::atomic::AtomicUsize;
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static PREFERRED: Cell<usize> = const { Cell::new(usize::MAX) };
        }
        PREFERRED.with(|c| {
            if c.get() == usize::MAX {
                c.set(NEXT.fetch_add(1, Ordering::Relaxed));
            }
            c.get()
        }) & self.alloc_mask
    }

    /// Refresh a page's entry in the with-space directory.
    fn note_space(&self, page: PageId) -> Result<()> {
        let (cluster, free) = self
            .store
            .with_page(page, |p| (p.cluster(), p.usable_free()))?;
        if cluster == UNASSIGNED_CLUSTER {
            return Ok(());
        }
        let mut shard = self.lock_alloc_shard(self.alloc_shard_of(page));
        let set = shard.with_space.entry(cluster).or_default();
        if free >= SPACE_THRESHOLD {
            set.insert(page);
        } else {
            set.remove(&page);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Raw cell operations (logged + undoable)
    // ------------------------------------------------------------------

    fn bump_lsn(&self) -> u64 {
        self.next_lsn.fetch_add(1, Ordering::Relaxed)
    }

    /// Pick (or create) a page of `cluster` that can hold `len` bytes.
    /// Probes allocator shards round-robin from a per-thread offset; only
    /// falls through to the global growth path when no shard has a usable
    /// page.
    fn pick_page(&self, txn: TxnId, cluster: ClusterId, len: usize) -> Result<PageId> {
        let start = self.preferred_alloc_shard();
        for i in 0..self.alloc_shards.len() {
            let idx = (start + i) & self.alloc_mask;
            let shard = self.lock_alloc_shard(idx);
            if let Some(set) = shard.with_space.get(&cluster) {
                // Newest pages first: they are most likely to fit.
                for &candidate in set.iter().rev() {
                    let fits = self.store.with_page(candidate, |p| p.can_insert(len))?;
                    if fits {
                        return Ok(candidate);
                    }
                }
            }
        }
        // Reuse an unassigned page from any shard...
        let mut page = None;
        for i in 0..self.alloc_shards.len() {
            let idx = (start + i) & self.alloc_mask;
            if let Some(p) = self.lock_alloc_shard(idx).unassigned.pop_first() {
                page = Some(p);
                break;
            }
        }
        // ...or grow the store by a small batch, keeping the first page
        // and parking the rest as unassigned in their shards so the next
        // few allocations skip the growth path (the shards' refill).
        let page = match page {
            Some(p) => p,
            None => {
                let p = self.store.allocate_page()?;
                for _ in 1..ALLOC_REFILL_BATCH {
                    let extra = self.store.allocate_page()?;
                    self.lock_alloc_shard(self.alloc_shard_of(extra))
                        .unassigned
                        .insert(extra);
                }
                p
            }
        };
        // Begin must be logged before the latch; the PageAlloc record is
        // appended *under* it so log order matches mutation order and the
        // page LSN carries the record's exact end (steal/redo gating).
        self.wal_begin(txn)?;
        self.store.with_page_mut(page, |p| {
            p.set_cluster(cluster);
            let lsn = match &self.wal {
                Some(wal) => wal.append(&LogRecord::PageAlloc {
                    txn: txn.0,
                    page,
                    cluster,
                }),
                None => self.bump_lsn(),
            };
            p.set_lsn(lsn);
        })?;
        self.lock_alloc_global()
            .cluster_pages
            .entry(cluster)
            .or_default()
            .insert(page);
        self.lock_alloc_shard(self.alloc_shard_of(page))
            .with_space
            .entry(cluster)
            .or_default()
            .insert(page);
        Ok(page)
    }

    /// `track` marks the insert of a *primary* cell: the new Oid is
    /// registered in the version store from inside the page latch, before
    /// any snapshot reader falling back to the pages could observe the
    /// uncommitted cell. Secondary cells (overflow chunks, moved targets)
    /// are unreachable until their primary publishes them, so they stay
    /// untracked.
    fn raw_insert(&self, txn: TxnId, cluster: ClusterId, cell: &[u8], track: bool) -> Result<Oid> {
        if cell.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge(cell.len()));
        }
        loop {
            let page = self.pick_page(txn, cluster, cell.len())?;
            self.wal_begin(txn)?;
            let outcome = self.store.with_page_mut(page, |p| {
                let r = p.insert(cell);
                if let Ok(slot) = r {
                    let lsn = match &self.wal {
                        Some(wal) => wal.append(&LogRecord::CellInsert {
                            txn: txn.0,
                            page,
                            slot,
                            data: cell.to_vec(),
                        }),
                        None => self.bump_lsn(),
                    };
                    p.set_lsn(lsn);
                    if track {
                        self.versions
                            .note_insert(Oid::new(page, slot).to_u64(), cluster, txn);
                    }
                }
                r
            })?;
            match outcome {
                Ok(slot) => {
                    let oid = Oid::new(page, slot);
                    self.txns
                        .push_undo(txn, UndoOp::UndoInsert { page, slot })?;
                    self.note_space(page)?;
                    return Ok(oid);
                }
                Err(PageOpError::Full) => {
                    // Raced with a concurrent insert; demote and retry.
                    self.note_space(page)?;
                    continue;
                }
                Err(e) => {
                    return Err(StorageError::Corrupt(format!("insert failed: {e:?}")));
                }
            }
        }
    }

    /// Try to overwrite the cell at `oid`; Ok(false) when it does not fit.
    fn raw_update(&self, txn: TxnId, oid: Oid, cell: &[u8]) -> Result<bool> {
        if cell.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge(cell.len()));
        }
        self.wal_begin(txn)?;
        let outcome = self.store.with_page_mut(oid.page(), |p| {
            let before = p.read(oid.slot()).map(<[u8]>::to_vec);
            let Some(before) = before else {
                return Err(StorageError::NoSuchObject(oid));
            };
            match p.update(oid.slot(), cell) {
                Ok(()) => {
                    let lsn = match &self.wal {
                        Some(wal) => wal.append(&LogRecord::CellUpdate {
                            txn: txn.0,
                            page: oid.page(),
                            slot: oid.slot(),
                            data: cell.to_vec(),
                            before: before.clone(),
                        }),
                        None => self.bump_lsn(),
                    };
                    p.set_lsn(lsn);
                    Ok(Some(before))
                }
                Err(PageOpError::Full) => Ok(None),
                Err(e) => Err(StorageError::Corrupt(format!("update failed: {e:?}"))),
            }
        })??;
        match outcome {
            Some(before) => {
                self.txns.push_undo(
                    txn,
                    UndoOp::UndoUpdate {
                        page: oid.page(),
                        slot: oid.slot(),
                        before,
                    },
                )?;
                self.note_space(oid.page())?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Delete a cell — in two phases. The cell is tombstoned in place here
    /// (same slot, same length, so the undo is an in-place tag restore that
    /// cannot fail) and physically removed only when the transaction
    /// commits. The WAL mirrors both phases so recovery repeats history
    /// exactly: the tombstoning is logged as a CellUpdate here, and
    /// `commit_deferred` logs the physical CellDelete just ahead of the
    /// Commit record.
    fn raw_delete(&self, txn: TxnId, oid: Oid) -> Result<()> {
        self.wal_begin(txn)?;
        let before = self.store.with_page_mut(oid.page(), |p| {
            let before = p.read(oid.slot()).map(<[u8]>::to_vec);
            let Some(before) = before else {
                return Err(StorageError::NoSuchObject(oid));
            };
            if before.first() == Some(&TAG_TOMBSTONE) {
                return Err(StorageError::NoSuchObject(oid));
            }
            let mut tomb = before.clone();
            tomb[0] = TAG_TOMBSTONE;
            p.update(oid.slot(), &tomb)
                .map_err(|e| StorageError::Corrupt(format!("delete failed: {e:?}")))?;
            let lsn = match &self.wal {
                Some(wal) => wal.append(&LogRecord::CellUpdate {
                    txn: txn.0,
                    page: oid.page(),
                    slot: oid.slot(),
                    data: tomb,
                    before: before.clone(),
                }),
                None => self.bump_lsn(),
            };
            p.set_lsn(lsn);
            Ok(before)
        })??;
        self.txns.push_undo(
            txn,
            UndoOp::UndoUpdate {
                page: oid.page(),
                slot: oid.slot(),
                before,
            },
        )?;
        self.txns.note_pending_delete(txn, oid)?;
        Ok(())
    }

    fn raw_read(&self, oid: Oid) -> Result<Vec<u8>> {
        self.store.with_page(oid.page(), |p| {
            p.read(oid.slot())
                .map(<[u8]>::to_vec)
                .ok_or(StorageError::NoSuchObject(oid))
        })?
    }

    // ------------------------------------------------------------------
    // Record representation helpers
    // ------------------------------------------------------------------

    fn cluster_of(&self, page: PageId) -> Result<ClusterId> {
        self.store.with_page(page, |p| p.cluster())
    }

    /// Build the primary cell for `data`, allocating overflow chunks when
    /// needed. `moved` selects the forward-target tag variants.
    fn build_cell(
        &self,
        txn: TxnId,
        cluster: ClusterId,
        data: &[u8],
        moved: bool,
    ) -> Result<Vec<u8>> {
        if data.len() <= MAX_INLINE {
            let mut cell = Vec::with_capacity(1 + data.len());
            cell.push(if moved { TAG_MOVED_DATA } else { TAG_DATA });
            cell.extend_from_slice(data);
            return Ok(cell);
        }
        // Overflow: slice into chunks of MAX_INLINE bytes.
        let mut chunk_oids = Vec::new();
        for chunk in data.chunks(MAX_INLINE) {
            let mut cell = Vec::with_capacity(1 + chunk.len());
            cell.push(TAG_OVF_CHUNK);
            cell.extend_from_slice(chunk);
            chunk_oids.push(self.raw_insert(txn, cluster, &cell, false)?);
        }
        let mut head = BytesMut::new();
        head.put_u8(if moved {
            TAG_MOVED_OVF_HEAD
        } else {
            TAG_OVF_HEAD
        });
        head.put_u32_le(data.len() as u32);
        chunk_oids.encode(&mut head);
        let head = head.to_vec();
        if head.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge(data.len()));
        }
        Ok(head)
    }

    /// Decode an overflow head cell into (total_len, chunk oids).
    fn decode_ovf_head(cell: &[u8]) -> Result<(usize, Vec<Oid>)> {
        let mut buf = &cell[1..];
        let total = u32::decode(&mut buf)? as usize;
        let chunks = Vec::<Oid>::decode(&mut buf)?;
        Ok((total, chunks))
    }

    /// Free any secondary storage referenced by a primary/moved cell.
    fn free_secondary(&self, txn: TxnId, cell: &[u8]) -> Result<()> {
        match cell.first() {
            Some(&TAG_OVF_HEAD) | Some(&TAG_MOVED_OVF_HEAD) => {
                let (_, chunks) = Self::decode_ovf_head(cell)?;
                for chunk in chunks {
                    self.raw_delete(txn, chunk)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Resolve `oid` to the physical location of its current data cell and
    /// return that cell's bytes.
    fn resolve(&self, oid: Oid) -> Result<(Oid, Vec<u8>)> {
        let cell = self.raw_read(oid)?;
        match cell.first() {
            Some(&TAG_FORWARD) => {
                let target: Oid = decode_all(&cell[1..])?;
                let cell = self.raw_read(target)?;
                match cell.first() {
                    Some(&TAG_MOVED_DATA) | Some(&TAG_MOVED_OVF_HEAD) => Ok((target, cell)),
                    Some(&TAG_TOMBSTONE) => Err(StorageError::NoSuchObject(oid)),
                    _ => Err(StorageError::Corrupt(format!(
                        "forward stub at {oid} points at a non-moved cell"
                    ))),
                }
            }
            Some(&TAG_DATA) | Some(&TAG_OVF_HEAD) => Ok((oid, cell)),
            // Deleted by a still-active transaction: logically gone.
            Some(&TAG_TOMBSTONE) => Err(StorageError::NoSuchObject(oid)),
            Some(&TAG_MOVED_DATA) | Some(&TAG_MOVED_OVF_HEAD) | Some(&TAG_OVF_CHUNK) => Err(
                StorageError::Corrupt(format!("oid {oid} addresses a secondary cell")),
            ),
            _ => Err(StorageError::Corrupt(format!("empty cell at {oid}"))),
        }
    }

    fn assemble_data(&self, cell: &[u8]) -> Result<Vec<u8>> {
        match cell.first() {
            Some(&TAG_DATA) | Some(&TAG_MOVED_DATA) => Ok(cell[1..].to_vec()),
            Some(&TAG_OVF_HEAD) | Some(&TAG_MOVED_OVF_HEAD) => {
                let (total, chunks) = Self::decode_ovf_head(cell)?;
                let mut out = Vec::with_capacity(total);
                for chunk_oid in chunks {
                    let chunk = self.raw_read(chunk_oid)?;
                    if chunk.first() != Some(&TAG_OVF_CHUNK) {
                        return Err(StorageError::Corrupt(format!(
                            "expected overflow chunk at {chunk_oid}"
                        )));
                    }
                    out.extend_from_slice(&chunk[1..]);
                }
                if out.len() != total {
                    return Err(StorageError::Corrupt(
                        "overflow chain length mismatch".into(),
                    ));
                }
                Ok(out)
            }
            _ => Err(StorageError::Corrupt("unexpected cell tag".into())),
        }
    }

    // ------------------------------------------------------------------
    // Public object operations
    // ------------------------------------------------------------------

    /// Allocate a new persistent object (`pnew`). Returns its stable Oid.
    pub fn allocate(&self, txn: TxnId, cluster: ClusterId, data: &[u8]) -> Result<Oid> {
        self.txns.require_active(txn)?;
        self.require_writer(txn)?;
        let cell = self.build_cell(txn, cluster, data, false)?;
        let oid = self.raw_insert(txn, cluster, &cell, true)?;
        self.txns.track_dirty(txn, oid.to_u64())?;
        self.locks
            .lock(txn, LockKey::Object(oid.to_u64()), LockMode::Exclusive)?;
        Ok(oid)
    }

    /// Read an object's bytes. Snapshot transactions are served at their
    /// registered commit sequence without any lock-manager locks; 2PL
    /// transactions take a shared lock as before.
    pub fn read(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>> {
        self.txns.require_active(txn)?;
        if let Some(s) = self.txns.snapshot_of(txn) {
            self.metrics.snapshot_reads.inc();
            return self
                .snapshot_lookup(s, oid)?
                .ok_or(StorageError::NoSuchObject(oid));
        }
        self.locks
            .lock(txn, LockKey::Object(oid.to_u64()), LockMode::Shared)?;
        let (_, cell) = self.resolve(oid)?;
        self.assemble_data(&cell)
    }

    /// Serve one object read at snapshot `s` (no lock-manager locks).
    ///
    /// The chain answers directly when the object is tracked. Untracked
    /// objects are read from the pages (per-page latches only) and the
    /// chain is *re-checked*: absence on both sides of the page read
    /// proves no writer mutated the object inside the window — every
    /// mutation path registers its chain entry before its first page
    /// write, and entries are never reclaimed while any snapshot (ours
    /// included) is registered. If an entry appeared, the page bytes may
    /// be torn mid-mutation, so the result — errors included — is
    /// discarded and the read retries through the chain.
    fn snapshot_lookup(&self, s: u64, oid: Oid) -> Result<Option<Vec<u8>>> {
        loop {
            match self.versions.visible(oid.to_u64(), s) {
                SnapshotLookup::Value(data) => return Ok(Some(data.to_vec())),
                SnapshotLookup::Deleted => return Ok(None),
                SnapshotLookup::Untracked => {}
            }
            let fallback = match self.resolve(oid) {
                Ok((_, cell)) => self.assemble_data(&cell).map(Some),
                Err(StorageError::NoSuchObject(_)) => Ok(None),
                Err(e) => Err(e),
            };
            if matches!(
                self.versions.visible(oid.to_u64(), s),
                SnapshotLookup::Untracked
            ) {
                return fallback;
            }
        }
    }

    /// Overwrite an object's bytes (exclusive lock). The Oid stays valid
    /// even when the record has to move to another page.
    pub fn update(&self, txn: TxnId, oid: Oid, data: &[u8]) -> Result<()> {
        self.txns.require_active(txn)?;
        self.require_writer(txn)?;
        self.locks
            .lock(txn, LockKey::Object(oid.to_u64()), LockMode::Exclusive)?;
        self.update_unlocked(txn, oid, data)
    }

    /// The update machinery without object locking (roots updates hold the
    /// dedicated Roots lock instead).
    fn update_unlocked(&self, txn: TxnId, oid: Oid, data: &[u8]) -> Result<()> {
        let (phys, old_cell) = self.resolve(oid)?;
        let cluster = self.cluster_of(oid.page())?;
        // First touch of this object: seed its committed value into the
        // version store before any page mutation. The X lock (or Roots
        // lock) is already held, so the cell just resolved *is* the
        // committed value — no other writer can be mid-flight on it.
        if self.txns.track_dirty(txn, oid.to_u64())? {
            self.versions
                .seed(oid.to_u64(), cluster, txn, self.assemble_data(&old_cell)?);
        }
        // Free old overflow chunks first so their space is reusable.
        self.free_secondary(txn, &old_cell)?;
        let moved = phys != oid;
        let new_cell = self.build_cell(txn, cluster, data, moved)?;
        if self.raw_update(txn, phys, &new_cell)? {
            return Ok(());
        }
        // Did not fit where it was: place elsewhere and (re)point the stub.
        let target_cell = self.build_cell(txn, cluster, data, true)?;
        let target = self.raw_insert(txn, cluster, &target_cell, false)?;
        let mut stub = Vec::with_capacity(7);
        stub.push(TAG_FORWARD);
        stub.extend_from_slice(&encode_to_vec(&target));
        if !self.raw_update(txn, oid, &stub)? {
            // A 7-byte stub always fits where a data cell lived.
            return Err(StorageError::Corrupt(format!(
                "forward stub did not fit at {oid}"
            )));
        }
        if moved {
            // The record had already been moved once; free the old copy.
            self.raw_delete(txn, phys)?;
        }
        Ok(())
    }

    /// Delete an object (`pdelete`).
    pub fn free(&self, txn: TxnId, oid: Oid) -> Result<()> {
        self.txns.require_active(txn)?;
        self.require_writer(txn)?;
        self.locks
            .lock(txn, LockKey::Object(oid.to_u64()), LockMode::Exclusive)?;
        let (phys, cell) = self.resolve(oid)?;
        // Seed the committed value before tombstoning (first touch only).
        if self.txns.track_dirty(txn, oid.to_u64())? {
            let cluster = self.cluster_of(oid.page())?;
            self.versions
                .seed(oid.to_u64(), cluster, txn, self.assemble_data(&cell)?);
        }
        self.free_secondary(txn, &cell)?;
        self.raw_delete(txn, phys)?;
        if phys != oid {
            self.raw_delete(txn, oid)?;
        }
        Ok(())
    }

    /// Does the object exist? (Shared lock; lock-free for snapshots.)
    pub fn exists(&self, txn: TxnId, oid: Oid) -> Result<bool> {
        self.txns.require_active(txn)?;
        if let Some(s) = self.txns.snapshot_of(txn) {
            self.metrics.snapshot_reads.inc();
            return Ok(self.snapshot_lookup(s, oid)?.is_some());
        }
        self.locks
            .lock(txn, LockKey::Object(oid.to_u64()), LockMode::Shared)?;
        match self.resolve(oid) {
            Ok(_) => Ok(true),
            Err(StorageError::NoSuchObject(_)) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// All object Oids in a cluster (O++'s `for x in cluster` iteration).
    /// Objects are reported under their stable primary Oids.
    pub fn scan_cluster(&self, txn: TxnId, cluster: ClusterId) -> Result<Vec<Oid>> {
        self.txns.require_active(txn)?;
        if let Some(s) = self.txns.snapshot_of(txn) {
            return self.snapshot_scan(s, cluster);
        }
        self.locks
            .lock(txn, LockKey::Cluster(cluster), LockMode::Shared)?;
        let mut oids = Vec::new();
        for page in self.cluster_page_list(cluster) {
            self.store.with_page(page, |p| {
                for (slot, cell) in p.occupied_cells() {
                    match cell.first() {
                        Some(&TAG_DATA) | Some(&TAG_FORWARD) | Some(&TAG_OVF_HEAD) => {
                            oids.push(Oid::new(page, slot));
                        }
                        _ => {}
                    }
                }
            })?;
        }
        Ok(oids)
    }

    /// The pages currently assigned to `cluster` (allocator's view).
    fn cluster_page_list(&self, cluster: ClusterId) -> Vec<PageId> {
        let global = self.lock_alloc_global();
        global
            .cluster_pages
            .get(&cluster)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Cluster scan at snapshot `s` — no cluster lock, no object locks.
    ///
    /// Candidates come from two sides: page enumeration of primary cells
    /// (which may include uncommitted inserts and miss objects whose cells
    /// were purged after the snapshot began) and the version chains'
    /// member list (which covers the purged ones). Every candidate is then
    /// filtered through [`Storage::snapshot_lookup`], whose fallback
    /// protocol rejects anything not committed at the snapshot.
    fn snapshot_scan(&self, s: u64, cluster: ClusterId) -> Result<Vec<Oid>> {
        self.metrics.snapshot_reads.inc();
        let mut candidates: BTreeSet<Oid> = BTreeSet::new();
        for page in self.cluster_page_list(cluster) {
            self.store.with_page(page, |p| {
                for (slot, cell) in p.occupied_cells() {
                    match cell.first() {
                        Some(&TAG_DATA) | Some(&TAG_FORWARD) | Some(&TAG_OVF_HEAD) => {
                            candidates.insert(Oid::new(page, slot));
                        }
                        _ => {}
                    }
                }
            })?;
        }
        for oid in self.versions.cluster_members(cluster, s) {
            candidates.insert(Oid::from_u64(oid));
        }
        let mut oids = Vec::with_capacity(candidates.len());
        for oid in candidates {
            if self.snapshot_lookup(s, oid)?.is_some() {
                oids.push(oid);
            }
        }
        Ok(oids)
    }

    // ------------------------------------------------------------------
    // Roots and clusters
    // ------------------------------------------------------------------

    fn read_roots(&self) -> Result<RootsRecord> {
        let (_, cell) = self.resolve(ROOTS_OID)?;
        decode_all(&self.assemble_data(&cell)?)
    }

    fn write_roots(&self, txn: TxnId, record: &RootsRecord) -> Result<()> {
        self.update_unlocked(txn, ROOTS_OID, &encode_to_vec(record))
    }

    /// Allocate a fresh cluster id (persisted in the roots record).
    pub fn create_cluster(&self, txn: TxnId) -> Result<ClusterId> {
        self.txns.require_active(txn)?;
        self.require_writer(txn)?;
        self.locks.lock(txn, LockKey::Roots, LockMode::Exclusive)?;
        let mut record = self.read_roots()?;
        let id = record.next_cluster;
        record.next_cluster += 1;
        self.write_roots(txn, &record)?;
        Ok(id)
    }

    /// Look up a named root. Snapshot transactions decode the roots record
    /// via the version store — no Roots lock.
    pub fn get_root(&self, txn: TxnId, name: &str) -> Result<Oid> {
        self.txns.require_active(txn)?;
        let record = if let Some(s) = self.txns.snapshot_of(txn) {
            self.metrics.snapshot_reads.inc();
            let data = self
                .snapshot_lookup(s, ROOTS_OID)?
                .ok_or_else(|| StorageError::Corrupt("roots record missing".into()))?;
            decode_all::<RootsRecord>(&data)?
        } else {
            self.locks.lock(txn, LockKey::Roots, LockMode::Shared)?;
            self.read_roots()?
        };
        record
            .roots
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, oid)| *oid)
            .ok_or_else(|| StorageError::NoSuchRoot(name.to_string()))
    }

    /// Create or replace a named root.
    pub fn set_root(&self, txn: TxnId, name: &str, oid: Oid) -> Result<()> {
        self.txns.require_active(txn)?;
        self.require_writer(txn)?;
        self.locks.lock(txn, LockKey::Roots, LockMode::Exclusive)?;
        let mut record = self.read_roots()?;
        match record.roots.iter_mut().find(|(n, _)| n == name) {
            Some(entry) => entry.1 = oid,
            None => record.roots.push((name.to_string(), oid)),
        }
        self.write_roots(txn, &record)
    }

    /// Remove a named root (missing names are fine).
    pub fn del_root(&self, txn: TxnId, name: &str) -> Result<()> {
        self.txns.require_active(txn)?;
        self.require_writer(txn)?;
        self.locks.lock(txn, LockKey::Roots, LockMode::Exclusive)?;
        let mut record = self.read_roots()?;
        record.roots.retain(|(n, _)| n != name);
        self.write_roots(txn, &record)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Lock-manager counters (experiment E4).
    pub fn lock_stats(&self) -> LockStats {
        self.locks.stats()
    }

    /// Reset lock counters.
    pub fn reset_lock_stats(&self) {
        self.locks.reset_stats()
    }

    /// Buffer pool statistics (disk engine; None for memory).
    pub fn pool_stats(&self) -> Option<PoolStats> {
        match &self.store {
            Store::Disk(pool) => Some(pool.stats()),
            Store::Mem(_) => None,
        }
    }

    /// Engine kind in use.
    pub fn engine(&self) -> EngineKind {
        self.options.engine
    }

    /// Total pages (including header/reserved page 0).
    pub fn page_count(&self) -> u32 {
        self.store.page_count()
    }

    /// Direct access to the lock manager (the object layer adds its own
    /// lock protocols for trigger descriptors).
    pub fn lock_manager(&self) -> &LockManager {
        &self.locks
    }

    /// Direct access to the transaction registry.
    pub fn txn_manager(&self) -> &TxnManager {
        &self.txns
    }

    /// The WAL durability watermark, if a WAL is present. Every commit
    /// whose ticket LSN is `<=` this value is durable.
    pub fn wal_flushed_lsn(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.flushed_lsn())
    }

    /// Current on-disk size of the WAL file in bytes (None without a
    /// WAL). Shrinks when a fuzzy checkpoint truncates the prefix — the
    /// steady-state log-size signal the larger-than-RAM bench watches.
    pub fn wal_file_len(&self) -> Option<u64> {
        self.wal.as_ref().and_then(|w| w.file_len().ok())
    }

    /// Total buffer pool frame capacity (disk engine; None for memory).
    /// Once steal is enabled (a WAL is attached) resident pages never
    /// exceed this bound, whatever the working-set size.
    pub fn pool_capacity(&self) -> Option<usize> {
        match &self.store {
            Store::Disk(pool) => Some(pool.capacity()),
            Store::Mem(_) => None,
        }
    }

    /// Per-shard buffer pool statistics (disk engine; None for memory).
    pub fn pool_shard_stats(&self) -> Option<Vec<crate::buffer::ShardStats>> {
        match &self.store {
            Store::Disk(pool) => Some(pool.shard_stats()),
            Store::Mem(_) => None,
        }
    }

    /// Shape of the MVCC version store: live chain entries, retained
    /// versions, the published commit sequence, and registered snapshots.
    pub fn version_stats(&self) -> VersionStats {
        self.versions.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_testutil::TempDir;

    fn disk_storage(dir: &TempDir) -> Storage {
        Storage::create(dir.path(), StorageOptions::default()).unwrap()
    }

    #[test]
    fn allocate_read_roundtrip_volatile() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let oid = s.allocate(t, c, b"payload").unwrap();
        assert_eq!(s.read(t, oid).unwrap(), b"payload");
        s.commit(t).unwrap();
        let t2 = s.begin().unwrap();
        assert_eq!(s.read(t2, oid).unwrap(), b"payload");
        s.commit(t2).unwrap();
    }

    #[test]
    fn update_and_free() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let oid = s.allocate(t, c, b"v1").unwrap();
        s.update(t, oid, b"v2 is longer").unwrap();
        assert_eq!(s.read(t, oid).unwrap(), b"v2 is longer");
        s.free(t, oid).unwrap();
        assert!(matches!(s.read(t, oid), Err(StorageError::NoSuchObject(_))));
        s.commit(t).unwrap();
    }

    #[test]
    fn abort_rolls_back_everything() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let keep = s.allocate(t, c, b"keep").unwrap();
        s.commit(t).unwrap();

        let t = s.begin().unwrap();
        let gone = s.allocate(t, c, b"gone").unwrap();
        s.update(t, keep, b"dirty").unwrap();
        s.abort(t).unwrap();

        let t = s.begin().unwrap();
        assert_eq!(s.read(t, keep).unwrap(), b"keep");
        assert!(matches!(
            s.read(t, gone),
            Err(StorageError::NoSuchObject(_))
        ));
        s.commit(t).unwrap();
    }

    #[test]
    fn abort_restores_when_freed_space_was_claimed() {
        // Pages are shared between transactions: the space one
        // transaction's shrinking update frees can be claimed by another
        // transaction's insert before the first one aborts. The undo of
        // the shrink then no longer fits in place and must relocate the
        // before-image behind a forward stub — and, regression: it must
        // never bail out of abort with the locks still held.
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let big = vec![7u8; 3000];
        let a = s.allocate(t, c, &big).unwrap();
        s.commit(t).unwrap();

        // Shrink `a`, freeing ~3KB on its page, but do not commit.
        let t1 = s.begin().unwrap();
        s.update(t1, a, b"tiny").unwrap();

        // A concurrent transaction claims most of the freed space.
        let t2 = s.begin().unwrap();
        let b = s.allocate(t2, c, &vec![8u8; 2500]).unwrap();
        s.commit(t2).unwrap();

        // The in-place grow-back is now impossible; abort must still
        // restore the committed value (relocated) and release all locks.
        s.abort(t1).unwrap();

        let t3 = s.begin().unwrap();
        assert_eq!(s.read(t3, a).unwrap(), big);
        assert_eq!(s.read(t3, b).unwrap(), vec![8u8; 2500]);
        // The exclusive lock t1 held on `a` must be gone: this would
        // otherwise block for the full lock timeout and fail.
        s.update(t3, a, b"writable again").unwrap();
        assert_eq!(s.read(t3, a).unwrap(), b"writable again");
        s.commit(t3).unwrap();
    }

    #[test]
    fn forwarding_keeps_oid_stable() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        // Fill a page almost completely so growth forces relocation.
        let oid = s.allocate(t, c, &[1u8; 100]).unwrap();
        let mut fillers = Vec::new();
        for _ in 0..38 {
            fillers.push(s.allocate(t, c, &[2u8; 90]).unwrap());
        }
        // Grow the first record far past the remaining space on its page.
        let big = vec![3u8; 2000];
        s.update(t, oid, &big).unwrap();
        assert_eq!(s.read(t, oid).unwrap(), big);
        // Grow it again (already forwarded): stub must be re-pointed.
        let bigger = vec![4u8; 3000];
        s.update(t, oid, &bigger).unwrap();
        assert_eq!(s.read(t, oid).unwrap(), bigger);
        // Shrink it back; still readable through the same Oid.
        s.update(t, oid, b"small again").unwrap();
        assert_eq!(s.read(t, oid).unwrap(), b"small again");
        for f in fillers {
            assert_eq!(s.read(t, f).unwrap(), vec![2u8; 90]);
        }
        s.commit(t).unwrap();
    }

    #[test]
    fn large_objects_overflow() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let oid = s.allocate(t, c, &data).unwrap();
        assert_eq!(s.read(t, oid).unwrap(), data);
        // Update large -> larger.
        let data2: Vec<u8> = (0..30_000u32).map(|i| (i % 13) as u8).collect();
        s.update(t, oid, &data2).unwrap();
        assert_eq!(s.read(t, oid).unwrap(), data2);
        // Update large -> small inline.
        s.update(t, oid, b"tiny").unwrap();
        assert_eq!(s.read(t, oid).unwrap(), b"tiny");
        s.free(t, oid).unwrap();
        s.commit(t).unwrap();
    }

    #[test]
    fn scan_cluster_lists_primaries_once() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let mut expected = Vec::new();
        for i in 0..50u32 {
            expected.push(s.allocate(t, c, &i.to_le_bytes()).unwrap());
        }
        // Force one object to move (forwarding) and one to overflow.
        s.update(t, expected[0], &vec![9u8; 3000]).unwrap();
        s.update(t, expected[1], &vec![8u8; 9000]).unwrap();
        let mut scanned = s.scan_cluster(t, c).unwrap();
        scanned.sort();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort();
        assert_eq!(scanned, expected_sorted);
        s.commit(t).unwrap();
    }

    #[test]
    fn scan_does_not_cross_clusters() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c1 = s.create_cluster(t).unwrap();
        let c2 = s.create_cluster(t).unwrap();
        s.allocate(t, c1, b"one").unwrap();
        s.allocate(t, c2, b"two").unwrap();
        assert_eq!(s.scan_cluster(t, c1).unwrap().len(), 1);
        assert_eq!(s.scan_cluster(t, c2).unwrap().len(), 1);
        s.commit(t).unwrap();
    }

    #[test]
    fn roots_roundtrip() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let oid = s.allocate(t, c, b"rooted").unwrap();
        s.set_root(t, "main", oid).unwrap();
        assert_eq!(s.get_root(t, "main").unwrap(), oid);
        s.set_root(t, "main", ROOTS_OID).unwrap();
        assert_eq!(s.get_root(t, "main").unwrap(), ROOTS_OID);
        s.del_root(t, "main").unwrap();
        assert!(matches!(
            s.get_root(t, "main"),
            Err(StorageError::NoSuchRoot(_))
        ));
        s.commit(t).unwrap();
    }

    #[test]
    fn disk_persistence_across_reopen() {
        let dir = TempDir::new("store");
        let oid;
        let cluster;
        {
            let s = disk_storage(&dir);
            let t = s.begin().unwrap();
            cluster = s.create_cluster(t).unwrap();
            oid = s.allocate(t, cluster, b"persistent").unwrap();
            s.set_root(t, "obj", oid).unwrap();
            s.commit(t).unwrap();
            s.close().unwrap();
        }
        {
            let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
            let t = s.begin().unwrap();
            assert_eq!(s.get_root(t, "obj").unwrap(), oid);
            assert_eq!(s.read(t, oid).unwrap(), b"persistent");
            assert_eq!(s.scan_cluster(t, cluster).unwrap(), vec![oid]);
            // Cluster counter continues, does not collide.
            let c2 = s.create_cluster(t).unwrap();
            assert!(c2 > cluster);
            s.commit(t).unwrap();
        }
    }

    #[test]
    fn crash_recovery_replays_committed_only() {
        let dir = TempDir::new("store");
        let committed;
        let uncommitted;
        {
            let s = disk_storage(&dir);
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            committed = s.allocate(t, c, b"committed").unwrap();
            s.set_root(t, "c", committed).unwrap();
            s.commit(t).unwrap();
            let t2 = s.begin().unwrap();
            uncommitted = s.allocate(t2, c, b"uncommitted").unwrap();
            // Simulate a crash: drop without commit, abort, or checkpoint.
            let _ = uncommitted;
            std::mem::forget(s);
        }
        {
            let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
            let t = s.begin().unwrap();
            assert_eq!(s.read(t, committed).unwrap(), b"committed");
            assert!(matches!(
                s.read(t, uncommitted),
                Err(StorageError::NoSuchObject(_))
            ));
            s.commit(t).unwrap();
        }
    }

    #[test]
    fn crash_after_abort_relocation_then_committed_update_recovers() {
        // Review regression (high): an abort that relocates a before-image
        // physically rewrites pages under the *aborting* transaction's
        // records. Recovery must repeat those repairs — a later committed
        // update addresses the relocated page/slot, and skipping the
        // abort's records would make that update unreplayable (page
        // missing or slot empty ⇒ Corrupt ⇒ database unrecoverable).
        let dir = TempDir::new("store");
        let big = vec![7u8; 3000];
        let a;
        let b;
        {
            let s = disk_storage(&dir);
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            a = s.allocate(t, c, &big).unwrap();
            s.commit(t).unwrap();

            // Shrink `a` (freeing ~3KB), let a concurrent commit claim the
            // space, then abort: the undo relocates the before-image to
            // another page behind a forward stub.
            let t1 = s.begin().unwrap();
            s.update(t1, a, b"tiny").unwrap();
            let t2 = s.begin().unwrap();
            b = s.allocate(t2, c, &vec![8u8; 2500]).unwrap();
            s.commit(t2).unwrap();
            s.abort(t1).unwrap();

            // A later committed transaction updates the moved object: its
            // CellUpdate addresses the relocated location.
            let t3 = s.begin().unwrap();
            assert_eq!(s.read(t3, a).unwrap(), big);
            s.update(t3, a, b"updated after relocation").unwrap();
            s.commit(t3).unwrap();
            std::mem::forget(s); // crash: no checkpoint
        }
        let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = s.begin().unwrap();
        assert_eq!(s.read(t, a).unwrap(), b"updated after relocation");
        assert_eq!(s.read(t, b).unwrap(), vec![8u8; 2500]);
        s.commit(t).unwrap();
    }

    #[test]
    fn committed_insert_into_space_freed_by_uncommitted_shrink_recovers() {
        // Review regression (same root cause, pre-existing): a committed
        // insert that claimed space freed by an *in-flight* transaction's
        // shrink must replay — repeat history applies the shrink first,
        // then rolls the loser back (relocating its before-image when the
        // committed insert is in the way).
        let dir = TempDir::new("store");
        let big = vec![5u8; 3000];
        let a;
        let b;
        {
            let s = disk_storage(&dir);
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            a = s.allocate(t, c, &big).unwrap();
            s.commit(t).unwrap();

            let t1 = s.begin().unwrap();
            s.update(t1, a, b"tiny").unwrap();
            let t2 = s.begin().unwrap();
            b = s.allocate(t2, c, &vec![6u8; 2500]).unwrap();
            s.commit(t2).unwrap();
            // Crash with t1 still in flight.
            std::mem::forget(s);
        }
        let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = s.begin().unwrap();
        // The loser's shrink rolled back to the committed value…
        assert_eq!(s.read(t, a).unwrap(), big);
        // …and the committed insert survived.
        assert_eq!(s.read(t, b).unwrap(), vec![6u8; 2500]);
        // The rolled-back object is fully writable (stub chain intact).
        s.update(t, a, b"writable").unwrap();
        assert_eq!(s.read(t, a).unwrap(), b"writable");
        s.commit(t).unwrap();
    }

    #[test]
    fn read_only_commit_waits_for_observed_writers() {
        // Review regression (medium): commit_deferred releases a writer's
        // locks before its Commit record is durable. A read-only
        // transaction that reads those writes must not be acknowledged
        // until the writer is durable — otherwise a crash could discard
        // state an acknowledged read already observed.
        let dir = TempDir::new("store");
        let s = disk_storage(&dir);
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let oid = s.allocate(t, c, b"v1").unwrap();
        s.commit(t).unwrap();

        // Writer commits logically (locks released) but is not durable.
        let w = s.begin().unwrap();
        s.update(w, oid, b"v2").unwrap();
        let w_ticket = s.commit_deferred(w).unwrap();
        let w_lsn = w_ticket.lsn().unwrap();
        assert!(s.wal_flushed_lsn().unwrap() < w_lsn);

        // The read-only transaction observes the write; its (append-free)
        // commit must drag the watermark past the writer's Commit record
        // before returning.
        let before = s.metrics().snapshot();
        let r = s.begin().unwrap();
        assert_eq!(s.read(r, oid).unwrap(), b"v2");
        let r_ticket = s.commit_deferred(r).unwrap();
        assert!(r_ticket.lsn().is_none(), "read-only: no Commit record");
        s.commit_wait(r_ticket).unwrap();
        assert!(
            s.wal_flushed_lsn().unwrap() >= w_lsn,
            "acknowledged read-only commit implies durable writers"
        );
        let after = s.metrics().snapshot();
        assert_eq!(after.wal_appends, before.wal_appends);
        s.commit_wait(w_ticket).unwrap();
    }

    #[test]
    fn memory_engine_checkpoint_persistence() {
        let dir = TempDir::new("store");
        let oid;
        {
            let s = Storage::create(dir.path(), StorageOptions::memory()).unwrap();
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            oid = s.allocate(t, c, b"mm-ode").unwrap();
            s.set_root(t, "x", oid).unwrap();
            s.commit(t).unwrap();
            s.close().unwrap();
        }
        {
            let s = Storage::open(dir.path(), StorageOptions::memory()).unwrap();
            let t = s.begin().unwrap();
            assert_eq!(s.read(t, oid).unwrap(), b"mm-ode");
            s.commit(t).unwrap();
        }
    }

    #[test]
    fn memory_engine_crash_recovery_via_wal() {
        let dir = TempDir::new("store");
        let oid;
        {
            let s = Storage::create(dir.path(), StorageOptions::memory()).unwrap();
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            oid = s.allocate(t, c, b"logged").unwrap();
            s.set_root(t, "x", oid).unwrap();
            s.commit(t).unwrap();
            std::mem::forget(s); // crash: no checkpoint taken
        }
        {
            let s = Storage::open(dir.path(), StorageOptions::memory()).unwrap();
            let t = s.begin().unwrap();
            assert_eq!(s.read(t, oid).unwrap(), b"logged");
            s.commit(t).unwrap();
        }
    }

    #[test]
    fn operations_require_active_txn() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let oid = s.allocate(t, c, b"x").unwrap();
        s.commit(t).unwrap();
        assert!(matches!(s.read(t, oid), Err(StorageError::TxnNotActive(_))));
        assert!(matches!(s.commit(t), Err(StorageError::TxnNotActive(_))));
    }

    #[test]
    fn two_phase_locking_blocks_writers() {
        use std::sync::Arc;
        let s = Arc::new(Storage::volatile());
        let t1 = s.begin().unwrap();
        let c = s.create_cluster(t1).unwrap();
        let oid = s.allocate(t1, c, b"shared").unwrap();
        s.commit(t1).unwrap();

        let reader = s.begin().unwrap();
        s.read(reader, oid).unwrap();
        let s2 = Arc::clone(&s);
        let writer = std::thread::spawn(move || {
            let w = s2.begin().unwrap();
            s2.update(w, oid, b"written").unwrap();
            s2.commit(w).unwrap();
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            !writer.is_finished(),
            "writer must wait for reader's S lock"
        );
        s.commit(reader).unwrap();
        writer.join().unwrap();
        let t = s.begin().unwrap();
        assert_eq!(s.read(t, oid).unwrap(), b"written");
        s.commit(t).unwrap();
    }

    #[test]
    fn commit_dependency_aborts_dependent() {
        let s = Storage::volatile();
        let a = s.begin().unwrap();
        let b = s.begin_system().unwrap();
        s.add_commit_dependency(b, a).unwrap();
        s.abort(a).unwrap();
        assert!(matches!(
            s.commit(b),
            Err(StorageError::DependencyAborted { .. })
        ));
        // b was auto-aborted by the failed commit.
        assert_eq!(s.txn_manager().state(b), Some(TxnState::Aborted));
    }

    #[test]
    fn auto_checkpoint_truncates_log() {
        let dir = TempDir::new("store");
        let opts = StorageOptions {
            checkpoint_every: 2,
            ..StorageOptions::default()
        };
        let s = Storage::create(dir.path(), opts).unwrap();
        for i in 0..5u32 {
            let t = s.begin().unwrap();
            let c = if i == 0 {
                s.create_cluster(t).unwrap()
            } else {
                FIRST_USER_CLUSTER
            };
            s.allocate(t, c, b"row").unwrap();
            s.commit(t).unwrap();
        }
        // After ≥2 commits a checkpoint ran; log holds at most 2 commits'
        // worth of records.
        let records = Wal::read_all(&dir.path().join("wal.log")).unwrap();
        let commits = records
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Commit { .. }))
            .count();
        assert!(commits < 5, "log should have been truncated, got {commits}");
    }

    #[test]
    fn read_only_commit_skips_the_wal_entirely() {
        let dir = TempDir::new("store");
        let opts = StorageOptions {
            fsync: true,
            ..StorageOptions::default()
        };
        let s = Storage::create(dir.path(), opts).unwrap();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let oid = s.allocate(t, c, b"data").unwrap();
        s.commit(t).unwrap();

        let before = s.metrics().snapshot();
        let t = s.begin().unwrap();
        assert_eq!(s.read(t, oid).unwrap(), b"data");
        assert!(s.exists(t, oid).unwrap());
        s.commit(t).unwrap();
        let after = s.metrics().snapshot();
        assert_eq!(after.wal_appends, before.wal_appends, "no WAL appends");
        assert_eq!(after.wal_fsyncs, before.wal_fsyncs, "no WAL fsyncs");
        assert_eq!(after.wal_bytes, before.wal_bytes);
        assert_eq!(after.txn_commits, before.txn_commits + 1);
    }

    #[test]
    fn read_only_abort_skips_the_wal_entirely() {
        let dir = TempDir::new("store");
        let s = disk_storage(&dir);
        let before = s.metrics().snapshot();
        let t = s.begin().unwrap();
        s.abort(t).unwrap();
        let after = s.metrics().snapshot();
        assert_eq!(after.wal_appends, before.wal_appends);
    }

    #[test]
    fn concurrent_commits_group_into_fewer_fsyncs() {
        use std::sync::Barrier;
        let dir = TempDir::new("store");
        let opts = StorageOptions {
            fsync: true,
            ..StorageOptions::default()
        };
        let s = Arc::new(Storage::create(dir.path(), opts).unwrap());
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        s.commit(t).unwrap();

        const N: usize = 8;
        let before = s.metrics().snapshot();
        let barrier = Arc::new(Barrier::new(N));
        let handles: Vec<_> = (0..N)
            .map(|i| {
                let s = Arc::clone(&s);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let t = s.begin().unwrap();
                    s.allocate(t, c, &[i as u8; 16]).unwrap();
                    s.commit(t).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let after = s.metrics().snapshot();
        assert_eq!(
            after.wal_group_size_sum - before.wal_group_size_sum,
            N as u64,
            "every commit rides in exactly one group"
        );
        // All writes landed and are visible.
        let t = s.begin().unwrap();
        assert_eq!(s.scan_cluster(t, c).unwrap().len(), N);
        s.commit(t).unwrap();
    }

    #[test]
    fn commit_deferred_then_wait_is_durable() {
        let dir = TempDir::new("store");
        let s = disk_storage(&dir);
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let oid = s.allocate(t, c, b"deferred").unwrap();
        let ticket = s.commit_deferred(t).unwrap();
        assert!(ticket.lsn().is_some());
        // Committed state is already visible (locks released)…
        assert_eq!(s.txn_manager().state(t), Some(TxnState::Committed));
        s.commit_wait(ticket).unwrap();
        // …and after the wait the watermark covers the commit record.
        assert!(s.wal_flushed_lsn().unwrap() >= ticket.lsn().unwrap());
        let t2 = s.begin().unwrap();
        assert_eq!(s.read(t2, oid).unwrap(), b"deferred");
        s.commit(t2).unwrap();
    }

    #[test]
    fn write_fault_fails_commit_and_recovery_drops_it() {
        let dir = TempDir::new("store");
        let injector = Arc::new(FaultInjector::new());
        let opts = StorageOptions {
            fsync: true,
            fault: Some(Arc::clone(&injector)),
            ..StorageOptions::default()
        };
        let survivor;
        let casualty;
        let cluster;
        {
            let s = Storage::create(dir.path(), opts).unwrap();
            let t = s.begin().unwrap();
            cluster = s.create_cluster(t).unwrap();
            survivor = s.allocate(t, cluster, b"before fault").unwrap();
            s.commit(t).unwrap();

            // Kill the device before any further bytes land: the next
            // commit's batch never reaches the file at all.
            injector.arm_write_cap(0);
            let t = s.begin().unwrap();
            casualty = s.allocate(t, cluster, b"never durable").unwrap();
            assert!(matches!(s.commit(t), Err(StorageError::WalPoisoned(_))));
            // The log stays poisoned even for later transactions.
            let t = s.begin().unwrap();
            s.allocate(t, cluster, b"also doomed").unwrap();
            assert!(matches!(s.commit(t), Err(StorageError::WalPoisoned(_))));
            assert!(injector.tripped());
            std::mem::forget(s); // crash
        }
        injector.disarm();
        let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = s.begin().unwrap();
        assert_eq!(s.read(t, survivor).unwrap(), b"before fault");
        assert!(matches!(
            s.read(t, casualty),
            Err(StorageError::NoSuchObject(_))
        ));
        assert_eq!(s.scan_cluster(t, cluster).unwrap(), vec![survivor]);
        s.commit(t).unwrap();
    }

    #[test]
    fn many_objects_spread_over_pages() {
        let s = Storage::volatile();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let mut oids = Vec::new();
        for i in 0..2000u32 {
            oids.push(s.allocate(t, c, &encode_to_vec(&i)).unwrap());
        }
        s.commit(t).unwrap();
        let t = s.begin().unwrap();
        for (i, oid) in oids.iter().enumerate() {
            let v: u32 = decode_all(&s.read(t, *oid).unwrap()).unwrap();
            assert_eq!(v as usize, i);
        }
        assert!(s.page_count() > 2, "objects must span multiple pages");
        s.commit(t).unwrap();
    }

    // ------------------------------------------------------------------
    // MVCC snapshot reads
    // ------------------------------------------------------------------

    #[test]
    fn snapshot_rejects_writes() {
        let s = Storage::volatile();
        let (cluster, oid) = {
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let o = s.allocate(t, c, b"x").unwrap();
            s.commit(t).unwrap();
            (c, o)
        };
        let r = s.begin_read_only().unwrap();
        assert!(s.is_read_only(r));
        assert!(matches!(
            s.allocate(r, cluster, b"y"),
            Err(StorageError::ReadOnlyTxn(_))
        ));
        assert!(matches!(
            s.update(r, oid, b"y"),
            Err(StorageError::ReadOnlyTxn(_))
        ));
        assert!(matches!(s.free(r, oid), Err(StorageError::ReadOnlyTxn(_))));
        assert!(matches!(
            s.create_cluster(r),
            Err(StorageError::ReadOnlyTxn(_))
        ));
        assert!(matches!(
            s.set_root(r, "r", oid),
            Err(StorageError::ReadOnlyTxn(_))
        ));
        // Reads still work, and commit releases the snapshot.
        assert_eq!(s.read(r, oid).unwrap(), b"x");
        s.commit(r).unwrap();
        assert_eq!(s.version_stats().active_snapshots, 0);
    }

    #[test]
    fn snapshot_ignores_later_commits_and_uncommitted_writes() {
        let s = Storage::volatile();
        let (cluster, oid) = {
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let o = s.allocate(t, c, b"v1").unwrap();
            s.commit(t).unwrap();
            (c, o)
        };
        let r = s.begin_read_only().unwrap();
        // An uncommitted overwrite is invisible...
        let w = s.begin().unwrap();
        s.update(w, oid, b"v2").unwrap();
        let fresh = s.allocate(w, cluster, b"new").unwrap();
        assert_eq!(s.read(r, oid).unwrap(), b"v1");
        assert!(!s.exists(r, fresh).unwrap());
        // ...and stays invisible to this snapshot after the commit.
        s.commit(w).unwrap();
        assert_eq!(s.read(r, oid).unwrap(), b"v1");
        assert!(!s.exists(r, fresh).unwrap());
        assert_eq!(s.scan_cluster(r, cluster).unwrap(), vec![oid]);
        s.commit(r).unwrap();
        // A snapshot begun after the commit sees everything.
        let r2 = s.begin_read_only().unwrap();
        assert_eq!(s.read(r2, oid).unwrap(), b"v2");
        assert!(s.exists(r2, fresh).unwrap());
        assert_eq!(s.scan_cluster(r2, cluster).unwrap(), vec![oid, fresh]);
        s.commit(r2).unwrap();
    }

    #[test]
    fn snapshot_sees_objects_deleted_after_it_began() {
        let s = Storage::volatile();
        let (cluster, oid) = {
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let o = s.allocate(t, c, b"doomed").unwrap();
            s.commit(t).unwrap();
            (c, o)
        };
        let r = s.begin_read_only().unwrap();
        let w = s.begin().unwrap();
        s.free(w, oid).unwrap();
        s.commit(w).unwrap();
        // The cell is physically purged, but the chain still answers.
        assert_eq!(s.read(r, oid).unwrap(), b"doomed");
        assert_eq!(s.scan_cluster(r, cluster).unwrap(), vec![oid]);
        s.commit(r).unwrap();
        let r2 = s.begin_read_only().unwrap();
        assert!(!s.exists(r2, oid).unwrap());
        assert!(s.scan_cluster(r2, cluster).unwrap().is_empty());
        s.commit(r2).unwrap();
    }

    #[test]
    fn snapshot_never_sees_aborted_writes() {
        let s = Storage::volatile();
        let (cluster, oid) = {
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let o = s.allocate(t, c, b"keep").unwrap();
            s.commit(t).unwrap();
            (c, o)
        };
        let r = s.begin_read_only().unwrap();
        let w = s.begin().unwrap();
        s.update(w, oid, b"discard").unwrap();
        let ghost = s.allocate(w, cluster, b"ghost").unwrap();
        s.abort(w).unwrap();
        assert_eq!(s.read(r, oid).unwrap(), b"keep");
        assert!(!s.exists(r, ghost).unwrap());
        s.commit(r).unwrap();
        let r2 = s.begin_read_only().unwrap();
        assert_eq!(s.read(r2, oid).unwrap(), b"keep");
        assert!(!s.exists(r2, ghost).unwrap());
        s.commit(r2).unwrap();
    }

    #[test]
    fn snapshot_roots_are_versioned() {
        let s = Storage::volatile();
        let oid = {
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let o = s.allocate(t, c, b"a").unwrap();
            s.set_root(t, "anchor", o).unwrap();
            s.commit(t).unwrap();
            o
        };
        let r = s.begin_read_only().unwrap();
        let w = s.begin().unwrap();
        s.del_root(w, "anchor").unwrap();
        s.commit(w).unwrap();
        // The old snapshot still resolves the root; a new one does not.
        assert_eq!(s.get_root(r, "anchor").unwrap(), oid);
        s.commit(r).unwrap();
        let r2 = s.begin_read_only().unwrap();
        assert!(matches!(
            s.get_root(r2, "anchor"),
            Err(StorageError::NoSuchRoot(_))
        ));
        s.commit(r2).unwrap();
    }

    #[test]
    fn snapshot_reads_take_no_lock_manager_locks() {
        let s = Storage::volatile();
        let (cluster, oid) = {
            let t = s.begin().unwrap();
            let c = s.create_cluster(t).unwrap();
            let o = s.allocate(t, c, b"data").unwrap();
            s.commit(t).unwrap();
            (c, o)
        };
        s.metrics().reset();
        s.reset_lock_stats();
        let r = s.begin_read_only().unwrap();
        assert_eq!(s.read(r, oid).unwrap(), b"data");
        assert!(s.exists(r, oid).unwrap());
        assert_eq!(
            s.get_root(r, "nope").err().map(|e| e.is_abort()),
            Some(false)
        );
        assert_eq!(s.scan_cluster(r, cluster).unwrap(), vec![oid]);
        s.commit(r).unwrap();
        let stats = s.lock_stats();
        let snap = s.metrics().snapshot();
        assert_eq!(stats.immediate_grants, 0, "snapshot reads must not lock");
        assert_eq!(stats.waits, 0);
        assert_eq!(stats.upgrades, 0);
        assert!(snap.snapshot_reads >= 4);
    }

    #[test]
    fn version_store_drains_after_quiesced_checkpoint() {
        let dir = TempDir::new("ckpt-vacuum");
        let s = Storage::create(dir.path(), StorageOptions::memory()).unwrap();
        let r = s.begin_read_only().unwrap();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        let o = s.allocate(t, c, b"v").unwrap();
        s.update(t, o, b"w").unwrap();
        s.commit(t).unwrap();
        // The registered snapshot pins chain entries across the commit.
        assert!(s.version_stats().entries > 0);
        // Busy checkpoint: the reader is active, so the quiesced path
        // refuses with a typed error and nothing changes.
        assert!(matches!(s.checkpoint(), Err(StorageError::NotQuiesced(1))));
        assert!(s.version_stats().entries > 0);
        s.commit(r).unwrap();
        // Quiesced checkpoint: superseded versions must not survive it.
        s.checkpoint().unwrap();
        let stats = s.version_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.versions, 0);
        assert_eq!(stats.active_snapshots, 0);
        s.close().unwrap();
    }

    #[test]
    fn quiesced_checkpoint_returns_not_quiesced_when_busy() {
        // Satellite regression: the quiesced path must fail typed, not
        // silently no-op, while transactions are active.
        let dir = TempDir::new("store");
        let s = disk_storage(&dir);
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        s.allocate(t, c, b"busy").unwrap();
        assert!(matches!(s.checkpoint(), Err(StorageError::NotQuiesced(1))));
        s.commit(t).unwrap();
        s.checkpoint().unwrap();
        s.close().unwrap();
    }

    #[test]
    fn fuzzy_checkpoint_truncates_log_under_active_transactions() {
        let dir = TempDir::new("store");
        let s = disk_storage(&dir);
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        s.commit(t).unwrap();
        // Committed traffic first: these records sit below any later
        // transaction's first LSN, so the horizon can free them.
        for i in 0..20u8 {
            let t = s.begin().unwrap();
            s.allocate(t, c, &[i; 64]).unwrap();
            s.commit(t).unwrap();
        }
        let before_len = s.wal_file_len().unwrap();
        // An in-flight writer pins the horizon at its first LSN but must
        // not block the checkpoint.
        let active = s.begin().unwrap();
        let pinned = s.allocate(active, c, b"in flight").unwrap();
        let ckpts_before = s.metrics().snapshot().checkpoints;
        let freed = s.checkpoint_fuzzy().unwrap();
        assert!(freed > 0, "prefix below the active txn should be freed");
        assert!(s.wal_file_len().unwrap() < before_len);
        assert_eq!(s.metrics().snapshot().checkpoints, ckpts_before + 1);
        s.commit(active).unwrap();
        // Crash and recover from the fuzzy checkpoint (not the log start).
        std::mem::forget(s);
        let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = s.begin().unwrap();
        assert_eq!(s.read(t, pinned).unwrap(), b"in flight");
        assert_eq!(s.scan_cluster(t, c).unwrap().len(), 21);
        s.commit(t).unwrap();
        s.close().unwrap();
    }

    #[test]
    fn recovery_is_exact_with_stolen_pages_and_fuzzy_checkpoints() {
        // A pool far smaller than the working set forces dirty-page
        // steals; interleaved fuzzy checkpoints truncate the log. After a
        // crash, redo must be page-LSN-gated (stolen pages already carry
        // later state) and losers must roll back even when their dirty
        // pages were stolen.
        let dir = TempDir::new("store");
        let opts = StorageOptions {
            buffer_pages: 4,
            ..StorageOptions::default()
        };
        let s = Storage::create(dir.path(), opts).unwrap();
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        s.commit(t).unwrap();
        let mut committed = Vec::new();
        for round in 0..8u8 {
            let t = s.begin().unwrap();
            for i in 0..16u8 {
                committed.push((
                    s.allocate(t, c, &[round * 16 + i; 100]).unwrap(),
                    round * 16 + i,
                ));
            }
            s.commit(t).unwrap();
            if round % 3 == 2 {
                s.checkpoint_fuzzy().unwrap();
            }
        }
        assert!(
            s.pool_stats().unwrap().steals > 0,
            "working set must overflow the pool via steals"
        );
        // A loser whose dirty pages may have been stolen.
        let loser = s.begin().unwrap();
        let ghost = s.allocate(loser, c, &[0xEE; 100]).unwrap();
        s.update(loser, committed[0].0, b"uncommitted overwrite")
            .unwrap();
        std::mem::forget(s); // crash
        let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = s.begin().unwrap();
        for (oid, fill) in &committed {
            assert_eq!(s.read(t, *oid).unwrap(), vec![*fill; 100]);
        }
        assert!(matches!(
            s.read(t, ghost),
            Err(StorageError::NoSuchObject(_))
        ));
        s.commit(t).unwrap();
        s.close().unwrap();
    }

    #[test]
    fn background_checkpointer_cycles_without_stalling_commits() {
        // Tentpole acceptance: continuous commits while the checkpointer
        // cycles — no commit fails, the log shrinks under traffic, and no
        // commit observes a stop-the-world stall.
        let dir = TempDir::new("store");
        let opts = StorageOptions {
            checkpoint_interval: Some(Duration::from_millis(5)),
            ..StorageOptions::default()
        };
        let s = Arc::new(Storage::create(dir.path(), opts).unwrap());
        let t = s.begin().unwrap();
        let c = s.create_cluster(t).unwrap();
        s.commit(t).unwrap();
        let mut latencies = Vec::new();
        let stop_at = std::time::Instant::now() + Duration::from_millis(400);
        let mut i = 0u64;
        while std::time::Instant::now() < stop_at {
            let started = std::time::Instant::now();
            let t = s.begin().unwrap();
            s.allocate(t, c, &i.to_le_bytes()).unwrap();
            s.commit(t).unwrap();
            latencies.push(started.elapsed());
            i += 1;
        }
        let snap = s.metrics().snapshot();
        assert!(
            snap.checkpoints >= 2,
            "checkpointer should have cycled, got {}",
            snap.checkpoints
        );
        assert!(
            snap.wal_truncated_bytes > 0,
            "the log should have been truncated under traffic"
        );
        latencies.sort_unstable();
        let p99 = latencies[latencies.len() * 99 / 100];
        assert!(
            p99 < Duration::from_millis(250),
            "commit p99 {p99:?} suggests a stop-the-world stall"
        );
        let s = Arc::try_unwrap(s).ok().expect("sole owner");
        s.close().unwrap();
        // Clean reopen after a checkpointed run.
        let s = Storage::open(dir.path(), StorageOptions::default()).unwrap();
        let t = s.begin().unwrap();
        assert_eq!(s.scan_cluster(t, c).unwrap().len(), i as usize);
        s.commit(t).unwrap();
        s.close().unwrap();
    }
}
