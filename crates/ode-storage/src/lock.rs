//! Lock manager: strict two-phase shared/exclusive locking with deadlock
//! detection, striped for multi-core scalability.
//!
//! The paper's §6 observes that "triggers turn read access into write
//! access, increasing both the amount of time the transactions spend
//! waiting for locks and the likelihood of deadlock": advancing a trigger's
//! FSM updates a trigger descriptor, which needs a write lock even when the
//! triggering operation was a read. This lock manager exposes wait and
//! deadlock counters so that effect can be measured (experiment E4).
//!
//! ## Striping
//!
//! The lock table is split into a power-of-two array of *stripes*, each a
//! mutex-guarded table with its own condvar. A key's stripe is a hash of
//! the key, so unrelated lock/unlock traffic from different threads lands
//! on different mutexes instead of funnelling through one process-wide
//! lock (the scalability ceiling the `concurrency_core` bench measures).
//! Stripe count 1 reproduces the original single-table manager exactly and
//! is the benchmark baseline (`StorageOptions::lock_stripes`).
//!
//! Grant, upgrade, and release touch only the key's stripe. Deadlock
//! detection needs a *consistent* view of the waits-for graph across
//! stripes; a blocked request's periodic detection pass therefore acquires
//! every stripe in index order (a total order, so detection passes can
//! never deadlock on the stripe mutexes themselves), walks the graph, and
//! — if the requester is on a cycle — removes its own wait entry *while
//! still holding all stripes*. That makes victim selection serializable:
//! the next detection pass sees the cycle already broken, so a cycle
//! yields exactly one victim, same as the single-table manager.
//!
//! ## Unlock ordering vs. durability
//!
//! Strict 2PL releases a transaction's locks at commit. With group commit
//! the release happens in `Storage::commit_deferred` — *after* the Commit
//! record is appended to the WAL but *before* it is durable. This early
//! release is what lets a dependent system transaction acquire the parent's
//! locks and append its own Commit record into the same flush batch. It
//! cannot expose non-durable data to the outside: a *writing* reader of
//! the early-released writes appends its own Commit record at a strictly
//! later LSN, and no commit is acknowledged until the durability watermark
//! covers its LSN; a *read-only* reader appends nothing, so its commit
//! ticket instead carries the log tail observed at commit (which bounds
//! every writer it could have read) and `Storage::commit_wait` waits for
//! that barrier. Either way an acknowledged reader implies durable
//! writers.

use crate::error::{Result, StorageError};
use crate::txn::TxnId;
use ode_obs::{Metrics, TraceEvent};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default number of lock-table stripes (power of two).
pub const DEFAULT_LOCK_STRIPES: usize = 64;

/// What a lock protects. Objects are locked by their Oid; a few named
/// resources (e.g. the roots directory) get their own keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKey {
    /// A persistent object (packed Oid).
    Object(u64),
    /// The named-roots directory.
    Roots,
    /// A whole cluster (used by cluster scans).
    Cluster(u32),
}

/// Lock modes. Shared is compatible with shared; exclusive with nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockMode {
    /// Read lock.
    Shared,
    /// Write lock.
    Exclusive,
}

#[derive(Default)]
struct LockState {
    holders: HashMap<TxnId, LockMode>,
}

impl LockState {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(&h, &hm)| h == txn || (mode == LockMode::Shared && hm == LockMode::Shared))
    }

    fn blockers(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|&(&h, &hm)| h != txn && !(mode == LockMode::Shared && hm == LockMode::Shared))
            .map(|(&h, _)| h)
            .collect()
    }
}

/// One stripe's share of the lock table. Every map in here only holds
/// entries whose key hashes to this stripe; `held` and `waiting` are
/// keyed by transaction but store only this stripe's keys.
#[derive(Default)]
struct Tables {
    locks: HashMap<LockKey, LockState>,
    /// Keys held per transaction (this stripe only), for O(held) release.
    held: HashMap<TxnId, HashSet<LockKey>>,
    /// What each blocked transaction is currently waiting on (waiters
    /// register in the stripe of the key they wait for).
    waiting: HashMap<TxnId, (LockKey, LockMode)>,
}

struct Stripe {
    tables: Mutex<Tables>,
    cv: Condvar,
}

/// Counters exposed for experiments and monitoring. Since the striping
/// rework this is a *view* derived from the lock-free `ode-obs` registry
/// (the same treatment `TriggerStats` got): the lock hot path increments
/// relaxed atomics only and never takes a statistics mutex.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Lock requests granted immediately.
    pub immediate_grants: u64,
    /// Lock requests that had to wait at least once.
    pub waits: u64,
    /// Requests aborted as deadlock victims.
    pub deadlocks: u64,
    /// Shared locks upgraded to exclusive.
    pub upgrades: u64,
    /// Total time spent blocked, in microseconds.
    pub wait_micros: u64,
}

/// Outcome of one all-stripes detection pass for a blocked request.
enum Sweep {
    /// The request became grantable and was granted.
    Granted,
    /// The requester sits on a waits-for cycle and was chosen victim
    /// (its wait entry is already removed).
    Victim,
    /// Still blocked, no cycle: go back to sleep.
    KeepWaiting,
}

/// One shard of the per-transaction stripe-footprint map: txn id →
/// bitmask of stripes the transaction has requested locks in.
type FootprintShard = Mutex<HashMap<TxnId, Vec<u64>>>;

/// The lock manager. See module docs for the striping design.
pub struct LockManager {
    stripes: Box<[Stripe]>,
    /// `stripes.len() - 1`; stripe count is always a power of two.
    mask: usize,
    /// Per-transaction bitmask of stripes it has requested locks in, so
    /// [`LockManager::unlock_all`] visits only those stripes instead of
    /// sweeping all of them on every commit. Striped by transaction id;
    /// a transaction runs on one thread, so its entry (and the shard
    /// mutex protecting it) stays core-local. Bits may be set for
    /// requests that were never granted (deadlock victim, timeout) —
    /// release then finds nothing there, which is harmless.
    footprints: Box<[FootprintShard]>,
    /// `footprints.len() - 1`; always a power of two.
    fp_mask: usize,
    /// Baseline snapshot subtracted by [`LockManager::stats`] so
    /// [`LockManager::reset_stats`] works without mutating the shared
    /// engine-wide registry.
    stats_baseline: Mutex<LockStats>,
    metrics: Arc<Metrics>,
    timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(10))
    }
}

impl LockManager {
    /// Create a lock manager whose blocking requests give up after
    /// `timeout` (a safety net; deadlocks are normally detected, not
    /// timed out). Uses [`DEFAULT_LOCK_STRIPES`] stripes.
    pub fn new(timeout: Duration) -> LockManager {
        LockManager::with_metrics(timeout, Arc::new(Metrics::new()))
    }

    /// Like [`LockManager::new`], but recording into a shared engine-wide
    /// metrics registry instead of a private one.
    pub fn with_metrics(timeout: Duration, metrics: Arc<Metrics>) -> LockManager {
        LockManager::with_config(timeout, metrics, DEFAULT_LOCK_STRIPES)
    }

    /// Fully configured constructor. `stripes` is rounded up to a power of
    /// two; `1` reproduces the pre-striping single-table manager.
    pub fn with_config(timeout: Duration, metrics: Arc<Metrics>, stripes: usize) -> LockManager {
        let n = stripes.max(1).next_power_of_two();
        LockManager {
            stripes: (0..n)
                .map(|_| Stripe {
                    tables: Mutex::new(Tables::default()),
                    cv: Condvar::new(),
                })
                .collect(),
            mask: n - 1,
            footprints: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            fp_mask: n - 1,
            stats_baseline: Mutex::new(LockStats::default()),
            metrics,
            timeout,
        }
    }

    /// Number of stripes the lock table is split into.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Which stripe a key lives in (stable for the manager's lifetime;
    /// exposed so tests can construct cross-stripe scenarios).
    pub fn stripe_of(&self, key: &LockKey) -> usize {
        // Fibonacci hashing on a 64-bit mix of the key. Object keys are
        // packed Oids whose low bits are slot numbers; the multiply
        // spreads them across stripes.
        let raw = match key {
            LockKey::Object(o) => *o,
            LockKey::Roots => u64::MAX,
            LockKey::Cluster(c) => 0x4000_0000_0000_0000 | *c as u64,
        };
        let h = raw.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) & self.mask
    }

    /// Lock one stripe, counting contended acquisitions into the registry.
    fn lock_stripe(&self, idx: usize) -> MutexGuard<'_, Tables> {
        match self.stripes[idx].tables.try_lock() {
            Some(guard) => guard,
            None => {
                self.metrics.lock_stripe_contention.inc();
                let started = Instant::now();
                let guard = self.stripes[idx].tables.lock();
                self.metrics
                    .shard_acquire_nanos
                    .record(started.elapsed().as_nanos() as u64);
                guard
            }
        }
    }

    /// Record that `txn` is about to request a lock in stripe `idx`.
    /// Must be called *before* taking the stripe guard: a footprint shard
    /// may be locked while stripe guards are held (`unlock_all` drops its
    /// footprint guard before touching stripes), never the other way.
    fn note_stripe(&self, txn: TxnId, idx: usize) {
        let words = self.stripes.len().div_ceil(64);
        let mut shard = self.footprints[txn.0 as usize & self.fp_mask].lock();
        let mask = shard.entry(txn).or_insert_with(|| vec![0u64; words]);
        mask[idx / 64] |= 1 << (idx % 64);
    }

    /// Acquire `key` in `mode` for `txn`, blocking if necessary.
    /// Re-acquiring an already-held lock is a no-op; holding Shared and
    /// requesting Exclusive upgrades.
    pub fn lock(&self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<()> {
        let acquired = match mode {
            LockMode::Shared => &self.metrics.lock_shared_acquisitions,
            LockMode::Exclusive => &self.metrics.lock_exclusive_acquisitions,
        };
        let idx = self.stripe_of(&key);
        self.note_stripe(txn, idx);
        {
            let mut tables = self.lock_stripe(idx);
            if let Some(&held) = tables.locks.get(&key).and_then(|s| s.holders.get(&txn)) {
                if held >= mode {
                    return Ok(());
                }
                self.metrics.lock_upgrades.inc();
            }
            if tables
                .locks
                .get(&key)
                .is_none_or(|s| s.compatible(txn, mode))
            {
                Self::grant(&mut tables, txn, key, mode);
                self.metrics.lock_immediate_grants.inc();
                acquired.inc();
                return Ok(());
            }

            // Must wait: register in the key's stripe, then block outside
            // the fast path.
            match mode {
                LockMode::Shared => self.metrics.lock_shared_waits.inc(),
                LockMode::Exclusive => self.metrics.lock_exclusive_waits.inc(),
            }
            self.metrics.emit(|| TraceEvent::LockWait {
                txn: txn.0,
                exclusive: mode == LockMode::Exclusive,
            });
            tables.waiting.insert(txn, (key, mode));
        }

        let started = Instant::now();
        let mut wait_span = ode_trace::span(ode_trace::SpanKind::LockWait, "");
        wait_span.payload(txn.0, (mode == LockMode::Exclusive) as u64);
        let result = loop {
            // Consistent multi-stripe pass: grant if possible, otherwise
            // look for a waits-for cycle through us.
            match self.sweep(idx, txn, key, mode) {
                Sweep::Granted => {
                    acquired.inc();
                    break Ok(());
                }
                Sweep::Victim => {
                    self.metrics.lock_deadlock_victims.inc();
                    self.metrics
                        .emit(|| TraceEvent::DeadlockVictim { txn: txn.0 });
                    self.metrics.dump_flight(format!(
                        "deadlock victim txn={txn:?} key={key:?} mode={mode:?}"
                    ));
                    break Err(StorageError::Deadlock(txn));
                }
                Sweep::KeepWaiting => {}
            }
            let mut tables = self.lock_stripe(idx);
            if Self::try_grant_waiter(&mut tables, txn, key, mode) {
                acquired.inc();
                break Ok(());
            }
            let timed_out = self.stripes[idx]
                .cv
                .wait_for(&mut tables, Duration::from_millis(20))
                .timed_out();
            if Self::try_grant_waiter(&mut tables, txn, key, mode) {
                acquired.inc();
                break Ok(());
            }
            if timed_out && started.elapsed() >= self.timeout {
                // Cold path: preserve a structured flight dump whose
                // reason names every contending transaction (holders and
                // waiters). ODE_LOCK_DEBUG only toggles the stderr echo
                // inside dump_flight.
                let holders: Vec<_> = tables
                    .locks
                    .get(&key)
                    .map(|s| s.holders.iter().map(|(t, m)| (*t, *m)).collect())
                    .unwrap_or_default();
                tables.waiting.remove(&txn);
                drop(tables);
                // Other stripes' waiters are snapshotted without holding
                // our stripe (stripe mutexes are only ever nested in full
                // index order, never pairwise).
                let waiting = self.waiting_snapshot();
                self.metrics.dump_flight(format!(
                    "lock timeout txn={txn:?} key={key:?} mode={mode:?} holders={holders:?} waiting={waiting:?}"
                ));
                break Err(StorageError::LockTimeout(txn));
            }
        };
        drop(wait_span);
        let waited = started.elapsed().as_micros() as u64;
        self.metrics.lock_wait_micros.record(waited);
        result
    }

    /// If the blocked request became grantable, grant it and clear its
    /// wait entry (all under the caller's stripe guard).
    fn try_grant_waiter(tables: &mut Tables, txn: TxnId, key: LockKey, mode: LockMode) -> bool {
        if tables
            .locks
            .get(&key)
            .is_none_or(|s| s.compatible(txn, mode))
        {
            Self::grant(tables, txn, key, mode);
            tables.waiting.remove(&txn);
            true
        } else {
            false
        }
    }

    /// One detection pass for a blocked request: acquire *every* stripe in
    /// index order (total order ⇒ no deadlock between passes), then — with
    /// the whole waits-for graph frozen — either grant the request, pick it
    /// as a deadlock victim, or conclude it must keep waiting.
    ///
    /// Victim selection stays "exactly one per cycle" because the victim
    /// removes its wait entry while still holding all stripes: the next
    /// pass, serialized behind this one, sees the cycle already broken.
    fn sweep(&self, own: usize, txn: TxnId, key: LockKey, mode: LockMode) -> Sweep {
        let mut guards: Vec<MutexGuard<'_, Tables>> =
            self.stripes.iter().map(|s| s.tables.lock()).collect();
        if Self::try_grant_waiter(&mut guards[own], txn, key, mode) {
            return Sweep::Granted;
        }
        // DFS over the waits-for graph: waiter -> holders blocking it.
        let mut stack = vec![txn];
        let mut seen = HashSet::new();
        while let Some(t) = stack.pop() {
            let Some(&(wkey, wmode)) = guards.iter().find_map(|g| g.waiting.get(&t)) else {
                continue;
            };
            let kidx = self.stripe_of(&wkey);
            let Some(state) = guards[kidx].locks.get(&wkey) else {
                continue;
            };
            let blockers = state.blockers(t, wmode);
            for blocker in blockers {
                if blocker == txn {
                    guards[own].waiting.remove(&txn);
                    return Sweep::Victim;
                }
                if seen.insert(blocker) {
                    stack.push(blocker);
                }
            }
        }
        Sweep::KeepWaiting
    }

    /// Every (txn, key, mode) wait entry across all stripes, for timeout
    /// dumps. Stripes are snapshotted one at a time.
    fn waiting_snapshot(&self) -> Vec<(TxnId, (LockKey, LockMode))> {
        let mut out = Vec::new();
        for stripe in self.stripes.iter() {
            let tables = stripe.tables.lock();
            out.extend(tables.waiting.iter().map(|(t, w)| (*t, *w)));
        }
        out
    }

    fn grant(tables: &mut Tables, txn: TxnId, key: LockKey, mode: LockMode) {
        let state = tables.locks.entry(key).or_default();
        state.holders.insert(txn, mode);
        tables.held.entry(txn).or_default().insert(key);
    }

    /// The mode `txn` holds on `key`, if any.
    pub fn held(&self, txn: TxnId, key: LockKey) -> Option<LockMode> {
        self.lock_stripe(self.stripe_of(&key))
            .locks
            .get(&key)
            .and_then(|s| s.holders.get(&txn))
            .copied()
    }

    /// Release every lock `txn` holds (end of transaction — strict 2PL).
    /// Returns the number of locks released. See the module docs for how
    /// this ordering relates to commit durability.
    pub fn unlock_all(&self, txn: TxnId) -> usize {
        // Pop the footprint first and *drop the shard guard* before
        // touching any stripe (see note_stripe for the ordering rule).
        // Only the stripes the transaction actually requested locks in
        // are visited — release stays O(own stripes), not O(all stripes).
        let Some(mask) = self.footprints[txn.0 as usize & self.fp_mask]
            .lock()
            .remove(&txn)
        else {
            return 0;
        };
        let mut released = 0;
        for idx in mask.iter().enumerate().flat_map(|(w, bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| w * 64 + b)
        }) {
            let stripe = &self.stripes[idx];
            let mut tables = self.lock_stripe(idx);
            let Some(keys) = tables.held.remove(&txn) else {
                continue;
            };
            let mut freed_any = false;
            for key in keys {
                if let Some(state) = tables.locks.get_mut(&key) {
                    state.holders.remove(&txn);
                    released += 1;
                    freed_any = true;
                    if state.holders.is_empty() {
                        tables.locks.remove(&key);
                    }
                }
            }
            drop(tables);
            if freed_any {
                stripe.cv.notify_all();
            }
        }
        released
    }

    /// Snapshot of the counters — a view over the engine-wide registry
    /// minus the last [`LockManager::reset_stats`] baseline.
    pub fn stats(&self) -> LockStats {
        let snap = self.metrics.snapshot();
        let base = *self.stats_baseline.lock();
        let d = |now: u64, then: u64| now.saturating_sub(then);
        LockStats {
            immediate_grants: d(snap.lock_immediate_grants, base.immediate_grants),
            waits: d(
                snap.lock_shared_waits + snap.lock_exclusive_waits,
                base.waits,
            ),
            deadlocks: d(snap.lock_deadlock_victims, base.deadlocks),
            upgrades: d(snap.lock_upgrades, base.upgrades),
            wait_micros: d(snap.lock_wait_micros.sum, base.wait_micros),
        }
    }

    /// Reset counters (benchmarks call this between phases). Rebases the
    /// [`LockManager::stats`] view; the shared registry is left untouched.
    /// Callers that also `Metrics::reset` the registry must do so *before*
    /// this, or the baseline will be ahead of the counters.
    pub fn reset_stats(&self) {
        let snap = self.metrics.snapshot();
        *self.stats_baseline.lock() = LockStats {
            immediate_grants: snap.lock_immediate_grants,
            waits: snap.lock_shared_waits + snap.lock_exclusive_waits,
            deadlocks: snap.lock_deadlock_victims,
            upgrades: snap.lock_upgrades,
            wait_micros: snap.lock_wait_micros.sum,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);
    const T3: TxnId = TxnId(3);

    fn key(n: u64) -> LockKey {
        LockKey::Object(n)
    }

    /// The full lock-manager suite, instantiated per stripe count so the
    /// single-stripe (legacy) configuration and the striped one are both
    /// exercised end to end.
    macro_rules! lock_suite {
        ($name:ident, $stripes:expr) => {
            mod $name {
                use super::*;

                fn manager(timeout: Duration) -> LockManager {
                    LockManager::with_config(timeout, Arc::new(Metrics::new()), $stripes)
                }

                #[test]
                fn stripe_count_is_configured() {
                    let lm = manager(Duration::from_secs(10));
                    assert_eq!(lm.stripe_count(), ($stripes as usize).next_power_of_two());
                }

                #[test]
                fn shared_locks_coexist() {
                    let lm = manager(Duration::from_secs(10));
                    lm.lock(T1, key(1), LockMode::Shared).unwrap();
                    lm.lock(T2, key(1), LockMode::Shared).unwrap();
                    assert_eq!(lm.held(T1, key(1)), Some(LockMode::Shared));
                    assert_eq!(lm.held(T2, key(1)), Some(LockMode::Shared));
                    assert_eq!(lm.stats().waits, 0);
                    assert_eq!(lm.stats().immediate_grants, 2);
                }

                #[test]
                fn exclusive_blocks_and_releases() {
                    let lm = Arc::new(manager(Duration::from_secs(10)));
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    let lm2 = Arc::clone(&lm);
                    let handle =
                        std::thread::spawn(move || lm2.lock(T2, key(1), LockMode::Exclusive));
                    std::thread::sleep(Duration::from_millis(50));
                    assert!(!handle.is_finished(), "T2 should be blocked");
                    lm.unlock_all(T1);
                    handle.join().unwrap().unwrap();
                    assert_eq!(lm.held(T2, key(1)), Some(LockMode::Exclusive));
                    assert_eq!(lm.stats().waits, 1);
                }

                #[test]
                fn reacquire_is_noop() {
                    let lm = manager(Duration::from_secs(10));
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    lm.lock(T1, key(1), LockMode::Shared).unwrap(); // weaker: still fine
                    assert_eq!(lm.held(T1, key(1)), Some(LockMode::Exclusive));
                }

                #[test]
                fn upgrade_when_sole_holder() {
                    let lm = manager(Duration::from_secs(10));
                    lm.lock(T1, key(1), LockMode::Shared).unwrap();
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    assert_eq!(lm.held(T1, key(1)), Some(LockMode::Exclusive));
                    assert_eq!(lm.stats().upgrades, 1);
                }

                #[test]
                fn deadlock_detected() {
                    let lm = Arc::new(manager(Duration::from_secs(30)));
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    lm.lock(T2, key(2), LockMode::Exclusive).unwrap();
                    let lm2 = Arc::clone(&lm);
                    // T2 waits for key 1 (held by T1).
                    let handle = std::thread::spawn(move || {
                        let r = lm2.lock(T2, key(1), LockMode::Exclusive);
                        lm2.unlock_all(T2);
                        r
                    });
                    std::thread::sleep(Duration::from_millis(50));
                    // T1 now waits for key 2 (held by T2) -> cycle. Either
                    // side may be the victim; release T1's locks before
                    // joining so a surviving T2 isn't left waiting on them.
                    let r1 = lm.lock(T1, key(2), LockMode::Exclusive);
                    lm.unlock_all(T1);
                    let r2 = handle.join().unwrap();
                    let d1 = matches!(r1, Err(StorageError::Deadlock(_)));
                    let d2 = matches!(r2, Err(StorageError::Deadlock(_)));
                    assert!(d1 || d2, "at least one victim: {r1:?} {r2:?}");
                    assert!(lm.stats().deadlocks >= 1);
                }

                #[test]
                fn upgrade_deadlock_detected() {
                    // Classic S+S then both upgrade: a cycle through the
                    // same key.
                    let lm = Arc::new(manager(Duration::from_secs(30)));
                    lm.lock(T1, key(1), LockMode::Shared).unwrap();
                    lm.lock(T2, key(1), LockMode::Shared).unwrap();
                    let lm2 = Arc::clone(&lm);
                    let handle = std::thread::spawn(move || {
                        let r = lm2.lock(T2, key(1), LockMode::Exclusive);
                        if r.is_err() {
                            lm2.unlock_all(T2);
                        }
                        r
                    });
                    std::thread::sleep(Duration::from_millis(50));
                    let r1 = lm.lock(T1, key(1), LockMode::Exclusive);
                    if r1.is_err() {
                        lm.unlock_all(T1);
                    }
                    let r2 = handle.join().unwrap();
                    assert!(
                        matches!(r1, Err(StorageError::Deadlock(_)))
                            || matches!(r2, Err(StorageError::Deadlock(_))),
                        "upgrade deadlock must pick a victim: {r1:?} {r2:?}"
                    );
                }

                #[test]
                fn timeout_fires_without_deadlock() {
                    let lm = Arc::new(manager(Duration::from_millis(100)));
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    let r = lm.lock(T2, key(1), LockMode::Shared);
                    assert!(matches!(r, Err(StorageError::LockTimeout(_))));
                }

                #[test]
                fn unlock_all_releases_everything() {
                    let lm = manager(Duration::from_secs(10));
                    lm.lock(T1, key(1), LockMode::Shared).unwrap();
                    lm.lock(T1, key(2), LockMode::Exclusive).unwrap();
                    lm.lock(T1, LockKey::Roots, LockMode::Exclusive).unwrap();
                    assert_eq!(lm.unlock_all(T1), 3);
                    assert_eq!(lm.held(T1, key(1)), None);
                    assert_eq!(lm.held(T1, key(2)), None);
                    assert_eq!(lm.held(T1, LockKey::Roots), None);
                }

                #[test]
                fn wait_time_is_recorded() {
                    let lm = Arc::new(manager(Duration::from_secs(10)));
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    let lm2 = Arc::clone(&lm);
                    let handle = std::thread::spawn(move || lm2.lock(T2, key(1), LockMode::Shared));
                    std::thread::sleep(Duration::from_millis(60));
                    lm.unlock_all(T1);
                    handle.join().unwrap().unwrap();
                    assert!(lm.stats().wait_micros >= 40_000);
                    // The wait also lands in the engine-wide latency
                    // histogram.
                    let h = lm.metrics.lock_wait_micros.snapshot();
                    assert_eq!(h.count, 1);
                    assert!(h.sum >= 40_000);
                    assert!(h.p99() >= 40_000);
                }

                #[test]
                fn cross_stripe_three_txn_cycle_picks_exactly_one_victim() {
                    // A 3-transaction cycle whose keys land on *different*
                    // stripes (when there is more than one): detection must
                    // still see the whole cycle and abort exactly one
                    // victim; the survivors proceed once it releases.
                    let lm = Arc::new(manager(Duration::from_secs(30)));
                    // Find three object keys on three distinct stripes
                    // (any keys do when there is only one stripe).
                    let mut ks = vec![key(1)];
                    let mut n = 2u64;
                    while ks.len() < 3 && n < 10_000 {
                        let candidate = key(n);
                        if lm.stripe_count() == 1
                            || ks
                                .iter()
                                .all(|k| lm.stripe_of(k) != lm.stripe_of(&candidate))
                        {
                            ks.push(candidate);
                        }
                        n += 1;
                    }
                    assert_eq!(ks.len(), 3, "could not find 3 distinct stripes");
                    if lm.stripe_count() > 1 {
                        let stripes: HashSet<usize> = ks.iter().map(|k| lm.stripe_of(k)).collect();
                        assert_eq!(stripes.len(), 3, "keys must span three stripes");
                    }

                    let txns = [T1, T2, T3];
                    for (i, &t) in txns.iter().enumerate() {
                        lm.lock(t, ks[i], LockMode::Exclusive).unwrap();
                    }
                    let barrier = Arc::new(std::sync::Barrier::new(3));
                    let handles: Vec<_> = (0..3)
                        .map(|i| {
                            let lm = Arc::clone(&lm);
                            let barrier = Arc::clone(&barrier);
                            let t = txns[i];
                            let want = ks[(i + 1) % 3];
                            std::thread::spawn(move || {
                                barrier.wait();
                                let r = lm.lock(t, want, LockMode::Exclusive);
                                // Victim or winner, release everything so
                                // the others can finish.
                                lm.unlock_all(t);
                                r
                            })
                        })
                        .collect();
                    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
                    let victims = results
                        .iter()
                        .filter(|r| matches!(r, Err(StorageError::Deadlock(_))))
                        .count();
                    assert_eq!(victims, 1, "exactly one victim: {results:?}");
                    assert_eq!(
                        results.iter().filter(|r| r.is_ok()).count(),
                        2,
                        "survivors must be granted after the victim aborts: {results:?}"
                    );
                    assert_eq!(lm.stats().deadlocks, 1);
                }

                #[test]
                fn lock_timeout_dumps_flight_log_with_both_txn_ids() {
                    let metrics = Arc::new(Metrics::new());
                    let lm = LockManager::with_config(
                        Duration::from_millis(100),
                        Arc::clone(&metrics),
                        $stripes,
                    );
                    lm.lock(T1, key(7), LockMode::Exclusive).unwrap();
                    let r = lm.lock(T2, key(7), LockMode::Shared);
                    assert!(matches!(r, Err(StorageError::LockTimeout(_))));
                    let dumps = metrics.flight_dumps();
                    assert_eq!(dumps.len(), 1, "timeout must preserve exactly one dump");
                    let dump = &dumps[0];
                    assert!(dump.reason.contains("lock timeout"), "{}", dump.reason);
                    // Both contending transactions are identified: the
                    // waiter in the reason header, the holder in the
                    // holders list.
                    assert!(
                        dump.reason.contains("TxnId(2)"),
                        "waiter missing: {}",
                        dump.reason
                    );
                    assert!(
                        dump.reason.contains("TxnId(1)"),
                        "holder missing: {}",
                        dump.reason
                    );
                    // The flight log itself carries the waiter's LockWait
                    // record.
                    assert!(dump
                        .records
                        .iter()
                        .any(|r| matches!(r.event, ode_obs::FlightEvent::LockWait { txn: 2, .. })));
                }

                #[test]
                fn deadlock_victim_dumps_flight_log() {
                    let metrics = Arc::new(Metrics::new());
                    let lm = Arc::new(LockManager::with_config(
                        Duration::from_secs(30),
                        Arc::clone(&metrics),
                        $stripes,
                    ));
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    lm.lock(T2, key(2), LockMode::Exclusive).unwrap();
                    let lm2 = Arc::clone(&lm);
                    let handle = std::thread::spawn(move || {
                        let r = lm2.lock(T2, key(1), LockMode::Exclusive);
                        lm2.unlock_all(T2);
                        r
                    });
                    std::thread::sleep(Duration::from_millis(50));
                    let r1 = lm.lock(T1, key(2), LockMode::Exclusive);
                    lm.unlock_all(T1);
                    let r2 = handle.join().unwrap();
                    assert!(r1.is_err() || r2.is_err());
                    let dumps = metrics.flight_dumps();
                    assert!(!dumps.is_empty(), "victim selection must preserve a dump");
                    assert!(dumps[0].reason.contains("deadlock victim"));
                }

                #[test]
                fn reset_stats_rebases_the_view() {
                    let lm = manager(Duration::from_secs(10));
                    lm.lock(T1, key(1), LockMode::Shared).unwrap();
                    lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
                    assert_eq!(lm.stats().upgrades, 1);
                    lm.reset_stats();
                    assert_eq!(lm.stats(), LockStats::default());
                    lm.lock(T2, key(2), LockMode::Shared).unwrap();
                    assert_eq!(lm.stats().immediate_grants, 1);
                    // The registry itself was never reset.
                    assert!(lm.metrics.lock_immediate_grants.get() >= 3);
                }
            }
        };
    }

    // The striping baseline switch (satellite): stripe count 1 must pass
    // the identical suite as the sharded default.
    lock_suite!(striped_default, DEFAULT_LOCK_STRIPES);
    lock_suite!(single_stripe, 1);

    #[test]
    fn stripe_count_rounds_up_to_power_of_two() {
        let lm = LockManager::with_config(Duration::from_secs(1), Arc::new(Metrics::new()), 3);
        assert_eq!(lm.stripe_count(), 4);
        let lm = LockManager::with_config(Duration::from_secs(1), Arc::new(Metrics::new()), 0);
        assert_eq!(lm.stripe_count(), 1);
    }

    #[test]
    fn keys_spread_over_stripes() {
        let lm = LockManager::default();
        let used: HashSet<usize> = (0..1024u64).map(|n| lm.stripe_of(&key(n))).collect();
        // 1024 sequential Oids must not collapse onto a few stripes.
        assert!(
            used.len() >= lm.stripe_count() / 2,
            "only {} of {} stripes used",
            used.len(),
            lm.stripe_count()
        );
    }

    #[test]
    fn contended_stripes_are_counted() {
        let metrics = Arc::new(Metrics::new());
        let lm = Arc::new(LockManager::with_config(
            Duration::from_secs(10),
            Arc::clone(&metrics),
            1, // one stripe: every thread collides on it
        ));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let lm = Arc::clone(&lm);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        let txn = TxnId(100 + t);
                        lm.lock(txn, key(t * 10_000 + i), LockMode::Shared).unwrap();
                        lm.unlock_all(txn);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = metrics.snapshot();
        assert!(
            snap.lock_stripe_contention > 0,
            "4 threads on 1 stripe must contend"
        );
        assert_eq!(
            snap.shard_acquire_nanos.count, snap.lock_stripe_contention,
            "every contended acquisition records one histogram sample"
        );
    }
}
