//! Lock manager: strict two-phase shared/exclusive locking with deadlock
//! detection.
//!
//! The paper's §6 observes that "triggers turn read access into write
//! access, increasing both the amount of time the transactions spend
//! waiting for locks and the likelihood of deadlock": advancing a trigger's
//! FSM updates a trigger descriptor, which needs a write lock even when the
//! triggering operation was a read. This lock manager exposes wait and
//! deadlock counters so that effect can be measured (experiment E4).
//!
//! Design: a single table guarded by one mutex, one condvar for wake-ups,
//! and a waits-for graph walked on every blocking iteration. A requester
//! that finds itself on a cycle is chosen as the victim and gets
//! [`StorageError::Deadlock`]; the caller is expected to abort.
//!
//! ## Unlock ordering vs. durability
//!
//! Strict 2PL releases a transaction's locks at commit. With group commit
//! the release happens in `Storage::commit_deferred` — *after* the Commit
//! record is appended to the WAL but *before* it is durable. This early
//! release is what lets a dependent system transaction acquire the parent's
//! locks and append its own Commit record into the same flush batch. It
//! cannot expose non-durable data to the outside: a *writing* reader of
//! the early-released writes appends its own Commit record at a strictly
//! later LSN, and no commit is acknowledged until the durability watermark
//! covers its LSN; a *read-only* reader appends nothing, so its commit
//! ticket instead carries the log tail observed at commit (which bounds
//! every writer it could have read) and `Storage::commit_wait` waits for
//! that barrier. Either way an acknowledged reader implies durable
//! writers.

use crate::error::{Result, StorageError};
use crate::txn::TxnId;
use ode_obs::{Metrics, TraceEvent};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a lock protects. Objects are locked by their Oid; a few named
/// resources (e.g. the roots directory) get their own keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKey {
    /// A persistent object (packed Oid).
    Object(u64),
    /// The named-roots directory.
    Roots,
    /// A whole cluster (used by cluster scans).
    Cluster(u32),
}

/// Lock modes. Shared is compatible with shared; exclusive with nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockMode {
    /// Read lock.
    Shared,
    /// Write lock.
    Exclusive,
}

#[derive(Default)]
struct LockState {
    holders: HashMap<TxnId, LockMode>,
}

impl LockState {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        self.holders
            .iter()
            .all(|(&h, &hm)| h == txn || (mode == LockMode::Shared && hm == LockMode::Shared))
    }

    fn blockers(&self, txn: TxnId, mode: LockMode) -> Vec<TxnId> {
        self.holders
            .iter()
            .filter(|&(&h, &hm)| h != txn && !(mode == LockMode::Shared && hm == LockMode::Shared))
            .map(|(&h, _)| h)
            .collect()
    }
}

#[derive(Default)]
struct Tables {
    locks: HashMap<LockKey, LockState>,
    /// Keys held per transaction, for O(held) release.
    held: HashMap<TxnId, HashSet<LockKey>>,
    /// What each blocked transaction is currently waiting on.
    waiting: HashMap<TxnId, (LockKey, LockMode)>,
}

impl Tables {
    /// Does a waits-for cycle pass through `start`?
    fn deadlocked(&self, start: TxnId) -> bool {
        // DFS over the waits-for graph: waiter -> holders blocking it.
        let mut stack = vec![start];
        let mut seen = HashSet::new();
        while let Some(txn) = stack.pop() {
            let Some(&(key, mode)) = self.waiting.get(&txn) else {
                continue;
            };
            let Some(state) = self.locks.get(&key) else {
                continue;
            };
            for blocker in state.blockers(txn, mode) {
                if blocker == start {
                    return true;
                }
                if seen.insert(blocker) {
                    stack.push(blocker);
                }
            }
        }
        false
    }
}

/// Counters exposed for experiments and monitoring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Lock requests granted immediately.
    pub immediate_grants: u64,
    /// Lock requests that had to wait at least once.
    pub waits: u64,
    /// Requests aborted as deadlock victims.
    pub deadlocks: u64,
    /// Shared locks upgraded to exclusive.
    pub upgrades: u64,
    /// Total time spent blocked, in microseconds.
    pub wait_micros: u64,
}

/// The lock manager.
pub struct LockManager {
    tables: Mutex<Tables>,
    cv: Condvar,
    stats: Mutex<LockStats>,
    metrics: Arc<Metrics>,
    timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_secs(10))
    }
}

impl LockManager {
    /// Create a lock manager whose blocking requests give up after
    /// `timeout` (a safety net; deadlocks are normally detected, not
    /// timed out).
    pub fn new(timeout: Duration) -> LockManager {
        LockManager::with_metrics(timeout, Arc::new(Metrics::new()))
    }

    /// Like [`LockManager::new`], but recording into a shared engine-wide
    /// metrics registry instead of a private one.
    pub fn with_metrics(timeout: Duration, metrics: Arc<Metrics>) -> LockManager {
        LockManager {
            tables: Mutex::new(Tables::default()),
            cv: Condvar::new(),
            stats: Mutex::new(LockStats::default()),
            metrics,
            timeout,
        }
    }

    /// Acquire `key` in `mode` for `txn`, blocking if necessary.
    /// Re-acquiring an already-held lock is a no-op; holding Shared and
    /// requesting Exclusive upgrades.
    pub fn lock(&self, txn: TxnId, key: LockKey, mode: LockMode) -> Result<()> {
        let acquired = match mode {
            LockMode::Shared => &self.metrics.lock_shared_acquisitions,
            LockMode::Exclusive => &self.metrics.lock_exclusive_acquisitions,
        };
        let mut tables = self.tables.lock();
        if let Some(&held) = tables.locks.get(&key).and_then(|s| s.holders.get(&txn)) {
            if held >= mode {
                return Ok(());
            }
            self.stats.lock().upgrades += 1;
            self.metrics.lock_upgrades.inc();
        }
        if tables
            .locks
            .get(&key)
            .is_none_or(|s| s.compatible(txn, mode))
        {
            Self::grant(&mut tables, txn, key, mode);
            self.stats.lock().immediate_grants += 1;
            acquired.inc();
            return Ok(());
        }

        // Must wait.
        self.stats.lock().waits += 1;
        match mode {
            LockMode::Shared => self.metrics.lock_shared_waits.inc(),
            LockMode::Exclusive => self.metrics.lock_exclusive_waits.inc(),
        }
        self.metrics.emit(|| TraceEvent::LockWait {
            txn: txn.0,
            exclusive: mode == LockMode::Exclusive,
        });
        let started = Instant::now();
        tables.waiting.insert(txn, (key, mode));
        let result = loop {
            if tables.deadlocked(txn) {
                self.stats.lock().deadlocks += 1;
                self.metrics.lock_deadlock_victims.inc();
                self.metrics
                    .emit(|| TraceEvent::DeadlockVictim { txn: txn.0 });
                self.metrics.dump_flight(format!(
                    "deadlock victim txn={txn:?} key={key:?} mode={mode:?}"
                ));
                break Err(StorageError::Deadlock(txn));
            }
            let timed_out = self
                .cv
                .wait_for(&mut tables, Duration::from_millis(20))
                .timed_out();
            if tables
                .locks
                .get(&key)
                .is_none_or(|s| s.compatible(txn, mode))
            {
                Self::grant(&mut tables, txn, key, mode);
                acquired.inc();
                break Ok(());
            }
            if timed_out && started.elapsed() >= self.timeout {
                // Cold path: preserve a structured flight dump whose
                // reason names every contending transaction (holders and
                // waiters). ODE_LOCK_DEBUG now only toggles the stderr
                // echo inside dump_flight.
                let holders: Vec<_> = tables
                    .locks
                    .get(&key)
                    .map(|s| s.holders.iter().map(|(t, m)| (*t, *m)).collect())
                    .unwrap_or_default();
                let waiting: Vec<_> = tables.waiting.iter().map(|(t, w)| (*t, *w)).collect();
                self.metrics.dump_flight(format!(
                    "lock timeout txn={txn:?} key={key:?} mode={mode:?} holders={holders:?} waiting={waiting:?}"
                ));
                break Err(StorageError::LockTimeout(txn));
            }
        };
        tables.waiting.remove(&txn);
        let waited = started.elapsed().as_micros() as u64;
        self.stats.lock().wait_micros += waited;
        self.metrics.lock_wait_micros.record(waited);
        result
    }

    fn grant(tables: &mut Tables, txn: TxnId, key: LockKey, mode: LockMode) {
        let state = tables.locks.entry(key).or_default();
        state.holders.insert(txn, mode);
        tables.held.entry(txn).or_default().insert(key);
    }

    /// The mode `txn` holds on `key`, if any.
    pub fn held(&self, txn: TxnId, key: LockKey) -> Option<LockMode> {
        self.tables
            .lock()
            .locks
            .get(&key)
            .and_then(|s| s.holders.get(&txn))
            .copied()
    }

    /// Release every lock `txn` holds (end of transaction — strict 2PL).
    /// Returns the number of locks released. See the module docs for how
    /// this ordering relates to commit durability.
    pub fn unlock_all(&self, txn: TxnId) -> usize {
        let mut tables = self.tables.lock();
        let mut released = 0;
        if let Some(keys) = tables.held.remove(&txn) {
            for key in keys {
                if let Some(state) = tables.locks.get_mut(&key) {
                    state.holders.remove(&txn);
                    released += 1;
                    if state.holders.is_empty() {
                        tables.locks.remove(&key);
                    }
                }
            }
        }
        drop(tables);
        self.cv.notify_all();
        released
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> LockStats {
        *self.stats.lock()
    }

    /// Reset counters (benchmarks call this between phases).
    pub fn reset_stats(&self) {
        *self.stats.lock() = LockStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T1: TxnId = TxnId(1);
    const T2: TxnId = TxnId(2);

    fn key(n: u64) -> LockKey {
        LockKey::Object(n)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::default();
        lm.lock(T1, key(1), LockMode::Shared).unwrap();
        lm.lock(T2, key(1), LockMode::Shared).unwrap();
        assert_eq!(lm.held(T1, key(1)), Some(LockMode::Shared));
        assert_eq!(lm.held(T2, key(1)), Some(LockMode::Shared));
        assert_eq!(lm.stats().waits, 0);
    }

    #[test]
    fn exclusive_blocks_and_releases() {
        let lm = Arc::new(LockManager::default());
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let handle = std::thread::spawn(move || lm2.lock(T2, key(1), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!handle.is_finished(), "T2 should be blocked");
        lm.unlock_all(T1);
        handle.join().unwrap().unwrap();
        assert_eq!(lm.held(T2, key(1)), Some(LockMode::Exclusive));
        assert_eq!(lm.stats().waits, 1);
    }

    #[test]
    fn reacquire_is_noop() {
        let lm = LockManager::default();
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        lm.lock(T1, key(1), LockMode::Shared).unwrap(); // weaker: still fine
        assert_eq!(lm.held(T1, key(1)), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let lm = LockManager::default();
        lm.lock(T1, key(1), LockMode::Shared).unwrap();
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        assert_eq!(lm.held(T1, key(1)), Some(LockMode::Exclusive));
        assert_eq!(lm.stats().upgrades, 1);
    }

    #[test]
    fn deadlock_detected() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        lm.lock(T2, key(2), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        // T2 waits for key 1 (held by T1).
        let handle = std::thread::spawn(move || {
            let r = lm2.lock(T2, key(1), LockMode::Exclusive);
            if r.is_ok() {
                lm2.unlock_all(T2);
            }
            r
        });
        std::thread::sleep(Duration::from_millis(50));
        // T1 now waits for key 2 (held by T2) -> cycle.
        let r1 = lm.lock(T1, key(2), LockMode::Exclusive);
        let r2 = handle.join().unwrap();
        let d1 = matches!(r1, Err(StorageError::Deadlock(_)));
        let d2 = matches!(r2, Err(StorageError::Deadlock(_)));
        assert!(d1 || d2, "at least one victim: {r1:?} {r2:?}");
        assert!(lm.stats().deadlocks >= 1);
        // Clean up so nothing dangles.
        lm.unlock_all(T1);
        lm.unlock_all(T2);
    }

    #[test]
    fn upgrade_deadlock_detected() {
        // Classic S+S then both upgrade: a cycle through the same key.
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        lm.lock(T1, key(1), LockMode::Shared).unwrap();
        lm.lock(T2, key(1), LockMode::Shared).unwrap();
        let lm2 = Arc::clone(&lm);
        let handle = std::thread::spawn(move || {
            let r = lm2.lock(T2, key(1), LockMode::Exclusive);
            if r.is_err() {
                lm2.unlock_all(T2);
            }
            r
        });
        std::thread::sleep(Duration::from_millis(50));
        let r1 = lm.lock(T1, key(1), LockMode::Exclusive);
        if r1.is_err() {
            lm.unlock_all(T1);
        }
        let r2 = handle.join().unwrap();
        assert!(
            matches!(r1, Err(StorageError::Deadlock(_)))
                || matches!(r2, Err(StorageError::Deadlock(_))),
            "upgrade deadlock must pick a victim: {r1:?} {r2:?}"
        );
    }

    #[test]
    fn timeout_fires_without_deadlock() {
        let lm = Arc::new(LockManager::new(Duration::from_millis(100)));
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        let r = lm.lock(T2, key(1), LockMode::Shared);
        assert!(matches!(r, Err(StorageError::LockTimeout(_))));
    }

    #[test]
    fn unlock_all_releases_everything() {
        let lm = LockManager::default();
        lm.lock(T1, key(1), LockMode::Shared).unwrap();
        lm.lock(T1, key(2), LockMode::Exclusive).unwrap();
        lm.lock(T1, LockKey::Roots, LockMode::Exclusive).unwrap();
        lm.unlock_all(T1);
        assert_eq!(lm.held(T1, key(1)), None);
        assert_eq!(lm.held(T1, key(2)), None);
        assert_eq!(lm.held(T1, LockKey::Roots), None);
    }

    #[test]
    fn wait_time_is_recorded() {
        let lm = Arc::new(LockManager::default());
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let handle = std::thread::spawn(move || lm2.lock(T2, key(1), LockMode::Shared));
        std::thread::sleep(Duration::from_millis(60));
        lm.unlock_all(T1);
        handle.join().unwrap().unwrap();
        assert!(lm.stats().wait_micros >= 40_000);
        // The wait also lands in the engine-wide latency histogram.
        let h = lm.metrics.lock_wait_micros.snapshot();
        assert_eq!(h.count, 1);
        assert!(h.sum >= 40_000);
        assert!(h.p99() >= 40_000);
    }

    #[test]
    fn lock_timeout_dumps_flight_log_with_both_txn_ids() {
        let metrics = Arc::new(Metrics::new());
        let lm = LockManager::with_metrics(Duration::from_millis(100), Arc::clone(&metrics));
        lm.lock(T1, key(7), LockMode::Exclusive).unwrap();
        let r = lm.lock(T2, key(7), LockMode::Shared);
        assert!(matches!(r, Err(StorageError::LockTimeout(_))));
        let dumps = metrics.flight_dumps();
        assert_eq!(dumps.len(), 1, "timeout must preserve exactly one dump");
        let dump = &dumps[0];
        assert!(dump.reason.contains("lock timeout"), "{}", dump.reason);
        // Both contending transactions are identified: the waiter in the
        // reason header, the holder in the holders list.
        assert!(
            dump.reason.contains("TxnId(2)"),
            "waiter missing: {}",
            dump.reason
        );
        assert!(
            dump.reason.contains("TxnId(1)"),
            "holder missing: {}",
            dump.reason
        );
        // The flight log itself carries the waiter's LockWait record.
        assert!(dump
            .records
            .iter()
            .any(|r| matches!(r.event, ode_obs::FlightEvent::LockWait { txn: 2, .. })));
    }

    #[test]
    fn deadlock_victim_dumps_flight_log() {
        let metrics = Arc::new(Metrics::new());
        let lm = Arc::new(LockManager::with_metrics(
            Duration::from_secs(30),
            Arc::clone(&metrics),
        ));
        lm.lock(T1, key(1), LockMode::Exclusive).unwrap();
        lm.lock(T2, key(2), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let handle = std::thread::spawn(move || {
            let r = lm2.lock(T2, key(1), LockMode::Exclusive);
            if r.is_ok() {
                lm2.unlock_all(T2);
            }
            r
        });
        std::thread::sleep(Duration::from_millis(50));
        let r1 = lm.lock(T1, key(2), LockMode::Exclusive);
        let r2 = handle.join().unwrap();
        assert!(r1.is_err() || r2.is_err());
        let dumps = metrics.flight_dumps();
        assert!(!dumps.is_empty(), "victim selection must preserve a dump");
        assert!(dumps[0].reason.contains("deadlock victim"));
        lm.unlock_all(T1);
        lm.unlock_all(T2);
    }
}
