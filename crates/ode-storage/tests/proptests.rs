//! Property-based tests for the storage substrate: the page, index, and
//! recovery layers are compared against in-memory reference models under
//! random operation sequences.

use ode_storage::btree::{u64_key, BTree};
use ode_storage::hashindex::HashIndex;
use ode_storage::oid::Oid;
use ode_storage::page::{Page, PAGE_SIZE};
use ode_storage::storage::{Storage, StorageOptions};
use ode_testutil::TempDir;
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};

// ---------------------------------------------------------------------
// Slotted pages vs a HashMap model
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Update(u8, Vec<u8>),
    Delete(u8),
}

fn page_ops() -> impl Strategy<Value = Vec<PageOp>> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..300))
                .prop_map(|(s, d)| PageOp::Update(s, d)),
            any::<u8>().prop_map(PageOp::Delete),
        ],
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn page_matches_model(ops in page_ops()) {
        let mut page = Page::new();
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                PageOp::Insert(data) => {
                    match page.insert(&data) {
                        Ok(slot) => {
                            prop_assert!(!model.contains_key(&slot), "slot reuse while occupied");
                            model.insert(slot, data);
                        }
                        Err(_) => {
                            // Full is only acceptable when the page really
                            // can't hold the record.
                            prop_assert!(!page.can_insert(data.len()));
                        }
                    }
                }
                PageOp::Update(slot, data) => {
                    let slot = slot as u16 % 40;
                    let r = page.update(slot, &data);
                    if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(slot) {
                        if r.is_ok() {
                            e.insert(data);
                        }
                        // Err(Full) acceptable; contents must be unchanged.
                    } else {
                        prop_assert!(r.is_err(), "update of free slot must fail");
                    }
                }
                PageOp::Delete(slot) => {
                    let slot = slot as u16 % 40;
                    let r = page.delete(slot);
                    prop_assert_eq!(r.is_ok(), model.remove(&slot).is_some());
                }
            }
            // Full consistency check after every op.
            for (slot, data) in &model {
                prop_assert_eq!(page.read(*slot), Some(data.as_slice()));
            }
            let live: usize = model.len();
            prop_assert_eq!(page.occupied_slots().len(), live);
            prop_assert!(page.usable_free() <= PAGE_SIZE);
        }
        // Round-trip the final image through bytes.
        let reloaded = Page::from_bytes(page.as_bytes());
        for (slot, data) in &model {
            prop_assert_eq!(reloaded.read(*slot), Some(data.as_slice()));
        }
    }
}

// ---------------------------------------------------------------------
// Transactional heap + recovery vs a model of committed effects
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TxnScriptOp {
    Allocate(Vec<u8>),
    Update(u8, Vec<u8>),
    Free(u8),
}

fn txn_scripts() -> impl Strategy<Value = Vec<(bool, Vec<TxnScriptOp>)>> {
    // Sizes up to 6000 bytes exercise in-page records, forwarding
    // relocations, and multi-page overflow chains.
    let op = prop_oneof![
        prop::collection::vec(any::<u8>(), 0..6000).prop_map(TxnScriptOp::Allocate),
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..6000))
            .prop_map(|(i, d)| TxnScriptOp::Update(i, d)),
        any::<u8>().prop_map(TxnScriptOp::Free),
    ];
    prop::collection::vec((any::<bool>(), prop::collection::vec(op, 1..8)), 1..10)
}

/// Run the scripts against a storage; returns the surviving (oid -> bytes)
/// model of committed state.
fn run_scripts(storage: &Storage, scripts: &[(bool, Vec<TxnScriptOp>)]) -> HashMap<Oid, Vec<u8>> {
    let mut committed: HashMap<Oid, Vec<u8>> = HashMap::new();
    let cluster = {
        let t = storage.begin().unwrap();
        let c = storage.create_cluster(t).unwrap();
        storage.commit(t).unwrap();
        c
    };
    for (commit, ops) in scripts {
        let txn = storage.begin().unwrap();
        let mut view = committed.clone();
        for op in ops {
            match op {
                TxnScriptOp::Allocate(data) => {
                    let oid = storage.allocate(txn, cluster, data).unwrap();
                    view.insert(oid, data.clone());
                }
                TxnScriptOp::Update(i, data) => {
                    let mut oids: Vec<&Oid> = view.keys().collect();
                    oids.sort();
                    if oids.is_empty() {
                        continue;
                    }
                    let oid = *oids[*i as usize % oids.len()];
                    storage.update(txn, oid, data).unwrap();
                    view.insert(oid, data.clone());
                }
                TxnScriptOp::Free(i) => {
                    let mut oids: Vec<&Oid> = view.keys().collect();
                    oids.sort();
                    if oids.is_empty() {
                        continue;
                    }
                    let oid = *oids[*i as usize % oids.len()];
                    storage.free(txn, oid).unwrap();
                    view.remove(&oid);
                }
            }
        }
        if *commit {
            storage.commit(txn).unwrap();
            committed = view;
        } else {
            storage.abort(txn).unwrap();
        }
    }
    committed
}

fn check_state(storage: &Storage, model: &HashMap<Oid, Vec<u8>>) {
    let txn = storage.begin().unwrap();
    for (oid, data) in model {
        assert_eq!(&storage.read(txn, *oid).unwrap(), data, "object {oid}");
    }
    storage.commit(txn).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aborts_roll_back_to_committed_state(scripts in txn_scripts()) {
        let storage = Storage::volatile();
        let model = run_scripts(&storage, &scripts);
        check_state(&storage, &model);
    }

    #[test]
    fn crash_recovery_reproduces_committed_state(scripts in txn_scripts()) {
        let dir = TempDir::new("prop-recovery");
        let model;
        {
            let storage = Storage::create(dir.path(), StorageOptions::default()).unwrap();
            model = run_scripts(&storage, &scripts);
            // Crash: no checkpoint, no close.
            std::mem::forget(storage);
        }
        {
            let storage = Storage::open(dir.path(), StorageOptions::default()).unwrap();
            check_state(&storage, &model);
        }
    }

    #[test]
    fn clean_reopen_reproduces_committed_state(scripts in txn_scripts()) {
        let dir = TempDir::new("prop-reopen");
        let model;
        {
            let storage = Storage::create(dir.path(), StorageOptions::memory()).unwrap();
            model = run_scripts(&storage, &scripts);
            storage.close().unwrap();
        }
        {
            let storage = Storage::open(dir.path(), StorageOptions::memory()).unwrap();
            check_state(&storage, &model);
        }
    }
}

// ---------------------------------------------------------------------
// MVCC snapshot isolation vs the committed-prefix history
// ---------------------------------------------------------------------

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// `run_scripts` with concurrent snapshot readers racing the writer.
///
/// Every state a reader observes through `begin_read_only` must be
/// *exactly* one of the committed prefixes — never a torn mid-transaction
/// mixture, never an uncommitted write, never a state that was later
/// aborted. The writer publishes each about-to-commit state into the
/// shared history *before* its commit installs the versions, so at any
/// instant every installed state is present in the vector (possibly
/// alongside not-yet-visible future ones, which simply fail to match).
fn snapshot_readers_see_committed_prefixes(
    shards: usize,
    scripts: &[(bool, Vec<TxnScriptOp>)],
) -> Result<(), TestCaseError> {
    let storage = Arc::new(Storage::volatile_with(StorageOptions {
        shards,
        ..StorageOptions::memory()
    }));
    let cluster = {
        let t = storage.begin().unwrap();
        let c = storage.create_cluster(t).unwrap();
        storage.commit(t).unwrap();
        c
    };
    type History = Arc<Mutex<Vec<HashMap<Oid, Vec<u8>>>>>;
    let history: History = Arc::new(Mutex::new(vec![HashMap::new()]));
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let storage = Arc::clone(&storage);
            let history = Arc::clone(&history);
            let done = Arc::clone(&done);
            std::thread::spawn(move || -> Result<usize, String> {
                let mut checks = 0usize;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let txn = storage.begin_read_only().map_err(|e| e.to_string())?;
                    let mut observed: HashMap<Oid, Vec<u8>> = HashMap::new();
                    // Scan and per-object reads share one snapshot, so
                    // every scanned oid must still be readable.
                    for oid in storage
                        .scan_cluster(txn, cluster)
                        .map_err(|e| e.to_string())?
                    {
                        let data = storage.read(txn, oid).map_err(|e| e.to_string())?;
                        observed.insert(oid, data);
                    }
                    storage.commit(txn).map_err(|e| e.to_string())?;
                    {
                        let hist = history.lock().unwrap();
                        if !hist.contains(&observed) {
                            return Err(format!(
                                "snapshot of {} objects matches none of the {} committed prefixes",
                                observed.len(),
                                hist.len()
                            ));
                        }
                    }
                    checks += 1;
                    if finished {
                        return Ok(checks);
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    // The writer: `run_scripts` inlined, publishing each committed state.
    let mut committed: HashMap<Oid, Vec<u8>> = HashMap::new();
    for (commit, ops) in scripts {
        let txn = storage.begin().unwrap();
        let mut view = committed.clone();
        for op in ops {
            match op {
                TxnScriptOp::Allocate(data) => {
                    let oid = storage.allocate(txn, cluster, data).unwrap();
                    view.insert(oid, data.clone());
                }
                TxnScriptOp::Update(i, data) => {
                    let mut oids: Vec<&Oid> = view.keys().collect();
                    oids.sort();
                    if oids.is_empty() {
                        continue;
                    }
                    let oid = *oids[*i as usize % oids.len()];
                    storage.update(txn, oid, data).unwrap();
                    view.insert(oid, data.clone());
                }
                TxnScriptOp::Free(i) => {
                    let mut oids: Vec<&Oid> = view.keys().collect();
                    oids.sort();
                    if oids.is_empty() {
                        continue;
                    }
                    let oid = *oids[*i as usize % oids.len()];
                    storage.free(txn, oid).unwrap();
                    view.remove(&oid);
                }
            }
        }
        if *commit {
            history.lock().unwrap().push(view.clone());
            storage.commit(txn).unwrap();
            committed = view;
        } else {
            storage.abort(txn).unwrap();
        }
    }
    done.store(true, Ordering::Release);
    for r in readers {
        let checks = r.join().unwrap().map_err(TestCaseError::fail)?;
        prop_assert!(checks > 0);
    }

    // A snapshot taken after the writer finished sees the final state,
    // exactly — no leaked versions, no resurrected deletes.
    let txn = storage.begin_read_only().unwrap();
    let mut last: HashMap<Oid, Vec<u8>> = HashMap::new();
    for oid in storage.scan_cluster(txn, cluster).unwrap() {
        last.insert(oid, storage.read(txn, oid).unwrap());
    }
    storage.commit(txn).unwrap();
    prop_assert_eq!(&last, &committed);
    // With no snapshot registered and no writer active, the version store
    // must have drained back to empty (the GC horizon regression class).
    prop_assert_eq!(storage.version_stats().entries, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn snapshot_isolation_holds_single_shard(scripts in txn_scripts()) {
        snapshot_readers_see_committed_prefixes(1, &scripts)?;
    }

    #[test]
    fn snapshot_isolation_holds_eight_shards(scripts in txn_scripts()) {
        snapshot_readers_see_committed_prefixes(8, &scripts)?;
    }
}

// ---------------------------------------------------------------------
// Hash index and B-tree vs std collections
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum IndexOp {
    Insert(u16, u32),
    Remove(u16, u32),
    RemoveAll(u16),
}

fn index_ops() -> impl Strategy<Value = Vec<IndexOp>> {
    prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| IndexOp::Insert(k % 64, v % 16)),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| IndexOp::Remove(k % 64, v % 16)),
            any::<u16>().prop_map(|k| IndexOp::RemoveAll(k % 64)),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hash_index_matches_model(ops in index_ops()) {
        let storage = Storage::volatile();
        let txn = storage.begin().unwrap();
        let cluster = storage.create_cluster(txn).unwrap();
        let index = HashIndex::create(&storage, txn, cluster).unwrap();
        let mut model: HashMap<u64, Vec<Oid>> = HashMap::new();
        for op in ops {
            match op {
                IndexOp::Insert(k, v) => {
                    let key = k as u64;
                    let value = Oid::from_u64(v as u64);
                    index.insert(&storage, txn, key, value).unwrap();
                    let entry = model.entry(key).or_default();
                    if !entry.contains(&value) {
                        entry.push(value);
                    }
                }
                IndexOp::Remove(k, v) => {
                    let key = k as u64;
                    let value = Oid::from_u64(v as u64);
                    let removed = index.remove(&storage, txn, key, value).unwrap();
                    let model_removed = match model.get_mut(&key) {
                        Some(values) => match values.iter().position(|x| *x == value) {
                            Some(i) => {
                                values.remove(i);
                                if values.is_empty() {
                                    model.remove(&key);
                                }
                                true
                            }
                            None => false,
                        },
                        None => false,
                    };
                    prop_assert_eq!(removed, model_removed);
                }
                IndexOp::RemoveAll(k) => {
                    let key = k as u64;
                    let removed = index.remove_all(&storage, txn, key).unwrap();
                    let expected = model.remove(&key).map(|v| v.len()).unwrap_or(0);
                    prop_assert_eq!(removed, expected);
                }
            }
        }
        // Final state comparison.
        prop_assert_eq!(index.key_count(&storage, txn).unwrap(), model.len() as u64);
        for (key, values) in &model {
            prop_assert_eq!(&index.get(&storage, txn, *key).unwrap(), values);
        }
        storage.commit(txn).unwrap();
    }

    #[test]
    fn btree_matches_model(ops in prop::collection::vec(
        prop_oneof![
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| (0u8, k % 256, v)),
            (any::<u16>(), any::<u32>()).prop_map(|(k, v)| (1u8, k % 256, v)),
        ],
        0..200,
    )) {
        let storage = Storage::volatile();
        let txn = storage.begin().unwrap();
        let cluster = storage.create_cluster(txn).unwrap();
        let tree = BTree::create(&storage, txn, cluster).unwrap();
        let mut model: BTreeMap<u64, Oid> = BTreeMap::new();
        for (kind, k, v) in ops {
            let key = k as u64;
            match kind {
                0 => {
                    let value = Oid::from_u64(v as u64);
                    let prev = tree.insert(&storage, txn, &u64_key(key), value).unwrap();
                    prop_assert_eq!(prev, model.insert(key, value));
                }
                _ => {
                    let removed = tree.remove(&storage, txn, &u64_key(key)).unwrap();
                    prop_assert_eq!(removed, model.remove(&key));
                }
            }
        }
        prop_assert_eq!(tree.len(&storage, txn).unwrap(), model.len() as u64);
        let scanned = tree.scan_all(&storage, txn).unwrap();
        let expected: Vec<(Vec<u8>, Oid)> = model
            .iter()
            .map(|(k, v)| (u64_key(*k).to_vec(), *v))
            .collect();
        prop_assert_eq!(scanned, expected);
        storage.commit(txn).unwrap();
    }
}
