//! # ode-obs — engine-wide observability for the Ode reproduction
//!
//! One [`Metrics`] instance is shared (via `Arc`) by every layer of a
//! database: the storage substrate (locks, WAL, buffer pool, B-tree), the
//! event machinery (FSM compilation and run-time advances), and the
//! trigger run-time (postings, firings by coupling mode, queue depths).
//! All counters are relaxed atomics — incrementing one is lock-free and
//! never blocks the engine — and [`Metrics::snapshot`] returns a plain
//! [`MetricsSnapshot`] struct of `u64`s (no serde, no allocation beyond
//! the struct itself) that can be diffed, asserted on in tests, or
//! rendered in the Prometheus text exposition format.
//!
//! The paper's own evaluation (§6) leans on exactly these signals: lock
//! waits and deadlock victims for the "triggers turn read access into
//! write access" observation, per-machine state counts for the sparse-vs-
//! dense transition-table decision, and mask/pseudo-event counts for the
//! quiescence behaviour of Figure 1 machines.
//!
//! A [`TraceSink`] can additionally be attached to receive structured
//! [`TraceEvent`]s at the moments the counters tick. The hot path pays a
//! single relaxed boolean load when no sink is installed; event payloads
//! are only constructed when one is.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A single monotonically increasing, lock-free counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (benchmarks between phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// A structured trace event, emitted to an attached [`TraceSink`] at the
/// moment the corresponding counter ticks. Borrowed fields keep emission
/// allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TraceEvent<'a> {
    /// A lock request had to wait for an incompatible holder.
    LockWait { txn: u64, exclusive: bool },
    /// A waiting lock request was chosen as a deadlock victim.
    DeadlockVictim { txn: u64 },
    /// The WAL was fsynced.
    WalFsync { bytes_flushed: u64 },
    /// The buffer pool evicted a clean frame.
    BufferEviction { page: u32 },
    /// A B-tree node split (the root split grows the tree by one level).
    BtreeSplit { root: bool },
    /// A transaction committed.
    TxnCommit { txn: u64 },
    /// A transaction aborted.
    TxnAbort { txn: u64 },
    /// A trigger event expression was compiled to an FSM.
    FsmCompiled {
        trigger: &'a str,
        nfa_states: u64,
        dfa_states: u64,
        nanos: u64,
    },
    /// A basic event was posted to an object.
    EventPosted { event: u32, anchor: u64 },
    /// A trigger action ran.
    TriggerFired { trigger: &'a str, coupling: &'a str },
}

/// Receiver for [`TraceEvent`]s. Implementations must be cheap and must
/// not call back into the database (they run under engine-internal locks).
pub trait TraceSink: Send + Sync {
    /// Called once per traced occurrence.
    fn on_event(&self, event: &TraceEvent<'_>);
}

/// Declares every counter once; expands to the `Metrics` registry, the
/// plain [`MetricsSnapshot`] struct, and the Prometheus renderer so the
/// three can never drift apart.
macro_rules! counters {
    ($( $(#[doc = $doc:expr])+ $name:ident, )+) => {
        /// The engine-wide metrics registry. One instance per database,
        /// shared by all layers; all counters are relaxed atomics.
        pub struct Metrics {
            $( $(#[doc = $doc])+ pub $name: Counter, )+
            has_sink: AtomicBool,
            sink: RwLock<Option<Arc<dyn TraceSink>>>,
        }

        /// Point-in-time copy of every counter — a serde-free plain
        /// struct, cheap to copy and diff.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $( $(#[doc = $doc])+ pub $name: u64, )+
        }

        impl Metrics {
            /// A fresh registry with all counters at zero and no sink.
            pub fn new() -> Metrics {
                Metrics {
                    $( $name: Counter::new(), )+
                    has_sink: AtomicBool::new(false),
                    sink: RwLock::new(None),
                }
            }

            /// Copy every counter.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $( $name: self.$name.get(), )+
                }
            }

            /// Zero every counter (benchmarks between phases). The sink
            /// stays attached.
            pub fn reset(&self) {
                $( self.$name.reset(); )+
            }
        }

        impl MetricsSnapshot {
            /// Render in the Prometheus text exposition format, one
            /// `ode_`-prefixed counter per metric with HELP/TYPE headers.
            pub fn render_prometheus(&self) -> String {
                use std::fmt::Write as _;
                let mut out = String::new();
                $(
                    let help: &str = concat!($($doc),+);
                    let _ = writeln!(out, "# HELP ode_{} {}", stringify!($name), help.trim());
                    let _ = writeln!(out, "# TYPE ode_{} counter", stringify!($name));
                    let _ = writeln!(out, "ode_{} {}", stringify!($name), self.$name);
                )+
                out
            }
        }
    };
}

counters! {
    // ---------------------------------------------------------------
    // ode-storage: lock manager
    // ---------------------------------------------------------------
    /// Shared-mode lock grants (immediate or after waiting).
    lock_shared_acquisitions,
    /// Exclusive-mode lock grants (immediate or after waiting).
    lock_exclusive_acquisitions,
    /// Shared-mode requests that had to wait at least once.
    lock_shared_waits,
    /// Exclusive-mode requests that had to wait at least once.
    lock_exclusive_waits,
    /// Shared-to-exclusive upgrades (§6: triggers turn reads into writes).
    lock_upgrades,
    /// Requests aborted as deadlock victims.
    lock_deadlock_victims,
    /// Total microseconds spent blocked on locks.
    lock_wait_micros,
    // ---------------------------------------------------------------
    // ode-storage: WAL, buffer pool, B-tree, transactions
    // ---------------------------------------------------------------
    /// Log records appended to the WAL.
    wal_appends,
    /// Payload bytes appended to the WAL (including framing).
    wal_bytes,
    /// WAL fsync (sync_data) calls.
    wal_fsyncs,
    /// Group-commit flushes that made at least one commit record durable.
    wal_group_commits,
    /// Commit records made durable across all group-commit flushes
    /// (`wal_group_size_sum / wal_group_commits` = mean group size).
    wal_group_size_sum,
    /// Microseconds committers spent waiting for their commit LSN to
    /// become durable (leader write+fsync time included).
    commit_flush_wait_micros,
    /// Faults injected by an armed fault-injection plan (tests only).
    faults_injected,
    /// Buffer-pool page requests served from cache.
    buf_hits,
    /// Buffer-pool page requests that read the data file.
    buf_misses,
    /// Buffer-pool frames evicted (clean frames only; no-steal).
    buf_evictions,
    /// B-tree node splits (leaf, internal, and root).
    btree_splits,
    /// Transactions committed.
    txn_commits,
    /// Transactions aborted.
    txn_aborts,
    // ---------------------------------------------------------------
    // ode-events: FSM compilation and run-time
    // ---------------------------------------------------------------
    /// Trigger event expressions compiled to FSMs.
    fsm_compiles,
    /// Nanoseconds spent compiling trigger FSMs.
    fsm_compile_nanos,
    /// NFA states built across all compilations (Thompson construction).
    nfa_states,
    /// Optimised DFA states across all compilations.
    fsm_states,
    /// Real-event transitions taken by trigger FSMs at run time.
    fsm_transitions,
    /// Mask predicate evaluations performed by trigger FSMs.
    fsm_mask_evals,
    /// True pseudo-events consumed during mask quiescence (§5.4.5).
    fsm_true_events,
    /// False pseudo-events consumed during mask quiescence (§5.4.5).
    fsm_false_events,
    // ---------------------------------------------------------------
    // ode-core: trigger run-time
    // ---------------------------------------------------------------
    /// Basic events posted to objects.
    events_posted,
    /// Index lookups skipped via the header has-triggers flag byte.
    index_skips,
    /// Per-trigger-instance FSM advances performed (persistent and local).
    fsm_advances,
    /// Mask predicate evaluations requested by the trigger run-time.
    mask_evaluations,
    /// Posting advances served from the per-transaction trigger-state
    /// cache (no storage read).
    state_cache_hits,
    /// Posting advances that read and decoded the stored TriggerState
    /// (first touch in the transaction).
    state_cache_misses,
    /// Dirty trigger statenums written back to storage at commit.
    state_writebacks,
    /// Trigger activations.
    trigger_activations,
    /// Trigger deactivations (explicit, once-only, or dead instances).
    trigger_deactivations,
    /// Once-only triggers deactivated because they fired.
    once_only_deactivations,
    /// Immediate-coupled trigger actions executed.
    firings_immediate,
    /// End-coupled (deferred) trigger actions executed.
    firings_end,
    /// Dependent-coupled trigger actions executed.
    firings_dependent,
    /// !dependent-coupled trigger actions executed.
    firings_independent,
    /// Firings on the per-transaction lists when commit processing ran.
    commit_queue_depth,
    /// Firings on the per-transaction lists when abort processing ran.
    abort_queue_depth,
    /// Detached (dependent/!dependent) actions whose system transaction
    /// failed.
    detached_failures,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Metrics").field(&self.snapshot()).finish()
    }
}

impl Metrics {
    /// Attach (or with `None`, detach) a trace sink. Only one sink is
    /// active at a time; the previous one is returned to the caller via
    /// drop.
    pub fn set_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        self.has_sink.store(sink.is_some(), Ordering::Relaxed);
        *self.sink.write().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    /// Emit a trace event to the attached sink, if any. The closure runs
    /// only when a sink is installed, so callers can defer payload
    /// construction.
    pub fn emit<'a>(&self, event: impl FnOnce() -> TraceEvent<'a>) {
        if !self.has_sink.load(Ordering::Relaxed) {
            return;
        }
        let guard = self.sink.read().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = guard.as_ref() {
            sink.on_event(&event());
        }
    }
}

/// Short label for a coupling mode, used in [`TraceEvent::TriggerFired`]
/// so ode-core does not need its own string table.
pub mod coupling_label {
    /// `immediate`.
    pub const IMMEDIATE: &str = "immediate";
    /// `end` (deferred to just before commit).
    pub const END: &str = "end";
    /// `dependent` (separate transaction, commit dependency).
    pub const DEPENDENT: &str = "dependent";
    /// `!dependent` (separate transaction, unconditional).
    pub const INDEPENDENT: &str = "!dependent";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let m = Metrics::new();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        m.events_posted.inc();
        m.events_posted.add(4);
        m.wal_bytes.add(100);
        let s = m.snapshot();
        assert_eq!(s.events_posted, 5);
        assert_eq!(s.wal_bytes, 100);
        assert_eq!(s.fsm_compiles, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = Metrics::new();
        m.lock_upgrades.add(7);
        m.btree_splits.inc();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn snapshot_is_a_plain_copyable_struct() {
        let m = Metrics::new();
        m.txn_commits.add(3);
        let a = m.snapshot();
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(b.txn_commits, 3);
    }

    #[test]
    fn prometheus_rendering_has_help_type_and_value() {
        let m = Metrics::new();
        m.lock_upgrades.add(2);
        m.firings_immediate.add(9);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# HELP ode_lock_upgrades "));
        assert!(text.contains("# TYPE ode_lock_upgrades counter"));
        assert!(text.contains("\node_lock_upgrades 2\n"));
        assert!(text.contains("\node_firings_immediate 9\n"));
        // Every line group is well-formed: value lines parse as u64.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(name.starts_with("ode_"));
            value.parse::<u64>().expect("counter value");
        }
    }

    #[test]
    fn commit_pipeline_counters_round_trip() {
        // The group-commit / fault-injection counters flow through the
        // snapshot and the Prometheus renderer like every other counter —
        // two snapshots taken around an idle period are equal, and a bump
        // to any of the four shows up in both representations.
        let m = Metrics::new();
        m.wal_group_commits.add(3);
        m.wal_group_size_sum.add(17);
        m.commit_flush_wait_micros.add(420);
        m.faults_injected.inc();
        let a = m.snapshot();
        let b = m.snapshot();
        assert_eq!(a, b, "idle snapshots must be equal");
        assert_eq!(a.wal_group_commits, 3);
        assert_eq!(a.wal_group_size_sum, 17);
        assert_eq!(a.commit_flush_wait_micros, 420);
        assert_eq!(a.faults_injected, 1);
        let text = a.render_prometheus();
        for (name, value) in [
            ("wal_group_commits", 3u64),
            ("wal_group_size_sum", 17),
            ("commit_flush_wait_micros", 420),
            ("faults_injected", 1),
        ] {
            assert!(text.contains(&format!("# HELP ode_{name} ")), "{name} HELP");
            assert!(
                text.contains(&format!("\node_{name} {value}\n")),
                "{name} value"
            );
        }
    }

    struct RecordingSink(Mutex<Vec<String>>);
    impl TraceSink for RecordingSink {
        fn on_event(&self, event: &TraceEvent<'_>) {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("{event:?}"));
        }
    }

    #[test]
    fn sink_receives_events_and_detaches() {
        let m = Metrics::new();
        let sink = Arc::new(RecordingSink(Mutex::new(Vec::new())));
        // No sink: the closure must not run.
        m.emit(|| panic!("no sink attached"));
        m.set_sink(Some(sink.clone()));
        m.emit(|| TraceEvent::TxnCommit { txn: 42 });
        m.emit(|| TraceEvent::TriggerFired {
            trigger: "DenyCredit",
            coupling: coupling_label::IMMEDIATE,
        });
        m.set_sink(None);
        m.emit(|| panic!("sink detached"));
        let seen = sink.0.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert!(seen[0].contains("42"));
        assert!(seen[1].contains("DenyCredit"));
    }

    #[test]
    fn metrics_are_send_sync_and_thread_safe() {
        let m = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.events_posted.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.events_posted.get(), 8000);
    }
}
