//! # ode-obs — engine-wide observability for the Ode reproduction
//!
//! One [`Metrics`] instance is shared (via `Arc`) by every layer of a
//! database: the storage substrate (locks, WAL, buffer pool, B-tree), the
//! event machinery (FSM compilation and run-time advances), and the
//! trigger run-time (postings, firings by coupling mode, queue depths).
//! All counters are relaxed atomics — incrementing one is lock-free and
//! never blocks the engine — and [`Metrics::snapshot`] returns a plain
//! [`MetricsSnapshot`] struct (no serde, no allocation beyond the struct
//! itself) that can be diffed, asserted on in tests, or rendered in the
//! Prometheus text exposition format.
//!
//! Latency-shaped signals (lock waits, commit flush waits, fsync
//! duration, post latency, trigger-action latency) are [`Histogram`]s
//! rather than bare sums: log-linear fixed buckets, relaxed atomics, and
//! p50/p99/max accessors, rendered as Prometheus `_bucket`/`_sum`/
//! `_count` series. A sum counter can say lock waits cost 40 ms total;
//! only the histogram can say whether that was 40 000 cheap waits or one
//! catastrophic one.
//!
//! The paper's own evaluation (§6) leans on exactly these signals: lock
//! waits and deadlock victims for the "triggers turn read access into
//! write access" observation, per-machine state counts for the sparse-vs-
//! dense transition-table decision, and mask/pseudo-event counts for the
//! quiescence behaviour of Figure 1 machines.
//!
//! ## Flight recorder
//!
//! Counters aggregate; they cannot explain any *single* firing. The
//! always-on [`FlightRecorder`] keeps the last N trace occurrences in a
//! fixed-capacity ring of compact owned records ([`FlightRecord`]),
//! written lock-free by any number of concurrent threads and snapshotted
//! on demand ([`Metrics::flight_log`]). Each record carries a monotonic
//! timestamp and the causal ids (txn, trigger, FSM states, LSN) needed to
//! reconstruct the chain *posted event → FSM advances (incl. mask
//! pseudo-events) → firing → coupling-mode system transaction → durable
//! commit LSN*. On anomalies — deadlock victim selection, lock timeout,
//! WAL poisoning — the engine calls [`Metrics::dump_flight`], which
//! preserves a [`FlightDump`] for post-mortem inspection (and echoes it
//! to stderr when `ODE_LOCK_DEBUG` is set).
//!
//! A [`TraceSink`] can additionally be attached to receive structured
//! [`TraceEvent`]s at the moments the counters tick. When both the
//! recorder and the sink are disabled the hot path pays two relaxed
//! boolean loads and event payloads are never constructed.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A single monotonically increasing, lock-free counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (benchmarks between phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

/// A lock-free instantaneous-level metric (resident pages, dirty pages,
/// dirty-page-table size): unlike a [`Counter`] it can go down, and it is
/// rendered as a Prometheus `gauge`. Writers publish the current level
/// with [`Gauge::set`].
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Publish the current level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (benchmarks between phases; the owner republishes on
    /// its next change).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.get())
    }
}

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

/// Number of buckets in a [`Histogram`]: 62 finite buckets plus one
/// `+Inf` catch-all.
pub const HISTOGRAM_BUCKETS: usize = 63;

/// A lock-free log-linear histogram of `u64` samples (microseconds, by
/// convention, for every `*_micros` metric).
///
/// Bucket layout: values `0..=7` get exact singleton buckets (indices
/// `0..=7`); beyond that each power-of-two range `[2^m, 2^(m+1))` is
/// split into two sub-buckets (log-linear, ≤ 33% relative error), up to
/// `2^30 - 1`. Larger values land in the final `+Inf` bucket (index 62),
/// which is why [`HistogramSnapshot::max`] is tracked exactly. Recording
/// is three relaxed atomic RMWs plus one `fetch_max` — no locks, no
/// allocation, safe under any concurrency.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value < 8 {
            return value as usize;
        }
        let m = 63 - value.leading_zeros() as usize; // msb position, >= 3
        let half = (value >> (m - 1)) & 1; // upper or lower half of [2^m, 2^(m+1))
        let idx = 8 + (m - 3) * 2 + half as usize;
        idx.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `index`, or `None` for the final
    /// `+Inf` bucket.
    pub fn bucket_bound(index: usize) -> Option<u64> {
        if index < 8 {
            return Some(index as u64);
        }
        if index >= HISTOGRAM_BUCKETS - 1 {
            return None;
        }
        let j = index - 8;
        let m = 3 + j / 2;
        let half = (j % 2) as u64;
        Some((1u64 << m) + (half + 1) * (1u64 << (m - 1)) - 1)
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Reset every bucket, the sum, the count, and the max to zero
    /// (benchmarks between phases — the same affordance
    /// [`Counter::reset`] has).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Point-in-time copy. Individual loads are relaxed, so a snapshot
    /// taken while writers are active may be off by in-flight samples;
    /// quiescent snapshots are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// Point-in-time copy of a [`Histogram`] — a plain `Copy` struct,
/// diffable and assertable like the counter snapshot fields.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram::bucket_bound`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
    /// Largest recorded value (exact, even for `+Inf`-bucket samples).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `p`-quantile (`0.0 < p <= 1.0`):
    /// walks the cumulative bucket counts and returns the inclusive
    /// upper bound of the bucket containing the rank, or [`Self::max`]
    /// for the `+Inf` bucket. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Histogram::bucket_bound(i).unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Median upper bound.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 99th-percentile upper bound.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Render as a Prometheus histogram: cumulative `_bucket{le="..."}`
    /// series ending in `le="+Inf"`, then `_sum` and `_count`.
    pub fn render_prometheus_into(&self, out: &mut String, name: &str, help: &str) {
        self.render_prometheus_into_labeled(out, name, help, "");
    }

    /// [`HistogramSnapshot::render_prometheus_into`] with an extra label
    /// set (e.g. `db="bank"`, no braces) prepended to every sample's
    /// labels. An empty `labels` reproduces the unlabeled exposition
    /// byte-for-byte.
    pub fn render_prometheus_into_labeled(
        &self,
        out: &mut String,
        name: &str,
        help: &str,
        labels: &str,
    ) {
        use std::fmt::Write as _;
        let sep = if labels.is_empty() { "" } else { "," };
        let _ = writeln!(out, "# HELP ode_{name} {help}");
        let _ = writeln!(out, "# TYPE ode_{name} histogram");
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            match Histogram::bucket_bound(i) {
                // Empty exact buckets below 8 are elided to keep the
                // exposition small; cumulative counts are unaffected.
                Some(bound) => {
                    if n != 0 || i >= 8 {
                        let _ = writeln!(
                            out,
                            "ode_{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}"
                        );
                    }
                }
                None => {
                    let _ = writeln!(
                        out,
                        "ode_{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}"
                    );
                }
            }
        }
        if labels.is_empty() {
            let _ = writeln!(out, "ode_{name}_sum {}", self.sum);
            let _ = writeln!(out, "ode_{name}_count {}", self.count);
        } else {
            let _ = writeln!(out, "ode_{name}_sum{{{labels}}} {}", self.sum);
            let _ = writeln!(out, "ode_{name}_count{{{labels}}} {}", self.count);
        }
    }
}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------

/// A structured trace event, recorded by the flight recorder and emitted
/// to an attached [`TraceSink`] at the moment the corresponding counter
/// ticks. Borrowed fields keep emission allocation-free.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TraceEvent<'a> {
    /// A lock request had to wait for an incompatible holder.
    LockWait { txn: u64, exclusive: bool },
    /// A waiting lock request was chosen as a deadlock victim.
    DeadlockVictim { txn: u64 },
    /// The WAL was fsynced.
    WalFsync { bytes_flushed: u64 },
    /// The buffer pool evicted a clean frame.
    BufferEviction { page: u32 },
    /// A B-tree node split (the root split grows the tree by one level).
    BtreeSplit { root: bool },
    /// A transaction committed.
    TxnCommit { txn: u64 },
    /// A transaction aborted.
    TxnAbort { txn: u64 },
    /// A trigger event expression was compiled to an FSM.
    FsmCompiled {
        trigger: &'a str,
        nfa_states: u64,
        dfa_states: u64,
        nanos: u64,
    },
    /// A basic event was posted to an object.
    EventPosted { event: u32, anchor: u64 },
    /// A trigger action ran.
    TriggerFired { trigger: &'a str, coupling: &'a str },
    /// A trigger FSM advanced from one state to another. `pseudo` is
    /// `None` for a real posted event, `Some(truth)` for a mask
    /// True/False pseudo-event consumed during quiescence (§5.4.5).
    FsmAdvanced {
        trigger: &'a str,
        from_state: u32,
        to_state: u32,
        pseudo: Option<bool>,
    },
    /// A detached (dependent / !dependent) firing began its system
    /// transaction. `parent` is the user transaction it depends on
    /// (`None` for `!dependent`, which commits unconditionally).
    SystemTxnStarted {
        txn: u64,
        parent: Option<u64>,
        coupling: &'a str,
    },
    /// A transaction's commit record became durable at `lsn` (after the
    /// group-commit flush it joined reached the disk).
    CommitDurable { txn: u64, lsn: u64 },
}

/// Receiver for [`TraceEvent`]s. Implementations must be cheap and must
/// not call back into the database (they run under engine-internal locks).
pub trait TraceSink: Send + Sync {
    /// Called once per traced occurrence.
    fn on_event(&self, event: &TraceEvent<'_>);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Maximum bytes of a name stored inline in a [`SmallStr`].
pub const SMALL_STR_CAP: usize = 23;

/// A fixed-capacity inline string, so [`FlightRecord`]s stay `Copy` and
/// allocation-free. Longer names are truncated at a char boundary.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SmallStr {
    len: u8,
    bytes: [u8; SMALL_STR_CAP],
}

impl SmallStr {
    /// Store `s`, truncating to [`SMALL_STR_CAP`] bytes at a char
    /// boundary.
    pub fn new(s: &str) -> SmallStr {
        let mut n = s.len().min(SMALL_STR_CAP);
        while n > 0 && !s.is_char_boundary(n) {
            n -= 1;
        }
        let mut bytes = [0u8; SMALL_STR_CAP];
        bytes[..n].copy_from_slice(&s.as_bytes()[..n]);
        SmallStr {
            len: n as u8,
            bytes,
        }
    }

    /// The stored string.
    pub fn as_str(&self) -> &str {
        let n = (self.len as usize).min(SMALL_STR_CAP);
        std::str::from_utf8(&self.bytes[..n]).unwrap_or("")
    }
}

impl std::fmt::Debug for SmallStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_str().fmt(f)
    }
}

impl std::fmt::Display for SmallStr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The owned, compact (`Copy`, fixed-size) form of a [`TraceEvent`],
/// stored in the flight recorder's ring. Name fields are inlined as
/// [`SmallStr`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
#[allow(missing_docs)] // mirrors TraceEvent, whose variants are documented
pub enum FlightEvent {
    LockWait {
        txn: u64,
        exclusive: bool,
    },
    DeadlockVictim {
        txn: u64,
    },
    WalFsync {
        bytes_flushed: u64,
    },
    BufferEviction {
        page: u32,
    },
    BtreeSplit {
        root: bool,
    },
    TxnCommit {
        txn: u64,
    },
    TxnAbort {
        txn: u64,
    },
    FsmCompiled {
        trigger: SmallStr,
        nfa_states: u64,
        dfa_states: u64,
        nanos: u64,
    },
    EventPosted {
        event: u32,
        anchor: u64,
    },
    TriggerFired {
        trigger: SmallStr,
        coupling: SmallStr,
    },
    FsmAdvanced {
        trigger: SmallStr,
        from_state: u32,
        to_state: u32,
        pseudo: Option<bool>,
    },
    SystemTxnStarted {
        txn: u64,
        parent: Option<u64>,
        coupling: SmallStr,
    },
    CommitDurable {
        txn: u64,
        lsn: u64,
    },
}

impl From<&TraceEvent<'_>> for FlightEvent {
    fn from(e: &TraceEvent<'_>) -> FlightEvent {
        match *e {
            TraceEvent::LockWait { txn, exclusive } => FlightEvent::LockWait { txn, exclusive },
            TraceEvent::DeadlockVictim { txn } => FlightEvent::DeadlockVictim { txn },
            TraceEvent::WalFsync { bytes_flushed } => FlightEvent::WalFsync { bytes_flushed },
            TraceEvent::BufferEviction { page } => FlightEvent::BufferEviction { page },
            TraceEvent::BtreeSplit { root } => FlightEvent::BtreeSplit { root },
            TraceEvent::TxnCommit { txn } => FlightEvent::TxnCommit { txn },
            TraceEvent::TxnAbort { txn } => FlightEvent::TxnAbort { txn },
            TraceEvent::FsmCompiled {
                trigger,
                nfa_states,
                dfa_states,
                nanos,
            } => FlightEvent::FsmCompiled {
                trigger: SmallStr::new(trigger),
                nfa_states,
                dfa_states,
                nanos,
            },
            TraceEvent::EventPosted { event, anchor } => FlightEvent::EventPosted { event, anchor },
            TraceEvent::TriggerFired { trigger, coupling } => FlightEvent::TriggerFired {
                trigger: SmallStr::new(trigger),
                coupling: SmallStr::new(coupling),
            },
            TraceEvent::FsmAdvanced {
                trigger,
                from_state,
                to_state,
                pseudo,
            } => FlightEvent::FsmAdvanced {
                trigger: SmallStr::new(trigger),
                from_state,
                to_state,
                pseudo,
            },
            TraceEvent::SystemTxnStarted {
                txn,
                parent,
                coupling,
            } => FlightEvent::SystemTxnStarted {
                txn,
                parent,
                coupling: SmallStr::new(coupling),
            },
            TraceEvent::CommitDurable { txn, lsn } => FlightEvent::CommitDurable { txn, lsn },
        }
    }
}

/// One entry in the flight recorder: a global sequence number, a
/// monotonic timestamp (nanoseconds since the recorder was created),
/// the compact event, and — when the emitting thread was inside a
/// traced statement — the ambient `ode-trace` identity, so the
/// engine-global flight log can be joined against per-session span
/// trees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightRecord {
    /// Global record sequence number (dense, starts at 0).
    pub seq: u64,
    /// Nanoseconds since the recorder's creation (monotonic clock).
    pub nanos: u64,
    /// The traced statement this record occurred under (0 = untraced).
    pub trace_id: u64,
    /// The innermost open span at emission time (0 = untraced or at the
    /// trace root).
    pub span_id: u64,
    /// The recorded occurrence.
    pub event: FlightEvent,
}

const FLIGHT_INIT: FlightRecord = FlightRecord {
    seq: 0,
    nanos: 0,
    trace_id: 0,
    span_id: 0,
    event: FlightEvent::TxnCommit { txn: 0 },
};

/// Default ring capacity of the recorder embedded in [`Metrics`].
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

struct FlightSlot {
    /// Seqlock version: `2*seq + 1` while the record for `seq` is being
    /// written, `2*seq + 2` once complete. The initial 0 matches no
    /// record's completed version, so uninitialised slots are never
    /// surfaced.
    version: AtomicU64,
    data: UnsafeCell<FlightRecord>,
}

// SAFETY: concurrent access to `data` is mediated by the per-slot
// seqlock version — readers discard any record whose version is not the
// exact completed value both before and after the volatile read.
unsafe impl Sync for FlightSlot {}

/// A bounded, lock-free, always-on ring buffer of [`FlightRecord`]s.
///
/// Writers claim a slot with one `fetch_add` and publish through a
/// per-slot seqlock (odd version while writing, even when complete), so
/// recording never blocks and never allocates. [`snapshot`] returns the
/// surviving window oldest-first; records a lapping writer was mid-way
/// through overwriting are skipped rather than surfaced torn.
///
/// [`snapshot`]: FlightRecorder::snapshot
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Box<[FlightSlot]>,
    mask: u64,
    origin: Instant,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` records (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(2).next_power_of_two();
        let slots: Vec<FlightSlot> = (0..cap)
            .map(|_| FlightSlot {
                version: AtomicU64::new(0),
                data: UnsafeCell::new(FLIGHT_INIT),
            })
            .collect();
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            origin: Instant::now(),
        }
    }

    /// Ring capacity in records.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever written (records older than
    /// `head() - capacity()` have been overwritten).
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Append one record. Lock-free: one `fetch_add` to claim a slot,
    /// then a seqlock-guarded plain write.
    pub fn record(&self, event: FlightEvent) {
        let nanos = self.origin.elapsed().as_nanos() as u64;
        let (trace_id, span_id) = ode_trace::current_ids();
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        slot.version.store(2 * seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: the slot is marked write-in-progress (odd version);
        // readers validate the version on both sides of their copy and
        // discard mismatches, so a torn value is never observed. If a
        // lapping writer races this store, both records' reads fail
        // validation and the slot is skipped — data loss bounded to the
        // colliding slot, never a torn read.
        unsafe {
            *slot.data.get() = FlightRecord {
                seq,
                nanos,
                trace_id,
                span_id,
                event,
            };
        }
        slot.version.store(2 * seq + 2, Ordering::Release);
    }

    /// Copy out the surviving window, oldest-first. Records currently
    /// being overwritten by a lapping writer are skipped.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &self.slots[(seq & self.mask) as usize];
            let complete = 2 * seq + 2;
            if slot.version.load(Ordering::Acquire) != complete {
                continue;
            }
            // SAFETY: the slot holds a valid (possibly concurrently
            // overwritten) FlightRecord; the volatile read plus version
            // re-check below rejects any copy that raced a writer.
            let rec = unsafe { std::ptr::read_volatile(slot.data.get()) };
            fence(Ordering::Acquire);
            if slot.version.load(Ordering::Relaxed) != complete {
                continue;
            }
            out.push(rec);
        }
        out
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity())
            .field("head", &self.head())
            .finish()
    }
}

/// A preserved flight-log snapshot taken at an anomaly (deadlock victim,
/// lock timeout, WAL poisoning). The reason string carries the anomaly's
/// own context — e.g. a lock-timeout dump names both the waiting and the
/// holding transactions.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Why the dump was taken (includes anomaly-specific ids).
    pub reason: String,
    /// The flight log at the moment of the dump, oldest-first.
    pub records: Vec<FlightRecord>,
}

/// How many [`FlightDump`]s [`Metrics`] retains (oldest evicted first).
pub const MAX_FLIGHT_DUMPS: usize = 16;

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

/// Declares every counter and histogram once; expands to the `Metrics`
/// registry, the plain [`MetricsSnapshot`] struct, and the Prometheus
/// renderer so the three can never drift apart.
macro_rules! metrics {
    (
        counters { $( $(#[doc = $cdoc:expr])+ $cname:ident, )+ }
        gauges { $( $(#[doc = $gdoc:expr])+ $gname:ident, )+ }
        histograms { $( $(#[doc = $hdoc:expr])+ $hname:ident, )+ }
    ) => {
        /// The engine-wide metrics registry. One instance per database,
        /// shared by all layers; counters, gauges, and histograms are
        /// relaxed atomics, and the embedded flight recorder is lock-free.
        pub struct Metrics {
            $( $(#[doc = $cdoc])+ pub $cname: Counter, )+
            $( $(#[doc = $gdoc])+ pub $gname: Gauge, )+
            $( $(#[doc = $hdoc])+ pub $hname: Histogram, )+
            has_sink: AtomicBool,
            sink: RwLock<Option<Arc<dyn TraceSink>>>,
            flight_enabled: AtomicBool,
            flight: FlightRecorder,
            dumps: Mutex<Vec<FlightDump>>,
        }

        /// Point-in-time copy of every counter and histogram — a
        /// serde-free plain struct, cheap to copy and diff.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct MetricsSnapshot {
            $( $(#[doc = $cdoc])+ pub $cname: u64, )+
            $( $(#[doc = $gdoc])+ pub $gname: u64, )+
            $( $(#[doc = $hdoc])+ pub $hname: HistogramSnapshot, )+
        }

        impl Metrics {
            /// A fresh registry with all counters at zero, an empty
            /// flight recorder (enabled), and no sink.
            pub fn new() -> Metrics {
                Metrics {
                    $( $cname: Counter::new(), )+
                    $( $gname: Gauge::new(), )+
                    $( $hname: Histogram::new(), )+
                    has_sink: AtomicBool::new(false),
                    sink: RwLock::new(None),
                    flight_enabled: AtomicBool::new(true),
                    flight: FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY),
                    dumps: Mutex::new(Vec::new()),
                }
            }

            /// Copy every counter and histogram.
            pub fn snapshot(&self) -> MetricsSnapshot {
                MetricsSnapshot {
                    $( $cname: self.$cname.get(), )+
                    $( $gname: self.$gname.get(), )+
                    $( $hname: self.$hname.snapshot(), )+
                }
            }

            /// Zero every counter and every histogram (benchmarks
            /// between phases). The sink stays attached and the flight
            /// log is preserved.
            pub fn reset(&self) {
                $( self.$cname.reset(); )+
                $( self.$gname.reset(); )+
                $( self.$hname.reset(); )+
            }
        }

        impl MetricsSnapshot {
            /// Render in the Prometheus text exposition format:
            /// `ode_`-prefixed counters with HELP/TYPE headers, and
            /// histograms as cumulative `_bucket`/`_sum`/`_count`
            /// series.
            pub fn render_prometheus(&self) -> String {
                self.render_prometheus_labeled("")
            }

            /// [`MetricsSnapshot::render_prometheus`] with an extra label
            /// set (e.g. `db="bank"`, no braces) attached to every sample
            /// — the multi-database `Engine` renders one page per
            /// database and distinguishes them by label. An empty
            /// `labels` reproduces the unlabeled exposition
            /// byte-for-byte.
            pub fn render_prometheus_labeled(&self, labels: &str) -> String {
                use std::fmt::Write as _;
                let mut out = String::new();
                let braced = if labels.is_empty() {
                    String::new()
                } else {
                    format!("{{{labels}}}")
                };
                $(
                    let help: &str = concat!($($cdoc),+);
                    let _ = writeln!(out, "# HELP ode_{} {}", stringify!($cname), help.trim());
                    let _ = writeln!(out, "# TYPE ode_{} counter", stringify!($cname));
                    let _ = writeln!(out, "ode_{}{} {}", stringify!($cname), braced, self.$cname);
                )+
                $(
                    let help: &str = concat!($($gdoc),+);
                    let _ = writeln!(out, "# HELP ode_{} {}", stringify!($gname), help.trim());
                    let _ = writeln!(out, "# TYPE ode_{} gauge", stringify!($gname));
                    let _ = writeln!(out, "ode_{}{} {}", stringify!($gname), braced, self.$gname);
                )+
                $(
                    let help: &str = concat!($($hdoc),+);
                    self.$hname.render_prometheus_into_labeled(
                        &mut out,
                        stringify!($hname),
                        help.trim(),
                        labels,
                    );
                )+
                out
            }
        }
    };
}

metrics! {
    counters {
        // ---------------------------------------------------------------
        // ode-storage: lock manager
        // ---------------------------------------------------------------
        /// Shared-mode lock grants (immediate or after waiting).
        lock_shared_acquisitions,
        /// Exclusive-mode lock grants (immediate or after waiting).
        lock_exclusive_acquisitions,
        /// Shared-mode requests that had to wait at least once.
        lock_shared_waits,
        /// Exclusive-mode requests that had to wait at least once.
        lock_exclusive_waits,
        /// Shared-to-exclusive upgrades (§6: triggers turn reads into writes).
        lock_upgrades,
        /// Requests aborted as deadlock victims.
        lock_deadlock_victims,
        /// Lock requests granted without waiting.
        lock_immediate_grants,
        /// Lock-table stripe mutex acquisitions that found the stripe held
        /// by another thread (hot-path contention on the manager itself,
        /// as opposed to contention on the locks it hands out).
        lock_stripe_contention,
        // ---------------------------------------------------------------
        // ode-storage: WAL, buffer pool, B-tree, transactions
        // ---------------------------------------------------------------
        /// Log records appended to the WAL.
        wal_appends,
        /// Payload bytes appended to the WAL (including framing).
        wal_bytes,
        /// WAL fsync (sync_data) calls.
        wal_fsyncs,
        /// Group-commit flushes that made at least one commit record durable.
        wal_group_commits,
        /// Commit records made durable across all group-commit flushes
        /// (`wal_group_size_sum / wal_group_commits` = mean group size).
        wal_group_size_sum,
        /// Faults injected by an armed fault-injection plan (tests only).
        faults_injected,
        /// Buffer-pool page requests served from cache.
        buf_hits,
        /// Buffer-pool page requests that read the data file.
        buf_misses,
        /// Buffer-pool frames evicted (clean at eviction time).
        buf_evictions,
        /// Dirty buffer-pool frames stolen: flushed (WAL-first) and
        /// evicted to make room, bounding the pool at its capacity.
        pages_stolen,
        /// Buffer-pool shard mutex acquisitions that found the shard held.
        buf_shard_contention,
        /// Fuzzy and quiesced checkpoints completed.
        checkpoints,
        /// WAL bytes dropped by truncating behind the checkpoint horizon.
        wal_truncated_bytes,
        /// Allocator shard (or global refill) mutex acquisitions that found
        /// the shard held.
        alloc_shard_contention,
        /// Transaction-table stripe mutex acquisitions that found the
        /// stripe held.
        txn_stripe_contention,
        /// B-tree node splits (leaf, internal, and root).
        btree_splits,
        /// Transactions committed.
        txn_commits,
        /// Transactions aborted.
        txn_aborts,
        // ---------------------------------------------------------------
        // ode-events: FSM compilation and run-time
        // ---------------------------------------------------------------
        /// Trigger event expressions compiled to FSMs.
        fsm_compiles,
        /// Nanoseconds spent compiling trigger FSMs.
        fsm_compile_nanos,
        /// NFA states built across all compilations (Thompson construction).
        nfa_states,
        /// Optimised DFA states across all compilations.
        fsm_states,
        /// Real-event transitions taken by trigger FSMs at run time.
        fsm_transitions,
        /// Mask predicate evaluations performed by trigger FSMs.
        fsm_mask_evals,
        /// True pseudo-events consumed during mask quiescence (§5.4.5).
        fsm_true_events,
        /// False pseudo-events consumed during mask quiescence (§5.4.5).
        fsm_false_events,
        // ---------------------------------------------------------------
        // ode-core: trigger run-time
        // ---------------------------------------------------------------
        /// Basic events posted to objects.
        events_posted,
        /// Index lookups skipped via the header has-triggers flag byte.
        index_skips,
        /// Per-trigger-instance FSM advances performed (persistent and local).
        fsm_advances,
        /// Mask predicate evaluations requested by the trigger run-time.
        mask_evaluations,
        /// Posting advances served from the per-transaction trigger-state
        /// cache (no storage read).
        state_cache_hits,
        /// Posting advances that read and decoded the stored TriggerState
        /// (first touch in the transaction).
        state_cache_misses,
        /// Dirty trigger statenums written back to storage at commit.
        state_writebacks,
        /// Trigger activations.
        trigger_activations,
        /// Trigger deactivations (explicit, once-only, or dead instances).
        trigger_deactivations,
        /// Once-only triggers deactivated because they fired.
        once_only_deactivations,
        /// Immediate-coupled trigger actions executed.
        firings_immediate,
        /// End-coupled (deferred) trigger actions executed.
        firings_end,
        /// Dependent-coupled trigger actions executed.
        firings_dependent,
        /// !dependent-coupled trigger actions executed.
        firings_independent,
        /// Firings on the per-transaction lists when commit processing ran.
        commit_queue_depth,
        /// Firings on the per-transaction lists when abort processing ran.
        abort_queue_depth,
        /// Detached (dependent/!dependent) actions whose system transaction
        /// failed.
        detached_failures,
        /// Object reads served from an MVCC snapshot (no lock-manager
        /// locks taken).
        snapshot_reads,
        /// Armed objects skipped by a timer tick because their class does
        /// not declare the ticked timer event.
        tick_skips,
        /// Superseded object versions reclaimed by version-chain GC.
        versions_gced,
        /// Statements whose end-to-end latency exceeded the configured
        /// slow-statement threshold (their span trees went to the slow
        /// log).
        slow_statements,
        /// Commit tickets whose durability wait rode another session's
        /// WAL flush batch instead of triggering its own (the wire
        /// layer's cross-session group-commit piggybacking).
        piggybacked_commits,
    }
    gauges {
        /// Pages currently resident in the buffer pool (all shards).
        buf_resident_pages,
        /// Dirty pages currently resident in the buffer pool.
        buf_dirty_pages,
        /// Dirty-page-table size recorded by the latest checkpoint.
        dpt_size,
    }
    histograms {
        /// Microseconds a blocked lock request spent waiting, one sample
        /// per request that waited.
        lock_wait_micros,
        /// Microseconds committers spent waiting for their commit LSN to
        /// become durable (leader write+fsync time included), one sample
        /// per durable commit.
        commit_flush_wait_micros,
        /// Microseconds per WAL fsync (sync_data) call.
        fsync_micros,
        /// Microseconds per basic-event post, end to end (FSM advances,
        /// mask quiescence, and immediate firings included).
        post_micros,
        /// Microseconds per trigger action execution.
        action_micros,
        /// Nanoseconds spent acquiring a *contended* concurrency-core
        /// shard mutex (lock stripes, buffer shards, allocator shards,
        /// txn-table stripes); uncontended acquisitions are not sampled,
        /// so `_count` equals the sum of the `*_contention` counters.
        shard_acquire_nanos,
        /// Length of an object's version chain sampled each time a commit
        /// installs a new version (long tails mean a snapshot is pinning
        /// the GC horizon far in the past).
        version_chain_len,
        /// Microseconds spent flushing a dirty frame (WAL flush-through +
        /// doublewrite + in-place write) to steal it under memory
        /// pressure, one sample per stolen page.
        evict_flush_micros,
        /// Microseconds per session statement, end to end (parse, run,
        /// firings, and — under autocommit — the commit flush wait).
        statement_micros,
    }
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics::new()
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Metrics").field(&self.snapshot()).finish()
    }
}

impl Metrics {
    /// Attach (or with `None`, detach) a trace sink. Only one sink is
    /// active at a time; the previous one is returned to the caller via
    /// drop.
    pub fn set_sink(&self, sink: Option<Arc<dyn TraceSink>>) {
        self.has_sink.store(sink.is_some(), Ordering::Relaxed);
        *self.sink.write().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    /// Emit a trace event: record it in the flight recorder (when
    /// enabled) and forward it to the attached sink (when any). The
    /// closure runs only when at least one consumer is active, so
    /// callers can defer payload construction.
    pub fn emit<'a>(&self, event: impl FnOnce() -> TraceEvent<'a>) {
        let flight = self.flight_enabled.load(Ordering::Relaxed);
        let sinking = self.has_sink.load(Ordering::Relaxed);
        if !flight && !sinking {
            return;
        }
        let event = event();
        if flight {
            self.flight.record(FlightEvent::from(&event));
        }
        if sinking {
            let guard = self.sink.read().unwrap_or_else(|e| e.into_inner());
            if let Some(sink) = guard.as_ref() {
                sink.on_event(&event);
            }
        }
    }

    /// Enable or disable the flight recorder. Enabled by default; the
    /// ring contents are preserved across a disable/enable cycle.
    pub fn set_flight_enabled(&self, enabled: bool) {
        self.flight_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether the flight recorder is currently recording.
    pub fn flight_enabled(&self) -> bool {
        self.flight_enabled.load(Ordering::Relaxed)
    }

    /// Snapshot the flight recorder's surviving window, oldest-first.
    pub fn flight_log(&self) -> Vec<FlightRecord> {
        self.flight.snapshot()
    }

    /// Preserve a flight-log dump for post-mortem inspection (bounded to
    /// the most recent [`MAX_FLIGHT_DUMPS`]). Called by the engine on
    /// deadlock victim selection, lock timeout, and WAL poisoning. When
    /// the `ODE_LOCK_DEBUG` environment variable is set the dump is also
    /// echoed to stderr.
    pub fn dump_flight(&self, reason: impl Into<String>) {
        let dump = FlightDump {
            reason: reason.into(),
            records: self.flight.snapshot(),
        };
        if std::env::var_os("ODE_LOCK_DEBUG").is_some() {
            eprintln!("=== ode flight dump: {} ===", dump.reason);
            for r in &dump.records {
                eprintln!("  [{:>12} ns] #{:<6} {:?}", r.nanos, r.seq, r.event);
            }
            eprintln!("=== end flight dump ({} records) ===", dump.records.len());
        }
        let mut dumps = self.dumps.lock().unwrap_or_else(|e| e.into_inner());
        if dumps.len() >= MAX_FLIGHT_DUMPS {
            dumps.remove(0);
        }
        dumps.push(dump);
    }

    /// The preserved anomaly dumps, oldest-first.
    pub fn flight_dumps(&self) -> Vec<FlightDump> {
        self.dumps.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Short label for a coupling mode, used in [`TraceEvent::TriggerFired`]
/// so ode-core does not need its own string table.
pub mod coupling_label {
    /// `immediate`.
    pub const IMMEDIATE: &str = "immediate";
    /// `end` (deferred to just before commit).
    pub const END: &str = "end";
    /// `dependent` (separate transaction, commit dependency).
    pub const DEPENDENT: &str = "dependent";
    /// `!dependent` (separate transaction, unconditional).
    pub const INDEPENDENT: &str = "!dependent";
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn counters_start_at_zero_and_accumulate() {
        let m = Metrics::new();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        m.events_posted.inc();
        m.events_posted.add(4);
        m.wal_bytes.add(100);
        let s = m.snapshot();
        assert_eq!(s.events_posted, 5);
        assert_eq!(s.wal_bytes, 100);
        assert_eq!(s.fsm_compiles, 0);
    }

    #[test]
    fn reset_zeroes_everything_including_histograms() {
        let m = Metrics::new();
        m.lock_upgrades.add(7);
        m.btree_splits.inc();
        m.lock_wait_micros.record(150);
        m.commit_flush_wait_micros.record(2_000);
        m.fsync_micros.record(90);
        m.post_micros.record(12);
        m.action_micros.record(3);
        assert_ne!(m.snapshot(), MetricsSnapshot::default());
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
        let s = m.snapshot();
        assert_eq!(s.lock_wait_micros.count, 0);
        assert_eq!(s.lock_wait_micros.sum, 0);
        assert_eq!(s.lock_wait_micros.max, 0);
        assert_eq!(s.lock_wait_micros.p99(), 0);
    }

    #[test]
    fn snapshot_is_a_plain_copyable_struct() {
        let m = Metrics::new();
        m.txn_commits.add(3);
        let a = m.snapshot();
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(b.txn_commits, 3);
    }

    #[test]
    fn histogram_bucket_index_and_bounds_agree() {
        // Exact buckets below 8.
        for v in 0..8u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize);
            assert_eq!(Histogram::bucket_bound(v as usize), Some(v));
        }
        // Every value's bucket bound is >= the value, and the previous
        // bucket's bound is < the value (log-linear containment).
        for shift in 3..40u32 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << shift) + off;
                let i = Histogram::bucket_index(v);
                if let Some(bound) = Histogram::bucket_bound(i) {
                    assert!(bound >= v, "v={v} idx={i} bound={bound}");
                    if i > 0 {
                        let prev = Histogram::bucket_bound(i - 1).unwrap();
                        assert!(prev < v, "v={v} idx={i} prev_bound={prev}");
                    }
                }
            }
        }
        // Bounds are strictly increasing across the finite buckets.
        let mut last = None;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            let b = Histogram::bucket_bound(i).unwrap();
            if let Some(l) = last {
                assert!(b > l, "bucket {i}: {b} <= {l}");
            }
            last = Some(b);
        }
        assert_eq!(Histogram::bucket_bound(HISTOGRAM_BUCKETS - 1), None);
        // Huge values land in the +Inf bucket.
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_percentiles_and_max() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().p50(), 0);
        // 98 fast samples, 2 slow ones: p50 small, p99 large, max exact.
        for _ in 0..98 {
            h.record(10);
        }
        h.record(5_000);
        h.record(7_777);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 98 * 10 + 5_000 + 7_777);
        assert_eq!(s.max, 7_777);
        let p50 = s.p50();
        assert!(
            (10..16).contains(&(p50 as usize)),
            "p50 bound {p50} should be the bucket containing 10"
        );
        let p99 = s.p99();
        assert!(p99 >= 5_000, "p99 bound {p99} must cover the slow samples");
        assert!(
            s.percentile(1.0) >= s.max,
            "p100 bucket bound must cover the exact max"
        );
    }

    #[test]
    fn histogram_prometheus_exposition_is_conformant() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 8, 100, 1_000, u64::MAX] {
            h.record(v);
        }
        let mut out = String::new();
        h.snapshot()
            .render_prometheus_into(&mut out, "demo_micros", "demo help");
        assert!(out.contains("# HELP ode_demo_micros demo help"));
        assert!(out.contains("# TYPE ode_demo_micros histogram"));
        // Cumulative monotonicity and +Inf == count.
        let mut last = 0u64;
        let mut inf = None;
        for line in out.lines().filter(|l| l.contains("_bucket{")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts must be cumulative: {line}");
            last = v;
            if line.contains("le=\"+Inf\"") {
                inf = Some(v);
            }
        }
        assert_eq!(inf, Some(7), "+Inf bucket must equal _count");
        assert!(out.contains("ode_demo_micros_count 7"));
    }

    #[test]
    fn metrics_prometheus_rendering_has_help_type_and_value() {
        let m = Metrics::new();
        m.lock_upgrades.add(2);
        m.firings_immediate.add(9);
        m.lock_wait_micros.record(321);
        let text = m.snapshot().render_prometheus();
        assert!(text.contains("# HELP ode_lock_upgrades "));
        assert!(text.contains("# TYPE ode_lock_upgrades counter"));
        assert!(text.contains("\node_lock_upgrades 2\n"));
        assert!(text.contains("\node_firings_immediate 9\n"));
        assert!(text.contains("# TYPE ode_lock_wait_micros histogram"));
        assert!(text.contains("ode_lock_wait_micros_sum 321"));
        assert!(text.contains("ode_lock_wait_micros_count 1"));
        // Every line group is well-formed: value lines parse as u64.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name value");
            assert!(name.starts_with("ode_"));
            value.parse::<u64>().expect("metric value");
        }
    }

    #[test]
    fn labeled_rendering_carries_the_label_set_on_every_sample() {
        let m = Metrics::new();
        m.firings_immediate.add(4);
        m.lock_wait_micros.record(321);
        let snap = m.snapshot();
        // Empty label set must reproduce the unlabeled exposition exactly
        // (the engine's single-database path and every existing scrape).
        assert_eq!(snap.render_prometheus(), snap.render_prometheus_labeled(""));
        let text = snap.render_prometheus_labeled("db=\"bank\"");
        assert!(text.contains("\node_firings_immediate{db=\"bank\"} 4\n"));
        assert!(text.contains("ode_lock_wait_micros_sum{db=\"bank\"} 321"));
        assert!(text.contains("ode_lock_wait_micros_count{db=\"bank\"} 1"));
        // Histogram buckets keep `le` as the last label.
        assert!(text.contains("ode_lock_wait_micros_bucket{db=\"bank\",le=\"+Inf\"} 1"));
        // Every non-comment sample carries the label set.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert!(
                line.contains("{db=\"bank\""),
                "unlabeled sample in labeled rendering: {line}"
            );
        }
    }

    #[test]
    fn commit_pipeline_counters_round_trip() {
        // The group-commit / fault-injection counters flow through the
        // snapshot and the Prometheus renderer like every other metric —
        // two snapshots taken around an idle period are equal, and a bump
        // to any of the four shows up in both representations.
        let m = Metrics::new();
        m.wal_group_commits.add(3);
        m.wal_group_size_sum.add(17);
        m.commit_flush_wait_micros.record(420);
        m.faults_injected.inc();
        let a = m.snapshot();
        let b = m.snapshot();
        assert_eq!(a, b, "idle snapshots must be equal");
        assert_eq!(a.wal_group_commits, 3);
        assert_eq!(a.wal_group_size_sum, 17);
        assert_eq!(a.commit_flush_wait_micros.sum, 420);
        assert_eq!(a.commit_flush_wait_micros.count, 1);
        assert_eq!(a.faults_injected, 1);
        let text = a.render_prometheus();
        for (name, value) in [("wal_group_commits", 3u64), ("wal_group_size_sum", 17)] {
            assert!(text.contains(&format!("# HELP ode_{name} ")), "{name} HELP");
            assert!(
                text.contains(&format!("\node_{name} {value}\n")),
                "{name} value"
            );
        }
        assert!(text.contains("ode_commit_flush_wait_micros_sum 420"));
    }

    #[test]
    fn flight_records_carry_the_ambient_trace_identity() {
        let m = Metrics::new();
        m.emit(|| TraceEvent::TxnCommit { txn: 1 });
        let buf = Arc::new(ode_trace::TraceBuffer::new());
        let trace = ode_trace::next_trace_id();
        {
            let _g = ode_trace::install(Arc::clone(&buf), trace);
            let _root = ode_trace::span(ode_trace::SpanKind::Statement, "call");
            m.emit(|| TraceEvent::TxnCommit { txn: 2 });
        }
        m.emit(|| TraceEvent::TxnCommit { txn: 3 });
        let log = m.flight_log();
        assert_eq!(log.len(), 3);
        assert_eq!((log[0].trace_id, log[0].span_id), (0, 0), "untraced");
        assert_eq!(log[1].trace_id, trace, "stamped with the ambient trace");
        assert_eq!(log[1].span_id, 1, "statement span was innermost");
        assert_eq!((log[2].trace_id, log[2].span_id), (0, 0), "guard dropped");
    }

    struct RecordingSink(Mutex<Vec<String>>);
    impl TraceSink for RecordingSink {
        fn on_event(&self, event: &TraceEvent<'_>) {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(format!("{event:?}"));
        }
    }

    #[test]
    fn sink_receives_events_and_detaches() {
        let m = Metrics::new();
        // With both the recorder and the sink off, the closure must not
        // run (the hot path defers payload construction entirely).
        m.set_flight_enabled(false);
        let sink = Arc::new(RecordingSink(Mutex::new(Vec::new())));
        m.emit(|| panic!("no consumer attached"));
        m.set_sink(Some(sink.clone()));
        m.emit(|| TraceEvent::TxnCommit { txn: 42 });
        m.emit(|| TraceEvent::TriggerFired {
            trigger: "DenyCredit",
            coupling: coupling_label::IMMEDIATE,
        });
        m.set_sink(None);
        m.emit(|| panic!("sink detached"));
        let seen = sink.0.lock().unwrap();
        assert_eq!(seen.len(), 2);
        assert!(seen[0].contains("42"));
        assert!(seen[1].contains("DenyCredit"));
        // The recorder stayed off throughout: nothing in the flight log.
        assert!(m.flight_log().is_empty());
    }

    #[test]
    fn flight_recorder_is_on_by_default_and_captures_causal_fields() {
        let m = Metrics::new();
        assert!(m.flight_enabled());
        m.emit(|| TraceEvent::EventPosted {
            event: 3,
            anchor: 77,
        });
        m.emit(|| TraceEvent::FsmAdvanced {
            trigger: "AutoRaiseLimit",
            from_state: 1,
            to_state: 2,
            pseudo: Some(true),
        });
        m.emit(|| TraceEvent::SystemTxnStarted {
            txn: 9,
            parent: Some(4),
            coupling: coupling_label::DEPENDENT,
        });
        m.emit(|| TraceEvent::CommitDurable { txn: 9, lsn: 1234 });
        let log = m.flight_log();
        assert_eq!(log.len(), 4);
        // Sequence numbers are dense and timestamps monotone.
        for w in log.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
            assert!(w[1].nanos >= w[0].nanos);
        }
        match log[1].event {
            FlightEvent::FsmAdvanced {
                trigger,
                from_state,
                to_state,
                pseudo,
            } => {
                assert_eq!(trigger.as_str(), "AutoRaiseLimit");
                assert_eq!((from_state, to_state), (1, 2));
                assert_eq!(pseudo, Some(true));
            }
            other => panic!("expected FsmAdvanced, got {other:?}"),
        }
        match log[3].event {
            FlightEvent::CommitDurable { txn, lsn } => assert_eq!((txn, lsn), (9, 1234)),
            other => panic!("expected CommitDurable, got {other:?}"),
        }
    }

    #[test]
    fn flight_recorder_wraparound_keeps_the_most_recent_window() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            r.record(FlightEvent::TxnCommit { txn: i });
        }
        let log = r.snapshot();
        assert_eq!(log.len(), 8);
        let seqs: Vec<u64> = log.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        for w in log.windows(2) {
            assert!(w[1].nanos >= w[0].nanos, "timestamps must stay ordered");
        }
    }

    #[test]
    fn small_str_truncates_at_char_boundary() {
        assert_eq!(SmallStr::new("Buy").as_str(), "Buy");
        let long = "a".repeat(40);
        assert_eq!(SmallStr::new(&long).as_str().len(), SMALL_STR_CAP);
        // 23 bytes falls mid-é (2-byte char) for this string: truncation
        // must back off to the previous boundary, never split a char.
        let multi = "ééééééééééééé"; // 13 chars, 26 bytes
        let s = SmallStr::new(multi);
        assert_eq!(s.as_str(), "ééééééééééé");
    }

    #[test]
    fn flight_dumps_are_preserved_and_bounded() {
        let m = Metrics::new();
        m.emit(|| TraceEvent::LockWait {
            txn: 7,
            exclusive: true,
        });
        for i in 0..(MAX_FLIGHT_DUMPS + 3) {
            m.dump_flight(format!("anomaly {i}"));
        }
        let dumps = m.flight_dumps();
        assert_eq!(dumps.len(), MAX_FLIGHT_DUMPS);
        assert_eq!(
            dumps.last().unwrap().reason,
            format!("anomaly {}", MAX_FLIGHT_DUMPS + 2)
        );
        assert!(dumps
            .last()
            .unwrap()
            .records
            .iter()
            .any(|r| matches!(r.event, FlightEvent::LockWait { txn: 7, .. })));
    }

    #[test]
    fn metrics_are_send_sync_and_thread_safe() {
        let m = Arc::new(Metrics::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.events_posted.inc();
                        m.post_micros.record(5);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.events_posted.get(), 8000);
        let s = m.post_micros.snapshot();
        assert_eq!(s.count, 8000);
        assert_eq!(s.sum, 40_000);
    }
}
