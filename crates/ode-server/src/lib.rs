//! The wire layer: Ode as a standalone server.
//!
//! The paper's Ode is an embedded library (an O++ program links the
//! object manager directly). This crate is the step to a served system:
//! a thread-per-connection TCP front end where each connection owns one
//! [`ode_core::Session`] — current database, at most one open transaction, DDL
//! execution — over a shared [`Engine`]. Statement execution, trigger
//! firing, and coupling semantics are entirely the embedded machinery;
//! the server only moves text.
//!
//! ## Protocol v1 (single statement per frame)
//!
//! Frames are length-prefixed UTF-8: a little-endian `u32` byte count
//! followed by that many bytes. The client's first frame must be
//! `AUTH <token>`; the server answers `OK` or `ERR bad token` (and
//! closes on failure). After that, each client frame is one statement
//! (see [`ode_core::ddl`]) and each reply frame is:
//!
//! * `OK` — statement succeeded, no payload
//! * `OK <payload>` — single-line payload (an oid, a count, a field)
//! * `OK\n<payload>` — multi-line payload (`SHOW DATABASES`, `METRICS`)
//! * `ERR <message>` — statement failed; an open transaction has been
//!   aborted (tabort semantics), the connection stays usable
//!
//! `QUIT` closes the connection. A dropped connection aborts its open
//! transaction ([`ode_core::Session`]'s `Drop`), so a dying client never leaks
//! locks.
//!
//! ## Protocol v2 (pipelined batch frames)
//!
//! A frame whose payload starts with the [`BATCH_MAGIC`] byte (`0x02`,
//! ASCII STX — no v1 statement can begin with a control byte) is a
//! *batch frame* carrying N statements:
//!
//! ```text
//! request  = 0x02, mode u8, count u32-LE, count × (len u32-LE, stmt UTF-8)
//! response = 0x02,          count u32-LE, count × (len u32-LE, reply UTF-8)
//! ```
//!
//! The N replies are in statement order and use the v1 reply grammar.
//! `mode` selects the first-error semantics: [`BATCH_CONTINUE`] keeps
//! executing after a failed statement, [`BATCH_ABORT`] fails every
//! remaining statement with `ERR batch aborted`. Either way, an error
//! *inside an explicitly opened transaction* has already taken that
//! transaction down (the session's tabort rule), so the remaining batch
//! statements — written assuming that transaction — are always failed.
//! The two protocols interleave freely on one connection; v1 clients
//! never see a v2 frame.
//!
//! Under load the reply path defers each statement's commit durability
//! wait and resolves the accumulated [`ode_core::PendingCommit`] tickets of
//! *all* connections on one shared group-commit flush before writing any
//! reply — N connections × 1 fsync becomes 1 fsync per scheduler round
//! (see `DESIGN.md`, "Wire batching & commit piggybacking").
//!
//! No async runtime: blocking std sockets and one OS thread per
//! connection, which matches the engine's thread-per-transaction
//! concurrency model (striped 2PL underneath).

use ode_core::{Engine, PendingCommit, Session};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Largest accepted frame (defensive bound; statements are small).
pub const MAX_FRAME: u32 = 1 << 20;

/// First payload byte of a protocol-v2 batch frame, both directions
/// (ASCII STX; no v1 statement starts with a control byte).
pub const BATCH_MAGIC: u8 = 0x02;

/// Batch error mode: keep executing the remaining statements after one
/// fails (outside an explicit transaction).
pub const BATCH_CONTINUE: u8 = 0;

/// Batch error mode: fail every statement after the first error with
/// `ERR batch aborted`.
pub const BATCH_ABORT: u8 = 1;

/// One inbound frame, as the server's read loop sees it.
enum Frame {
    /// A complete v1 single-statement frame.
    Msg(String),
    /// A complete v2 batch frame.
    Batch {
        /// [`BATCH_ABORT`] was requested.
        abort_on_error: bool,
        /// The statements, in execution order.
        stmts: Vec<String>,
    },
    /// The length prefix exceeded [`MAX_FRAME`] — nothing was allocated
    /// and the payload was not read, so the stream cannot be resynced.
    Oversized(u32),
    /// Clean EOF at a frame boundary.
    Eof,
}

/// Read one length-prefixed frame without trusting the length prefix:
/// an oversized claim is reported before any allocation happens, so a
/// hostile 4 GiB prefix costs four bytes of reading, not an OOM.
fn read_frame_bounded(stream: &mut impl Read) -> std::io::Result<Frame> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(Frame::Eof),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Ok(Frame::Oversized(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    if buf.first() == Some(&BATCH_MAGIC) {
        return decode_batch(&buf);
    }
    match String::from_utf8(buf) {
        Ok(s) => Ok(Frame::Msg(s)),
        Err(e) => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
    }
}

/// Decode a v2 batch payload (`buf[0]` is already known to be
/// [`BATCH_MAGIC`]). Every length inside the frame is re-checked against
/// the actual byte count — the outer [`MAX_FRAME`] bound caps total
/// allocation, and a hostile inner count cannot over-allocate past it.
fn decode_batch(buf: &[u8]) -> std::io::Result<Frame> {
    let bad = |what: &str| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("malformed batch frame: {what}"),
        )
    };
    let mode = *buf.get(1).ok_or_else(|| bad("missing mode byte"))?;
    let abort_on_error = match mode {
        BATCH_CONTINUE => false,
        BATCH_ABORT => true,
        _ => return Err(bad("unknown error mode")),
    };
    let count_bytes: [u8; 4] = buf
        .get(2..6)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| bad("missing statement count"))?;
    let count = u32::from_le_bytes(count_bytes) as usize;
    let mut rest = &buf[6..];
    // Each statement costs at least its 4-byte length prefix.
    if count > rest.len() / 4 {
        return Err(bad("statement count exceeds frame size"));
    }
    let mut stmts = Vec::with_capacity(count);
    for _ in 0..count {
        if rest.len() < 4 {
            return Err(bad("truncated statement length"));
        }
        let n = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        rest = &rest[4..];
        if rest.len() < n {
            return Err(bad("truncated statement"));
        }
        let stmt = std::str::from_utf8(&rest[..n]).map_err(|_| bad("statement is not UTF-8"))?;
        stmts.push(stmt.to_string());
        rest = &rest[n..];
    }
    if !rest.is_empty() {
        return Err(bad("trailing bytes after last statement"));
    }
    Ok(Frame::Batch {
        abort_on_error,
        stmts,
    })
}

/// Encode a v2 batch *reply* payload into `out` (cleared first).
fn encode_batch_reply(replies: &[String], out: &mut Vec<u8>) {
    out.clear();
    out.push(BATCH_MAGIC);
    out.extend_from_slice(&(replies.len() as u32).to_le_bytes());
    for reply in replies {
        out.extend_from_slice(&(reply.len() as u32).to_le_bytes());
        out.extend_from_slice(reply.as_bytes());
    }
}

/// Write one length-prefixed frame with an arbitrary byte payload.
fn write_frame_bytes(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<String>> {
    match read_frame_bounded(stream)? {
        Frame::Msg(s) => Ok(Some(s)),
        Frame::Eof => Ok(None),
        Frame::Oversized(len) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} byte limit"),
        )),
        Frame::Batch { .. } => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "unexpected protocol-v2 batch frame on a text-frame reader",
        )),
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// Compare a presented auth token against the expected one in time
/// independent of *where* they differ: the loop always walks the full
/// expected token, folding each byte difference (and the length
/// difference) into one accumulator, so a byte-at-a-time guesser learns
/// nothing from response timing.
fn token_eq(presented: &str, expected: &str) -> bool {
    let a = presented.as_bytes();
    let b = expected.as_bytes();
    let mut diff = a.len() ^ b.len();
    for (i, &eb) in b.iter().enumerate() {
        diff |= usize::from(a.get(i).copied().unwrap_or(0) ^ eb);
    }
    diff == 0
}

/// Wire-layer feature toggles (all default on; the `ode-server` binary
/// exposes `--no-*` flags for paired benchmarking).
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Accept protocol-v2 batch frames. Off: batch frames get one
    /// `ERR pipelining is disabled` reply.
    pub pipeline: bool,
    /// Sessions cache parsed statements by text (and serve
    /// `PREPARE`/`EXECUTE`, which is independent of this toggle).
    pub stmt_cache: bool,
    /// Defer commit durability waits and resolve them on the shared
    /// cross-session scheduler. Off: every statement's `commit_wait`
    /// runs inline before its reply, as protocol v1 always did.
    pub piggyback: bool,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            pipeline: true,
            stmt_cache: true,
            piggyback: true,
        }
    }
}

// ---------------------------------------------------------------------
// Cross-session commit piggybacking
// ---------------------------------------------------------------------

/// A waiter's completion slot: filled by whichever thread resolves the
/// ticket.
struct Slot {
    result: Mutex<Option<Result<(), String>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, r: Result<(), String>) {
        *self.result.lock().unwrap() = Some(r);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<(), String> {
        let mut guard = self.result.lock().unwrap();
        loop {
            if let Some(r) = guard.take() {
                return r;
            }
            guard = self.cv.wait(guard).unwrap();
        }
    }
}

struct PiggybackEntry {
    pending: PendingCommit,
    slot: Arc<Slot>,
}

/// The shared reply scheduler: connection threads enqueue the
/// [`PendingCommit`] tickets their statements deferred, and the first
/// enqueuer becomes the *flusher* — it drains the queue in rounds,
/// waiting each round's highest-LSN ticket first so the WAL group-commit
/// leader makes the whole round durable with one write+fsync; every
/// other ticket's wait is then a satisfied-watermark check. Tickets that
/// resolve on a round they share with another ticket of the same
/// database count as `piggybacked_commits`. Tickets with no WAL
/// position (memory engine) never enter the scheduler — there is no
/// flush to share, so they resolve inline on their connection thread.
struct Piggyback {
    state: Mutex<Vec<PiggybackEntry>>,
    flusher: Mutex<bool>,
}

impl Piggyback {
    fn new() -> Piggyback {
        Piggyback {
            state: Mutex::new(Vec::new()),
            flusher: Mutex::new(false),
        }
    }

    /// Resolve one deferred commit (v1 single-statement path).
    fn resolve(&self, pending: PendingCommit) -> Result<(), String> {
        // A ticket with no WAL position has no flush to share — wait it
        // inline (a watermark check) instead of taking the scheduler hop.
        if pending.ticket.lsn().is_none() {
            return pending
                .db
                .commit_wait(pending.ticket)
                .map_err(|e| e.to_string());
        }
        self.resolve_all(vec![pending])
            .pop()
            .expect("one result per ticket")
    }

    /// Resolve a batch of deferred commits; results are in input order.
    fn resolve_all(&self, batch: Vec<PendingCommit>) -> Vec<Result<(), String>> {
        let slots: Vec<Arc<Slot>> = (0..batch.len()).map(|_| Arc::new(Slot::new())).collect();
        let i_flush = {
            let mut queue = self.state.lock().unwrap();
            for (pending, slot) in batch.into_iter().zip(&slots) {
                queue.push(PiggybackEntry {
                    pending,
                    slot: Arc::clone(slot),
                });
            }
            // Become the flusher unless one is already draining (it will
            // pick our entries up).
            let mut flusher = self.flusher.lock().unwrap();
            !std::mem::replace(&mut *flusher, true)
        };
        if i_flush {
            loop {
                let round = {
                    let mut queue = self.state.lock().unwrap();
                    if queue.is_empty() {
                        *self.flusher.lock().unwrap() = false;
                        break;
                    }
                    std::mem::take(&mut *queue)
                };
                flush_round(round);
            }
        }
        slots.iter().map(|slot| slot.wait()).collect()
    }
}

/// Make one round of tickets durable together and wake their waiters.
fn flush_round(mut round: Vec<PiggybackEntry>) {
    // Highest LSN first: that wait runs (or joins) the WAL group-commit
    // flush covering every lower LSN in the round.
    round.sort_by_key(|e| std::cmp::Reverse(e.pending.ticket.lsn()));
    let mut seen_dbs: Vec<*const ode_core::Database> = Vec::new();
    for entry in &round {
        let db = Arc::as_ptr(&entry.pending.db);
        if seen_dbs.contains(&db) {
            entry.pending.db.metrics().piggybacked_commits.inc();
        } else {
            seen_dbs.push(db);
        }
    }
    for entry in round {
        let result = entry
            .pending
            .db
            .commit_wait(entry.pending.ticket)
            .map_err(|e| e.to_string());
        entry.slot.fill(result);
    }
}

/// A running Ode server: an accept thread plus one thread per live
/// connection.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `engine` with default [`ServerOptions`]. Clients must
    /// authenticate with `token`.
    pub fn start(engine: Arc<Engine>, addr: &str, token: &str) -> std::io::Result<Server> {
        Server::start_with(engine, addr, token, ServerOptions::default())
    }

    /// [`Server::start`] with explicit feature toggles.
    pub fn start_with(
        engine: Arc<Engine>,
        addr: &str,
        token: &str,
        options: ServerOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let token = token.to_string();
        let piggyback = Arc::new(Piggyback::new());
        let accept_thread = std::thread::Builder::new()
            .name("ode-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let engine = Arc::clone(&engine);
                    let token = token.clone();
                    let piggyback = Arc::clone(&piggyback);
                    // Detached: a connection thread ends when its client
                    // disconnects (or sends QUIT), and Session::drop
                    // aborts any transaction it left open.
                    let _ = std::thread::Builder::new()
                        .name("ode-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, engine, &token, options, piggyback);
                        });
                }
            })?;
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Live
    /// connections finish on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Drive one connection: auth handshake, then statement frames until QUIT
/// or EOF.
fn serve_connection(
    mut stream: TcpStream,
    engine: Arc<Engine>,
    token: &str,
    options: ServerOptions,
    piggyback: Arc<Piggyback>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    match read_frame_bounded(&mut stream)? {
        Frame::Msg(frame)
            if frame
                .strip_prefix("AUTH ")
                .is_some_and(|t| token_eq(t, token)) =>
        {
            write_frame(&mut stream, "OK")?;
        }
        Frame::Oversized(len) => {
            reject_oversized(&mut stream, &engine, len);
            return Ok(());
        }
        Frame::Msg(_) | Frame::Batch { .. } | Frame::Eof => {
            let _ = write_frame(&mut stream, "ERR bad token");
            return Ok(());
        }
    }
    let mut session = engine.session();
    session.set_stmt_cache(options.stmt_cache);
    session.set_defer_commits(options.piggyback);
    let mut reply_buf = Vec::new();
    loop {
        match read_frame_bounded(&mut stream)? {
            Frame::Msg(frame) => {
                let stmt = frame.trim();
                if stmt.eq_ignore_ascii_case("quit") {
                    write_frame(&mut stream, "OK")?;
                    break;
                }
                if stmt.is_empty() || stmt.starts_with("--") {
                    write_frame(&mut stream, "OK")?;
                    continue;
                }
                let mut reply = run_statement(&mut session, stmt);
                if let Some(pending) = session.take_pending_commit() {
                    if let Err(e) = piggyback.resolve(pending) {
                        reply = format!("ERR commit durability failed: {e}");
                    }
                }
                write_frame(&mut stream, &reply)?;
            }
            Frame::Batch { .. } if !options.pipeline => {
                write_frame(&mut stream, "ERR pipelining is disabled on this server")?;
            }
            Frame::Batch {
                abort_on_error,
                stmts,
            } => {
                let replies = run_batch(&mut session, &engine, &piggyback, abort_on_error, &stmts);
                encode_batch_reply(&replies, &mut reply_buf);
                write_frame_bytes(&mut stream, &reply_buf)?;
            }
            Frame::Eof => break,
            Frame::Oversized(len) => {
                // The payload was never read, so the framing cannot be
                // resynced: report and close rather than allocate.
                reject_oversized(&mut stream, &engine, len);
                break;
            }
        }
    }
    drop(session); // aborts any open transaction
    Ok(())
}

/// Execute one statement and format its v1-grammar reply.
fn run_statement(session: &mut Session, stmt: &str) -> String {
    match session.execute(stmt) {
        Ok(payload) if payload.is_empty() => "OK".to_string(),
        Ok(payload) if payload.contains('\n') => format!("OK\n{payload}"),
        Ok(payload) => format!("OK {payload}"),
        Err(e) => format!("ERR {e}"),
    }
}

/// Execute a batch frame: per-statement replies in order, first-error
/// semantics per `abort_on_error`, and all deferred commit tickets
/// resolved on one scheduler round before any reply is released. Every
/// statement runs through [`Session::execute`], so tracing, per-verb
/// counters, and the statement-latency histogram see batched statements
/// exactly like single-frame ones.
fn run_batch(
    session: &mut Session,
    engine: &Engine,
    piggyback: &Piggyback,
    abort_on_error: bool,
    stmts: &[String],
) -> Vec<String> {
    engine
        .stats()
        .frames_batched
        .fetch_add(1, Ordering::Relaxed);
    engine.stats().stmts_per_frame.record(stmts.len() as u64);
    let mut replies = Vec::with_capacity(stmts.len());
    let mut deferred: Vec<(usize, PendingCommit)> = Vec::new();
    let mut failed = false;
    for (i, raw) in stmts.iter().enumerate() {
        if failed {
            replies.push("ERR batch aborted".to_string());
            continue;
        }
        let stmt = raw.trim();
        if stmt.is_empty() || stmt.starts_with("--") {
            replies.push("OK".to_string());
            continue;
        }
        let reply = if stmt.eq_ignore_ascii_case("quit") {
            // Mid-batch QUIT would strand the remaining statements the
            // client already sent; make it an ordinary statement error.
            "ERR QUIT is not allowed inside a batch".to_string()
        } else {
            let was_in_txn = session.txn().is_some();
            let mut reply = run_statement(session, stmt);
            if let Some(pending) = session.take_pending_commit() {
                if pending.ticket.lsn().is_none() {
                    // Nothing durable to share: wait inline rather than
                    // paying a scheduler round per no-WAL ticket.
                    if let Err(e) = pending.db.commit_wait(pending.ticket) {
                        reply = format!("ERR commit durability failed: {e}");
                    }
                } else {
                    deferred.push((i, pending));
                }
            }
            // An error while an explicit transaction was open has taken
            // it down (tabort); the rest of the batch was written for
            // that transaction, so it always fails — CONTINUE only
            // applies outside transactions.
            if reply.starts_with("ERR") && was_in_txn {
                failed = true;
            }
            reply
        };
        if reply.starts_with("ERR") && abort_on_error {
            failed = true;
        }
        replies.push(reply);
    }
    if !deferred.is_empty() {
        let (indices, tickets): (Vec<usize>, Vec<PendingCommit>) = deferred.into_iter().unzip();
        for (i, result) in indices.into_iter().zip(piggyback.resolve_all(tickets)) {
            if let Err(e) = result {
                replies[i] = format!("ERR commit durability failed: {e}");
            }
        }
    }
    replies
}

/// Count and report an oversized inbound frame, then let the caller
/// close the connection.
fn reject_oversized(stream: &mut TcpStream, engine: &Engine, len: u32) {
    engine
        .stats()
        .frames_oversized
        .fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(
        stream,
        &format!("ERR frame of {len} bytes exceeds the {MAX_FRAME} byte limit"),
    );
}

// ---------------------------------------------------------------------
// HTTP metrics endpoint
// ---------------------------------------------------------------------

/// A minimal std-only HTTP/1.1 listener serving the engine's merged
/// Prometheus page at `GET /metrics` and a liveness probe at
/// `GET /healthz`. One short-lived connection per request
/// (`Connection: close`), which is exactly how a scraper behaves; no
/// async runtime, matching the wire layer's thread-per-connection
/// model.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` and serve `engine`'s metrics until shutdown.
    pub fn start(engine: Arc<Engine>, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("ode-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    // Scrapes are cheap (render + one write): serve them
                    // on the accept thread rather than spawning.
                    let _ = serve_http_request(&mut stream, &engine);
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting scrapes and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serve one HTTP request on `stream` and close it.
fn serve_http_request(stream: &mut TcpStream, engine: &Engine) -> std::io::Result<()> {
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok();
    // Read the request head (bounded — a scraper's GET is tiny).
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8 * 1024 {
            return Ok(()); // not a scraper; drop it
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                // The Prometheus text exposition format version.
                "text/plain; version=0.0.4; charset=utf-8",
                engine.render_prometheus(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(server: &Server, token: &str) -> TcpStream {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut s, &format!("AUTH {token}")).unwrap();
        assert_eq!(read_frame(&mut s).unwrap().unwrap(), "OK");
        s
    }

    fn exec(s: &mut TcpStream, stmt: &str) -> String {
        write_frame(s, stmt).unwrap();
        read_frame(s).unwrap().unwrap()
    }

    #[test]
    fn auth_handshake_gates_the_session() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "sesame").unwrap();
        let mut bad = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut bad, "AUTH wrong").unwrap();
        assert_eq!(read_frame(&mut bad).unwrap().unwrap(), "ERR bad token");
        assert!(
            read_frame(&mut bad).unwrap().is_none(),
            "closed after bad auth"
        );
        let mut ok = connect(&server, "sesame");
        assert_eq!(exec(&mut ok, "SHOW DATABASES"), "OK");
        server.shutdown();
    }

    #[test]
    fn statements_round_trip_and_errors_keep_the_connection() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = connect(&server, "t");
        assert_eq!(exec(&mut c, "CREATE DATABASE bank"), "OK");
        assert_eq!(exec(&mut c, "USE bank"), "OK");
        let reply = exec(&mut c, "GARBAGE");
        assert!(reply.starts_with("ERR at byte 0"), "{reply}");
        assert_eq!(exec(&mut c, "CREATE CLASS A { FIELD x = 3; }"), "OK");
        let oid = exec(&mut c, "NEW A");
        let oid = oid.strip_prefix("OK ").expect("oid reply");
        assert_eq!(exec(&mut c, &format!("GET {oid} x")), "OK 3");
        assert_eq!(exec(&mut c, "QUIT"), "OK");
        server.shutdown();
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let engine = Engine::volatile();
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", "t").unwrap();
        let mut c = connect(&server, "t");
        // A hostile length prefix claiming ~3.5 GiB: the server must
        // answer ERR (having read only the prefix) and close, not
        // allocate the claimed buffer.
        c.write_all(&0xdead_beef_u32.to_le_bytes()).unwrap();
        c.flush().unwrap();
        let reply = read_frame(&mut c).unwrap().unwrap();
        assert!(
            reply.starts_with("ERR frame of 3735928559 bytes"),
            "{reply}"
        );
        assert!(read_frame(&mut c).unwrap().is_none(), "connection closed");
        assert_eq!(
            engine
                .stats()
                .frames_oversized
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_and_healthz() {
        let engine = Engine::volatile();
        engine.create_database("bank").unwrap();
        let metrics = MetricsServer::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();

        let get = |path: &str| -> (String, String) {
            let mut s = TcpStream::connect(metrics.addr()).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            s.read_to_string(&mut response).unwrap();
            let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
            (head.to_string(), body.to_string())
        };

        let (head, body) = get("/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("ode_sessions_open"), "{body}");
        assert!(body.contains("db=\"bank\""), "{body}");
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(content_length, body.len());

        let (head, body) = get("/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, _) = get("/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        metrics.shutdown();
    }

    #[test]
    fn token_comparison_rejects_wrong_length_and_wrong_byte() {
        assert!(token_eq("sesame", "sesame"));
        assert!(!token_eq("sesamE", "sesame"), "wrong byte");
        assert!(!token_eq("sesam", "sesame"), "too short");
        assert!(!token_eq("sesame!", "sesame"), "too long");
        assert!(!token_eq("", "sesame"), "empty presented");
        assert!(token_eq("", ""));
        assert!(!token_eq("x", ""), "empty expected rejects non-empty");
    }

    /// Authenticate a [`WireClient`] against `server` (protocol-v2 tests
    /// drive the real client rather than raw frames).
    fn client(server: &Server, token: &str) -> ode_testutil::WireClient {
        ode_testutil::WireClient::connect(&server.addr().to_string(), token).unwrap()
    }

    #[test]
    fn batch_frames_round_trip_and_interleave_with_v1() {
        let engine = Engine::volatile();
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        // v1 single-statement frames first…
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        // …then a v2 batch on the same connection…
        let replies = c
            .exec_batch(
                &["CREATE CLASS A { FIELD x = 2; }", "NEW A", "", "-- note"],
                false,
            )
            .unwrap();
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0], "OK");
        let oid = replies[1].strip_prefix("OK ").expect("oid reply");
        assert_eq!(replies[2], "OK");
        assert_eq!(replies[3], "OK");
        // …then v1 again, reading state the batch created.
        assert_eq!(c.exec(&format!("GET {oid} x")), "2");
        assert_eq!(engine.stats().frames_batched.load(Ordering::Relaxed), 1);
        assert_eq!(engine.stats().stmts_per_frame.snapshot().count, 1);
        server.shutdown();
    }

    #[test]
    fn batch_parse_error_inside_txn_aborts_it_and_fails_the_rest() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        c.exec("CREATE CLASS C { FIELD v; }");
        let oid = c.exec("NEW C");
        let replies = c
            .exec_batch(
                &[
                    "BEGIN",
                    &format!("CALL {oid} Touch SET v = 7"),
                    "THIS IS NOT A STATEMENT",
                    &format!("CALL {oid} Touch SET v = 9"),
                    "COMMIT",
                ],
                false, // CONTINUE mode — the open txn must still doom the rest
            )
            .unwrap();
        assert_eq!(replies[0], "OK");
        assert_eq!(replies[1], "OK");
        assert!(replies[2].starts_with("ERR"), "{}", replies[2]);
        assert_eq!(replies[3], "ERR batch aborted");
        assert_eq!(replies[4], "ERR batch aborted");
        // The parse error tore the transaction down: the write rolled
        // back and the session has nothing open.
        assert_eq!(c.exec(&format!("GET {oid} v")), "0");
        let err = c.try_exec("COMMIT").unwrap_err();
        assert!(
            err.contains("no open transaction"),
            "tabort closed the session transaction: {err}"
        );
        server.shutdown();
    }

    #[test]
    fn batch_continue_mode_outside_a_txn_executes_the_rest() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        let replies = c
            .exec_batch(
                &["GARBAGE", "CREATE CLASS A { FIELD x = 5; }", "NEW A"],
                false,
            )
            .unwrap();
        assert!(replies[0].starts_with("ERR"), "{}", replies[0]);
        assert_eq!(
            replies[1], "OK",
            "autocommit statements after the error ran"
        );
        assert!(replies[2].starts_with("OK "), "{}", replies[2]);
        server.shutdown();
    }

    #[test]
    fn batch_abort_mode_fails_everything_after_the_first_error() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        let replies = c
            .exec_batch(&["GARBAGE", "CREATE CLASS A { FIELD x; }", "QUIT"], true)
            .unwrap();
        assert!(replies[0].starts_with("ERR"), "{}", replies[0]);
        assert_eq!(replies[1], "ERR batch aborted");
        assert_eq!(replies[2], "ERR batch aborted");
        // ABORT_BATCH only fails the remainder of the frame; the
        // connection (and session) live on.
        assert_eq!(c.exec("SHOW DATABASES"), "d");
        server.shutdown();
    }

    #[test]
    fn quit_mid_batch_is_a_statement_error_not_a_disconnect() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        let replies = c.exec_batch(&["QUIT", "SHOW DATABASES"], false).unwrap();
        assert_eq!(replies[0], "ERR QUIT is not allowed inside a batch");
        assert_eq!(replies[1], "OK");
        server.shutdown();
    }

    #[test]
    fn pipelining_disabled_rejects_batch_frames_with_a_text_reply() {
        let options = ServerOptions {
            pipeline: false,
            ..ServerOptions::default()
        };
        let server = Server::start_with(Engine::volatile(), "127.0.0.1:0", "t", options).unwrap();
        let mut c = client(&server, "t");
        let err = c.exec_batch(&["SHOW DATABASES"], false).unwrap_err();
        assert!(err.to_string().contains("pipelining is disabled"), "{err}");
        // The text reply consumed the batch frame; v1 still works.
        assert_eq!(c.exec("CREATE DATABASE d"), "");
        server.shutdown();
    }

    #[test]
    fn dropped_connection_mid_batch_releases_all_locks() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut a = client(&server, "t");
        a.exec("CREATE DATABASE d");
        a.exec("USE d");
        a.exec("CREATE CLASS C { FIELD v; }");
        let oid = a.exec("NEW C");
        // A batch that leaves an explicit transaction open (write lock
        // held), whose reply the client never reads: drop the socket.
        a.send_batch(&["BEGIN", &format!("CALL {oid} Touch SET v = 1")], false)
            .unwrap();
        drop(a);
        let mut b = client(&server, "t");
        b.exec("USE d");
        let mut last = String::new();
        for _ in 0..50 {
            last = b.exec(&format!("GET {oid} v"));
            if last == "0" {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(last, "0", "uncommitted batch write was rolled back");
        server.shutdown();
    }

    #[test]
    fn batched_autocommits_share_one_flush_round() {
        // A WAL-backed engine: only tickets with a WAL position go
        // through the shared scheduler (no-WAL tickets resolve inline).
        let dir = ode_testutil::TempDir::new("piggyback");
        let engine = Engine::open(dir.path(), Default::default()).unwrap();
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        c.exec("CREATE CLASS C { FIELD v; }");
        let oid = c.exec("NEW C");
        let db = engine.database("d").unwrap();
        let before = db.metrics().piggybacked_commits.get();
        // Four autocommitting writes in one frame: their tickets resolve
        // on one scheduler round, so three of them piggyback. (Each must
        // actually change state — a no-op write commits without a WAL
        // record and resolves inline, never entering the scheduler.)
        let set = format!("CALL {oid} Touch SET v = v + 1");
        let replies = c.exec_batch(&[&set, &set, &set, &set], false).unwrap();
        assert!(replies.iter().all(|r| r == "OK"), "{replies:?}");
        assert_eq!(db.metrics().piggybacked_commits.get() - before, 3);
        server.shutdown();
    }

    #[test]
    fn prepared_statements_round_trip_over_the_wire() {
        let engine = Engine::volatile();
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        c.exec("CREATE CLASS C { FIELD v; }");
        let oid = c.exec("NEW C");
        c.exec(&format!("PREPARE bump AS CALL {oid} Touch SET v = v + $1"));
        c.exec("EXECUTE bump WITH 5");
        c.exec("EXECUTE bump WITH 2.5");
        assert_eq!(c.exec(&format!("GET {oid} v")), "7.5");
        let err = c.try_exec("EXECUTE bump").unwrap_err();
        assert!(err.contains("has no argument"), "{err}");
        let err = c.try_exec("EXECUTE nope WITH 1").unwrap_err();
        assert!(err.contains("unknown prepared statement"), "{err}");
        // Prepared statements are per-session: a second connection
        // doesn't see them.
        let mut other = client(&server, "t");
        other.exec("USE d");
        assert!(other.try_exec("EXECUTE bump WITH 1").is_err());
        server.shutdown();
    }

    #[test]
    fn explain_traces_statements_inside_a_batch() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        c.exec("CREATE CLASS A { FIELD x = 1; }");
        let replies = c
            .exec_batch(&["EXPLAIN NEW A", "SHOW TRACE"], false)
            .unwrap();
        // Both the inline EXPLAIN tree and the retained SHOW TRACE tree
        // are per-statement span trees, batched or not.
        for reply in &replies {
            let tree = reply.strip_prefix("OK\n").unwrap_or(reply);
            assert!(tree.contains("statement"), "{reply}");
            assert!(tree.contains("parse"), "{reply}");
        }
        server.shutdown();
    }

    #[test]
    fn pipelined_send_ahead_keeps_frames_in_flight() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = client(&server, "t");
        c.exec("CREATE DATABASE d");
        c.exec("USE d");
        c.exec("CREATE CLASS C { FIELD v; }");
        let oid = c.exec("NEW C");
        let set = format!("CALL {oid} Touch SET v = v + 1");
        let frame: Vec<&str> = vec![&set; 8];
        let frames: Vec<&[&str]> = vec![frame.as_slice(); 5];
        let mut seen = 0usize;
        c.pipeline_batches(frames.iter().copied(), 4, false, |replies| {
            assert!(replies.iter().all(|r| r == "OK"), "{replies:?}");
            seen += replies.len();
        })
        .unwrap();
        assert_eq!(seen, 40);
        assert_eq!(c.exec(&format!("GET {oid} v")), "40");
        server.shutdown();
    }

    #[test]
    fn dropped_connections_release_their_locks() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut a = connect(&server, "t");
        assert_eq!(exec(&mut a, "CREATE DATABASE d"), "OK");
        assert_eq!(exec(&mut a, "USE d"), "OK");
        assert_eq!(exec(&mut a, "CREATE CLASS C { FIELD v; }"), "OK");
        let oid = exec(&mut a, "NEW C");
        let oid = oid.strip_prefix("OK ").unwrap().to_string();
        assert_eq!(exec(&mut a, "BEGIN"), "OK");
        assert_eq!(exec(&mut a, &format!("CALL {oid} Touch SET v = 1")), "OK");
        drop(a); // connection dies with the write lock held
        let mut b = connect(&server, "t");
        assert_eq!(exec(&mut b, "USE d"), "OK");
        // The abort-on-drop must release the lock; retry while the server
        // notices the dead socket.
        let mut last = String::new();
        for _ in 0..50 {
            last = exec(&mut b, &format!("GET {oid} v"));
            if last == "OK 0" {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(last, "OK 0", "uncommitted write was rolled back");
        server.shutdown();
    }
}
