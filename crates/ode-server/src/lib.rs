//! The wire layer: Ode as a standalone server.
//!
//! The paper's Ode is an embedded library (an O++ program links the
//! object manager directly). This crate is the step to a served system:
//! a thread-per-connection TCP front end where each connection owns one
//! [`ode_core::Session`] — current database, at most one open transaction, DDL
//! execution — over a shared [`Engine`]. Statement execution, trigger
//! firing, and coupling semantics are entirely the embedded machinery;
//! the server only moves text.
//!
//! ## Protocol
//!
//! Frames are length-prefixed UTF-8: a little-endian `u32` byte count
//! followed by that many bytes. The client's first frame must be
//! `AUTH <token>`; the server answers `OK` or `ERR bad token` (and
//! closes on failure). After that, each client frame is one statement
//! (see [`ode_core::ddl`]) and each reply frame is:
//!
//! * `OK` — statement succeeded, no payload
//! * `OK <payload>` — single-line payload (an oid, a count, a field)
//! * `OK\n<payload>` — multi-line payload (`SHOW DATABASES`, `METRICS`)
//! * `ERR <message>` — statement failed; an open transaction has been
//!   aborted (tabort semantics), the connection stays usable
//!
//! `QUIT` closes the connection. A dropped connection aborts its open
//! transaction ([`ode_core::Session`]'s `Drop`), so a dying client never leaks
//! locks.
//!
//! No async runtime: blocking std sockets and one OS thread per
//! connection, which matches the engine's thread-per-transaction
//! concurrency model (striped 2PL underneath).

use ode_core::Engine;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Largest accepted frame (defensive bound; statements are small).
pub const MAX_FRAME: u32 = 1 << 20;

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<String>> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} byte limit"),
        ));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

/// Write one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// A running Ode server: an accept thread plus one thread per live
/// connection.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `engine`. Clients must authenticate with `token`.
    pub fn start(engine: Arc<Engine>, addr: &str, token: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let token = token.to_string();
        let accept_thread = std::thread::Builder::new()
            .name("ode-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let engine = Arc::clone(&engine);
                    let token = token.clone();
                    // Detached: a connection thread ends when its client
                    // disconnects (or sends QUIT), and Session::drop
                    // aborts any transaction it left open.
                    let _ = std::thread::Builder::new()
                        .name("ode-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, engine, &token);
                        });
                }
            })?;
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Live
    /// connections finish on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Drive one connection: auth handshake, then statement frames until QUIT
/// or EOF.
fn serve_connection(
    mut stream: TcpStream,
    engine: Arc<Engine>,
    token: &str,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    match read_frame(&mut stream)? {
        Some(frame) if frame.strip_prefix("AUTH ") == Some(token) => {
            write_frame(&mut stream, "OK")?;
        }
        Some(_) | None => {
            let _ = write_frame(&mut stream, "ERR bad token");
            return Ok(());
        }
    }
    let mut session = engine.session();
    while let Some(frame) = read_frame(&mut stream)? {
        let stmt = frame.trim();
        if stmt.eq_ignore_ascii_case("quit") {
            write_frame(&mut stream, "OK")?;
            break;
        }
        if stmt.is_empty() || stmt.starts_with("--") {
            write_frame(&mut stream, "OK")?;
            continue;
        }
        let reply = match session.execute(stmt) {
            Ok(payload) if payload.is_empty() => "OK".to_string(),
            Ok(payload) if payload.contains('\n') => format!("OK\n{payload}"),
            Ok(payload) => format!("OK {payload}"),
            Err(e) => format!("ERR {e}"),
        };
        write_frame(&mut stream, &reply)?;
    }
    drop(session); // aborts any open transaction
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(server: &Server, token: &str) -> TcpStream {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut s, &format!("AUTH {token}")).unwrap();
        assert_eq!(read_frame(&mut s).unwrap().unwrap(), "OK");
        s
    }

    fn exec(s: &mut TcpStream, stmt: &str) -> String {
        write_frame(s, stmt).unwrap();
        read_frame(s).unwrap().unwrap()
    }

    #[test]
    fn auth_handshake_gates_the_session() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "sesame").unwrap();
        let mut bad = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut bad, "AUTH wrong").unwrap();
        assert_eq!(read_frame(&mut bad).unwrap().unwrap(), "ERR bad token");
        assert!(
            read_frame(&mut bad).unwrap().is_none(),
            "closed after bad auth"
        );
        let mut ok = connect(&server, "sesame");
        assert_eq!(exec(&mut ok, "SHOW DATABASES"), "OK");
        server.shutdown();
    }

    #[test]
    fn statements_round_trip_and_errors_keep_the_connection() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = connect(&server, "t");
        assert_eq!(exec(&mut c, "CREATE DATABASE bank"), "OK");
        assert_eq!(exec(&mut c, "USE bank"), "OK");
        let reply = exec(&mut c, "GARBAGE");
        assert!(reply.starts_with("ERR at byte 0"), "{reply}");
        assert_eq!(exec(&mut c, "CREATE CLASS A { FIELD x = 3; }"), "OK");
        let oid = exec(&mut c, "NEW A");
        let oid = oid.strip_prefix("OK ").expect("oid reply");
        assert_eq!(exec(&mut c, &format!("GET {oid} x")), "OK 3");
        assert_eq!(exec(&mut c, "QUIT"), "OK");
        server.shutdown();
    }

    #[test]
    fn dropped_connections_release_their_locks() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut a = connect(&server, "t");
        assert_eq!(exec(&mut a, "CREATE DATABASE d"), "OK");
        assert_eq!(exec(&mut a, "USE d"), "OK");
        assert_eq!(exec(&mut a, "CREATE CLASS C { FIELD v; }"), "OK");
        let oid = exec(&mut a, "NEW C");
        let oid = oid.strip_prefix("OK ").unwrap().to_string();
        assert_eq!(exec(&mut a, "BEGIN"), "OK");
        assert_eq!(exec(&mut a, &format!("CALL {oid} Touch SET v = 1")), "OK");
        drop(a); // connection dies with the write lock held
        let mut b = connect(&server, "t");
        assert_eq!(exec(&mut b, "USE d"), "OK");
        // The abort-on-drop must release the lock; retry while the server
        // notices the dead socket.
        let mut last = String::new();
        for _ in 0..50 {
            last = exec(&mut b, &format!("GET {oid} v"));
            if last == "OK 0" {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(last, "OK 0", "uncommitted write was rolled back");
        server.shutdown();
    }
}
