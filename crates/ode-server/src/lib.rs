//! The wire layer: Ode as a standalone server.
//!
//! The paper's Ode is an embedded library (an O++ program links the
//! object manager directly). This crate is the step to a served system:
//! a thread-per-connection TCP front end where each connection owns one
//! [`ode_core::Session`] — current database, at most one open transaction, DDL
//! execution — over a shared [`Engine`]. Statement execution, trigger
//! firing, and coupling semantics are entirely the embedded machinery;
//! the server only moves text.
//!
//! ## Protocol
//!
//! Frames are length-prefixed UTF-8: a little-endian `u32` byte count
//! followed by that many bytes. The client's first frame must be
//! `AUTH <token>`; the server answers `OK` or `ERR bad token` (and
//! closes on failure). After that, each client frame is one statement
//! (see [`ode_core::ddl`]) and each reply frame is:
//!
//! * `OK` — statement succeeded, no payload
//! * `OK <payload>` — single-line payload (an oid, a count, a field)
//! * `OK\n<payload>` — multi-line payload (`SHOW DATABASES`, `METRICS`)
//! * `ERR <message>` — statement failed; an open transaction has been
//!   aborted (tabort semantics), the connection stays usable
//!
//! `QUIT` closes the connection. A dropped connection aborts its open
//! transaction ([`ode_core::Session`]'s `Drop`), so a dying client never leaks
//! locks.
//!
//! No async runtime: blocking std sockets and one OS thread per
//! connection, which matches the engine's thread-per-transaction
//! concurrency model (striped 2PL underneath).

use ode_core::Engine;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Largest accepted frame (defensive bound; statements are small).
pub const MAX_FRAME: u32 = 1 << 20;

/// One inbound frame, as the server's read loop sees it.
enum Frame {
    /// A complete frame.
    Msg(String),
    /// The length prefix exceeded [`MAX_FRAME`] — nothing was allocated
    /// and the payload was not read, so the stream cannot be resynced.
    Oversized(u32),
    /// Clean EOF at a frame boundary.
    Eof,
}

/// Read one length-prefixed frame without trusting the length prefix:
/// an oversized claim is reported before any allocation happens, so a
/// hostile 4 GiB prefix costs four bytes of reading, not an OOM.
fn read_frame_bounded(stream: &mut impl Read) -> std::io::Result<Frame> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(Frame::Eof),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Ok(Frame::Oversized(len));
    }
    let mut buf = vec![0u8; len as usize];
    stream.read_exact(&mut buf)?;
    match String::from_utf8(buf) {
        Ok(s) => Ok(Frame::Msg(s)),
        Err(e) => Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e)),
    }
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Option<String>> {
    match read_frame_bounded(stream)? {
        Frame::Msg(s) => Ok(Some(s)),
        Frame::Eof => Ok(None),
        Frame::Oversized(len) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME} byte limit"),
        )),
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, payload: &str) -> std::io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload.as_bytes())?;
    stream.flush()
}

/// A running Ode server: an accept thread plus one thread per live
/// connection.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving `engine`. Clients must authenticate with `token`.
    pub fn start(engine: Arc<Engine>, addr: &str, token: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let token = token.to_string();
        let accept_thread = std::thread::Builder::new()
            .name("ode-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let engine = Arc::clone(&engine);
                    let token = token.clone();
                    // Detached: a connection thread ends when its client
                    // disconnects (or sends QUIT), and Session::drop
                    // aborts any transaction it left open.
                    let _ = std::thread::Builder::new()
                        .name("ode-conn".into())
                        .spawn(move || {
                            let _ = serve_connection(stream, engine, &token);
                        });
                }
            })?;
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread. Live
    /// connections finish on their own.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Drive one connection: auth handshake, then statement frames until QUIT
/// or EOF.
fn serve_connection(
    mut stream: TcpStream,
    engine: Arc<Engine>,
    token: &str,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    match read_frame_bounded(&mut stream)? {
        Frame::Msg(frame) if frame.strip_prefix("AUTH ") == Some(token) => {
            write_frame(&mut stream, "OK")?;
        }
        Frame::Oversized(len) => {
            reject_oversized(&mut stream, &engine, len);
            return Ok(());
        }
        Frame::Msg(_) | Frame::Eof => {
            let _ = write_frame(&mut stream, "ERR bad token");
            return Ok(());
        }
    }
    let mut session = engine.session();
    loop {
        let frame = match read_frame_bounded(&mut stream)? {
            Frame::Msg(frame) => frame,
            Frame::Eof => break,
            Frame::Oversized(len) => {
                // The payload was never read, so the framing cannot be
                // resynced: report and close rather than allocate.
                reject_oversized(&mut stream, &engine, len);
                break;
            }
        };
        let stmt = frame.trim();
        if stmt.eq_ignore_ascii_case("quit") {
            write_frame(&mut stream, "OK")?;
            break;
        }
        if stmt.is_empty() || stmt.starts_with("--") {
            write_frame(&mut stream, "OK")?;
            continue;
        }
        let reply = match session.execute(stmt) {
            Ok(payload) if payload.is_empty() => "OK".to_string(),
            Ok(payload) if payload.contains('\n') => format!("OK\n{payload}"),
            Ok(payload) => format!("OK {payload}"),
            Err(e) => format!("ERR {e}"),
        };
        write_frame(&mut stream, &reply)?;
    }
    drop(session); // aborts any open transaction
    Ok(())
}

/// Count and report an oversized inbound frame, then let the caller
/// close the connection.
fn reject_oversized(stream: &mut TcpStream, engine: &Engine, len: u32) {
    engine
        .stats()
        .frames_oversized
        .fetch_add(1, Ordering::Relaxed);
    let _ = write_frame(
        stream,
        &format!("ERR frame of {len} bytes exceeds the {MAX_FRAME} byte limit"),
    );
}

// ---------------------------------------------------------------------
// HTTP metrics endpoint
// ---------------------------------------------------------------------

/// A minimal std-only HTTP/1.1 listener serving the engine's merged
/// Prometheus page at `GET /metrics` and a liveness probe at
/// `GET /healthz`. One short-lived connection per request
/// (`Connection: close`), which is exactly how a scraper behaves; no
/// async runtime, matching the wire layer's thread-per-connection
/// model.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` and serve `engine`'s metrics until shutdown.
    pub fn start(engine: Arc<Engine>, addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("ode-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = stream else { continue };
                    // Scrapes are cheap (render + one write): serve them
                    // on the accept thread rather than spawning.
                    let _ = serve_http_request(&mut stream, &engine);
                }
            })?;
        Ok(MetricsServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting scrapes and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serve one HTTP request on `stream` and close it.
fn serve_http_request(stream: &mut TcpStream, engine: &Engine) -> std::io::Result<()> {
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .ok();
    // Read the request head (bounded — a scraper's GET is tiny).
    let mut head = Vec::new();
    let mut chunk = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 8 * 1024 {
            return Ok(()); // not a scraper; drop it
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&chunk[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                // The Prometheus text exposition format version.
                "text/plain; version=0.0.4; charset=utf-8",
                engine.render_prometheus(),
            ),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(server: &Server, token: &str) -> TcpStream {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut s, &format!("AUTH {token}")).unwrap();
        assert_eq!(read_frame(&mut s).unwrap().unwrap(), "OK");
        s
    }

    fn exec(s: &mut TcpStream, stmt: &str) -> String {
        write_frame(s, stmt).unwrap();
        read_frame(s).unwrap().unwrap()
    }

    #[test]
    fn auth_handshake_gates_the_session() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "sesame").unwrap();
        let mut bad = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut bad, "AUTH wrong").unwrap();
        assert_eq!(read_frame(&mut bad).unwrap().unwrap(), "ERR bad token");
        assert!(
            read_frame(&mut bad).unwrap().is_none(),
            "closed after bad auth"
        );
        let mut ok = connect(&server, "sesame");
        assert_eq!(exec(&mut ok, "SHOW DATABASES"), "OK");
        server.shutdown();
    }

    #[test]
    fn statements_round_trip_and_errors_keep_the_connection() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut c = connect(&server, "t");
        assert_eq!(exec(&mut c, "CREATE DATABASE bank"), "OK");
        assert_eq!(exec(&mut c, "USE bank"), "OK");
        let reply = exec(&mut c, "GARBAGE");
        assert!(reply.starts_with("ERR at byte 0"), "{reply}");
        assert_eq!(exec(&mut c, "CREATE CLASS A { FIELD x = 3; }"), "OK");
        let oid = exec(&mut c, "NEW A");
        let oid = oid.strip_prefix("OK ").expect("oid reply");
        assert_eq!(exec(&mut c, &format!("GET {oid} x")), "OK 3");
        assert_eq!(exec(&mut c, "QUIT"), "OK");
        server.shutdown();
    }

    #[test]
    fn oversized_frames_are_rejected_without_allocation() {
        let engine = Engine::volatile();
        let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", "t").unwrap();
        let mut c = connect(&server, "t");
        // A hostile length prefix claiming ~3.5 GiB: the server must
        // answer ERR (having read only the prefix) and close, not
        // allocate the claimed buffer.
        c.write_all(&0xdead_beef_u32.to_le_bytes()).unwrap();
        c.flush().unwrap();
        let reply = read_frame(&mut c).unwrap().unwrap();
        assert!(
            reply.starts_with("ERR frame of 3735928559 bytes"),
            "{reply}"
        );
        assert!(read_frame(&mut c).unwrap().is_none(), "connection closed");
        assert_eq!(
            engine
                .stats()
                .frames_oversized
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        server.shutdown();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_and_healthz() {
        let engine = Engine::volatile();
        engine.create_database("bank").unwrap();
        let metrics = MetricsServer::start(Arc::clone(&engine), "127.0.0.1:0").unwrap();

        let get = |path: &str| -> (String, String) {
            let mut s = TcpStream::connect(metrics.addr()).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            s.read_to_string(&mut response).unwrap();
            let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
            (head.to_string(), body.to_string())
        };

        let (head, body) = get("/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("ode_sessions_open"), "{body}");
        assert!(body.contains("db=\"bank\""), "{body}");
        let content_length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(content_length, body.len());

        let (head, body) = get("/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ok\n");

        let (head, _) = get("/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        metrics.shutdown();
    }

    #[test]
    fn dropped_connections_release_their_locks() {
        let server = Server::start(Engine::volatile(), "127.0.0.1:0", "t").unwrap();
        let mut a = connect(&server, "t");
        assert_eq!(exec(&mut a, "CREATE DATABASE d"), "OK");
        assert_eq!(exec(&mut a, "USE d"), "OK");
        assert_eq!(exec(&mut a, "CREATE CLASS C { FIELD v; }"), "OK");
        let oid = exec(&mut a, "NEW C");
        let oid = oid.strip_prefix("OK ").unwrap().to_string();
        assert_eq!(exec(&mut a, "BEGIN"), "OK");
        assert_eq!(exec(&mut a, &format!("CALL {oid} Touch SET v = 1")), "OK");
        drop(a); // connection dies with the write lock held
        let mut b = connect(&server, "t");
        assert_eq!(exec(&mut b, "USE d"), "OK");
        // The abort-on-drop must release the lock; retry while the server
        // notices the dead socket.
        let mut last = String::new();
        for _ in 0..50 {
            last = exec(&mut b, &format!("GET {oid} v"));
            if last == "OK 0" {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        assert_eq!(last, "OK 0", "uncommitted write was rolled back");
        server.shutdown();
    }
}
