//! `ode-server` binary: serve an engine root over TCP.
//!
//! ```text
//! ode-server --root /var/lib/ode --addr 127.0.0.1:7479 --token sesame
//! ode-server --volatile --addr 127.0.0.1:0 --token dev
//! ```
//!
//! With `--volatile` every database lives in memory and dies with the
//! process. The bound address is printed on stdout as `LISTENING <addr>`
//! (scripts can parse it when binding port 0). `--metrics-addr` starts
//! the HTTP scrape endpoint (`GET /metrics`, `GET /healthz`), printed
//! as `METRICS <addr>`; `--slow-ms N` traces every statement and logs
//! the span tree of any statement slower than N milliseconds to
//! stderr.
//!
//! Protocol-v2 amortization layers are on by default and individually
//! switchable: `--no-pipeline` rejects batch frames, `--no-stmt-cache`
//! disables the transparent per-session parse cache, `--no-piggyback`
//! makes each commit wait on its own WAL flush instead of riding a
//! shared one.

use ode_core::Engine;
use ode_server::{MetricsServer, Server, ServerOptions};
use ode_storage::StorageOptions;

fn main() {
    let mut root: Option<String> = None;
    let mut addr = "127.0.0.1:7479".to_string();
    let mut token = "ode".to_string();
    let mut volatile = false;
    let mut metrics_addr: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut server_options = ServerOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next(),
            "--addr" => addr = args.next().unwrap_or(addr),
            "--token" => token = args.next().unwrap_or(token),
            "--volatile" => volatile = true,
            "--metrics-addr" => metrics_addr = args.next(),
            "--no-pipeline" => server_options.pipeline = false,
            "--no-stmt-cache" => server_options.stmt_cache = false,
            "--no-piggyback" => server_options.piggyback = false,
            "--slow-ms" => match args.next().map(|v| v.parse()) {
                Some(Ok(ms)) => slow_ms = Some(ms),
                _ => {
                    eprintln!("--slow-ms wants an integer millisecond threshold");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: ode-server [--root DIR | --volatile] [--addr HOST:PORT] \
                     [--token TOKEN] [--metrics-addr HOST:PORT] [--slow-ms N] \
                     [--no-pipeline] [--no-stmt-cache] [--no-piggyback]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let slow_micros = slow_ms.map(|ms| ms.saturating_mul(1000));
    let options = StorageOptions {
        slow_statement_micros: slow_micros,
        ..StorageOptions::default()
    };
    let engine = match (volatile, root) {
        (true, _) => Engine::volatile_with(StorageOptions {
            slow_statement_micros: slow_micros,
            ..StorageOptions::memory()
        }),
        (false, Some(root)) => match Engine::open(&root, options) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("open engine root: {e}");
                std::process::exit(1);
            }
        },
        (false, None) => {
            eprintln!("need --root DIR or --volatile (try --help)");
            std::process::exit(2);
        }
    };
    let server = match Server::start_with(
        std::sync::Arc::clone(&engine),
        &addr,
        &token,
        server_options,
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.addr());
    let _metrics = metrics_addr.map(|maddr| match MetricsServer::start(engine, &maddr) {
        Ok(metrics) => {
            println!("METRICS {}", metrics.addr());
            metrics
        }
        Err(e) => {
            eprintln!("bind metrics {maddr}: {e}");
            std::process::exit(1);
        }
    });
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
