//! `ode-server` binary: serve an engine root over TCP.
//!
//! ```text
//! ode-server --root /var/lib/ode --addr 127.0.0.1:7479 --token sesame
//! ode-server --volatile --addr 127.0.0.1:0 --token dev
//! ```
//!
//! With `--volatile` every database lives in memory and dies with the
//! process. The bound address is printed on stdout as `LISTENING <addr>`
//! (scripts can parse it when binding port 0).

use ode_core::Engine;
use ode_server::Server;
use ode_storage::StorageOptions;

fn main() {
    let mut root: Option<String> = None;
    let mut addr = "127.0.0.1:7479".to_string();
    let mut token = "ode".to_string();
    let mut volatile = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next(),
            "--addr" => addr = args.next().unwrap_or(addr),
            "--token" => token = args.next().unwrap_or(token),
            "--volatile" => volatile = true,
            "--help" | "-h" => {
                println!(
                    "usage: ode-server [--root DIR | --volatile] [--addr HOST:PORT] [--token TOKEN]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    let engine = match (volatile, root) {
        (true, _) => Engine::volatile(),
        (false, Some(root)) => match Engine::open(&root, StorageOptions::default()) {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("open engine root: {e}");
                std::process::exit(1);
            }
        },
        (false, None) => {
            eprintln!("need --root DIR or --volatile (try --help)");
            std::process::exit(2);
        }
    };
    let server = match Server::start(engine, &addr, &token) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.addr());
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
