//! Property-based tests for the event algebra and its FSM compiler.
//!
//! The central property: for any expression and any event stream, the
//! optimised DFA, the unoptimised DFA, the NFA simulation, and (for
//! mask-free expressions) a direct denotational oracle all agree on when
//! the trigger fires.

use ode_events::ast::{Alphabet, EventExpr, TriggerEvent};
use ode_events::dfa::Dfa;
use ode_events::event::{EventId, MaskId};
use ode_events::fsm::{dense_run_stream_with, DenseFsm};
use ode_events::nfa::Nfa;
use ode_events::parser::parse;
use proptest::prelude::*;

const N_EVENTS: u32 = 3;

fn alphabet() -> Alphabet {
    let mut al = Alphabet::new();
    al.add_event(EventId(0), "BigBuy");
    al.add_event(EventId(1), "after PayBill");
    al.add_event(EventId(2), "after Buy");
    al.add_mask("M0");
    al.add_mask("M1");
    al
}

/// Random mask-free expressions.
fn maskfree_expr() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        (0..N_EVENTS).prop_map(|e| EventExpr::Basic(EventId(e))),
        Just(EventExpr::Any),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::or(a, b)),
            inner.clone().prop_map(EventExpr::star),
            (inner.clone(), inner).prop_map(|(a, b)| EventExpr::relative(a, b)),
        ]
    })
}

/// Random expressions that may contain masks.
fn masked_expr() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        (0..N_EVENTS).prop_map(|e| EventExpr::Basic(EventId(e))),
        Just(EventExpr::Any),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::or(a, b)),
            inner.clone().prop_map(EventExpr::star),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::relative(a, b)),
            (inner, 0..2u16).prop_map(|(a, m)| EventExpr::mask(a, MaskId(m))),
        ]
    })
}

fn stream() -> impl Strategy<Value = Vec<EventId>> {
    prop::collection::vec((0..N_EVENTS).prop_map(EventId), 0..8)
}

// ---------------------------------------------------------------------
// Denotational oracle for mask-free expressions.
// ---------------------------------------------------------------------

/// Does `expr` match `s` exactly (whole slice)?
fn matches_exact(expr: &EventExpr, s: &[EventId], declared: &[EventId]) -> bool {
    match expr {
        EventExpr::Basic(e) => s.len() == 1 && s[0] == *e,
        EventExpr::Any => s.len() == 1 && declared.contains(&s[0]),
        EventExpr::Seq(a, b) => (0..=s.len())
            .any(|i| matches_exact(a, &s[..i], declared) && matches_exact(b, &s[i..], declared)),
        EventExpr::Or(a, b) => matches_exact(a, s, declared) || matches_exact(b, s, declared),
        EventExpr::Star(a) => {
            s.is_empty()
                || (1..=s.len()).any(|i| {
                    matches_exact(a, &s[..i], declared)
                        && matches_exact(&EventExpr::Star(a.clone()), &s[i..], declared)
                })
        }
        EventExpr::Relative(a, b) => (0..=s.len()).any(|i| {
            matches_exact(a, &s[..i], declared)
                && (i..=s.len()).any(|j| matches_exact(b, &s[j..], declared))
        }),
        EventExpr::Mask(..) | EventExpr::Both(..) => {
            unreachable!("oracle handles neither masks nor conjunction")
        }
    }
}

/// Number of postings at which an (un)anchored trigger fires at least once:
/// the oracle counts, for each prefix length t, whether a (suffix of the)
/// prefix exactly matches.
fn oracle_fire_count(te: &TriggerEvent, s: &[EventId], declared: &[EventId]) -> usize {
    let mut fires = 0;
    for t in 0..=s.len() {
        let fired_now = if te.anchored {
            // Anchored: the whole prefix must match ending exactly at t.
            matches_exact(&te.expr, &s[..t], declared)
        } else {
            // Unanchored: some window ending at t matches.
            (0..=t).any(|i| matches_exact(&te.expr, &s[i..t], declared))
        };
        if fired_now && t > 0 {
            // A fire at prefix length t corresponds to posting event t-1…
            fires += 1;
        } else if fired_now && t == 0 {
            // …except the empty match, which fires at activation.
            fires += 1;
        }
    }
    fires
}

/// Run the DFA like the trigger run-time would, but keep running after
/// accepts (perpetual-style), counting postings that accepted. Mirrors
/// `oracle_fire_count`'s prefix semantics.
fn dfa_fire_count(dfa: &Dfa, s: &[EventId], masks: &[bool]) -> usize {
    dfa.run_stream(s, masks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn dfa_agrees_with_oracle_maskfree(expr in maskfree_expr(), s in stream(), anchored in any::<bool>()) {
        let al = alphabet();
        let te = TriggerEvent { anchored, expr };
        let declared: Vec<EventId> = al.event_ids();
        let dfa = Dfa::compile(&te, &al);
        let got = dfa_fire_count(&dfa, &s, &[]);
        let want = oracle_fire_count(&te, &s, &declared);
        prop_assert_eq!(got, want, "expr: {}", te.display(&al));
    }

    #[test]
    fn optimized_equals_unoptimized(expr in masked_expr(), s in stream(), seed in any::<u64>(), anchored in any::<bool>()) {
        // Masks are pure predicates over database state at posting time,
        // so the oracle is a pure function of (posting index, mask id) —
        // this is exactly what lets the compiler eliminate redundant mask
        // evaluations without changing behaviour.
        let al = alphabet();
        let te = TriggerEvent { anchored, expr };
        let opt = Dfa::compile(&te, &al);
        let raw = Dfa::compile_unoptimized(&te, &al);
        let oracle = |i: usize, m: ode_events::event::MaskId|
            (seed >> ((i * 2 + m.0 as usize) % 64)) & 1 == 1;
        prop_assert_eq!(
            opt.run_stream_with(&s, oracle),
            raw.run_stream_with(&s, oracle),
            "expr: {}", te.display(&al)
        );
    }

    #[test]
    fn dfa_agrees_with_nfa_simulation(expr in masked_expr(), s in stream(), seed in any::<u64>(), anchored in any::<bool>()) {
        let al = alphabet();
        let te = TriggerEvent { anchored, expr };
        let dfa = Dfa::compile(&te, &al);
        let nfa = Nfa::build(&te, &al);
        let oracle = |i: usize, m: ode_events::event::MaskId|
            (seed >> ((i * 2 + m.0 as usize) % 64)) & 1 == 1;
        let nfa_fired = nfa.simulate_with(&s, oracle);
        let dfa_fired = dfa.run_stream_with(&s, oracle) > 0;
        prop_assert_eq!(dfa_fired, nfa_fired, "expr: {}", te.display(&al));
    }

    #[test]
    fn dense_equals_sparse(expr in masked_expr(), s in stream(), seed in any::<u64>()) {
        let al = alphabet();
        let te = TriggerEvent { anchored: false, expr };
        let dfa = Dfa::compile(&te, &al);
        let dense = DenseFsm::from_dfa(&dfa, N_EVENTS, 2);
        let declared: Vec<EventId> = al.event_ids();
        let oracle = |i: usize, m: ode_events::event::MaskId|
            (seed >> ((i * 2 + m.0 as usize) % 64)) & 1 == 1;
        prop_assert_eq!(
            dense_run_stream_with(&dense, &s, oracle, &declared),
            dfa.run_stream_with(&s, oracle),
            "expr: {}", te.display(&al)
        );
    }

    #[test]
    fn display_reparses_to_same_ast(expr in masked_expr(), anchored in any::<bool>()) {
        let al = alphabet();
        let te = TriggerEvent { anchored, expr };
        let shown = te.display(&al);
        let reparsed = parse(&shown, &al).unwrap();
        prop_assert_eq!(reparsed, te, "display: {}", shown);
    }

    #[test]
    fn undeclared_events_never_change_outcome(expr in masked_expr(), s in stream(), seed in any::<u64>()) {
        let al = alphabet();
        let te = TriggerEvent { anchored: false, expr };
        let dfa = Dfa::compile(&te, &al);
        // Interleave undeclared events (id 99) everywhere; oracle keyed by
        // *declared* posting count so both runs see identical answers.
        let mut noisy = Vec::new();
        for &e in &s {
            noisy.push(EventId(99));
            noisy.push(e);
        }
        noisy.push(EventId(99));
        let mut declared_seen = 0usize;
        let mut last_i = usize::MAX;
        let noisy_oracle = |i: usize, m: ode_events::event::MaskId| {
            if i != last_i {
                last_i = i;
                declared_seen += 1;
            }
            (seed >> ((declared_seen * 2 + m.0 as usize) % 64)) & 1 == 1
        };
        let mut declared_seen2 = 0usize;
        let mut last_i2 = usize::MAX;
        let plain_oracle = |i: usize, m: ode_events::event::MaskId| {
            if i != last_i2 {
                last_i2 = i;
                declared_seen2 += 1;
            }
            (seed >> ((declared_seen2 * 2 + m.0 as usize) % 64)) & 1 == 1
        };
        prop_assert_eq!(
            dfa.run_stream_with(&noisy, noisy_oracle),
            dfa.run_stream_with(&s, plain_oracle)
        );
    }

    #[test]
    fn observed_machine_counts_and_behaviour(expr in masked_expr(), s in stream(), seed in any::<u64>(), anchored in any::<bool>()) {
        // Instrumented compilation (`compile_observed`) must produce the
        // exact same machine as plain compilation, and its counters must
        // be internally consistent with what the run actually did.
        let al = alphabet();
        let te = TriggerEvent { anchored, expr };
        let plain = Dfa::compile(&te, &al);
        let metrics = std::sync::Arc::new(ode_obs::Metrics::new());
        let observed = Dfa::compile_observed(&te, &al, "prop", &metrics);
        prop_assert_eq!(&observed, &plain, "instrumentation changed the machine");
        let snap = metrics.snapshot();
        prop_assert_eq!(snap.fsm_compiles, 1);
        prop_assert_eq!(snap.fsm_states, observed.len() as u64);
        prop_assert!(snap.nfa_states >= 1, "NFA has at least a start state");

        let oracle = |i: usize, m: MaskId| (seed >> ((i * 2 + m.0 as usize) % 64)) & 1 == 1;
        let fired = observed.run_stream_with(&s, oracle);
        prop_assert_eq!(fired, plain.run_stream_with(&s, oracle));
        let snap = metrics.snapshot();
        // Every mask evaluation consumes exactly one True/False pseudo-event.
        prop_assert_eq!(
            snap.fsm_mask_evals,
            snap.fsm_true_events + snap.fsm_false_events
        );
        // At most one basic-event transition per posting.
        prop_assert!(snap.fsm_transitions <= s.len() as u64);
    }

    #[test]
    fn compiled_machines_are_wellformed(expr in masked_expr(), anchored in any::<bool>()) {
        let al = alphabet();
        let te = TriggerEvent { anchored, expr };
        let dfa = Dfa::compile(&te, &al);
        prop_assert!(!dfa.is_empty());
        prop_assert_eq!(dfa.start(), 0);
        for (i, state) in dfa.states().iter().enumerate() {
            // Prune contract: states without pending masks carry no
            // pseudo edges; mask states carry real edges only when they
            // can rest (a pending mask's pseudo edge self-loops).
            let can_rest = state.masks.iter().any(|&m| {
                state.next(ode_events::event::Symbol::True(m)) == Some(i as u32)
                    || state.next(ode_events::event::Symbol::False(m)) == Some(i as u32)
            });
            for t in &state.transitions {
                prop_assert!((t.to as usize) < dfa.len(), "state {i} dangling edge");
                if state.masks.is_empty() {
                    prop_assert!(!t.on.is_pseudo(), "rest state with pseudo edge");
                } else if !t.on.is_pseudo() {
                    prop_assert!(can_rest, "non-resting mask state with real edge");
                }
            }
            // Transitions sorted and unique per symbol.
            for w in state.transitions.windows(2) {
                prop_assert!(w[0].on < w[1].on);
            }
        }
    }
}
