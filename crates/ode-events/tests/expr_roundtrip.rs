//! Round-trip property: `display` output re-parses to the same AST.
//!
//! The DDL layer (`CREATE TRIGGER … WHEN <expr> COUPLING …`) stores and
//! re-parses expression *text*, so the concrete syntax must be a fixed
//! point: `parse(display(e)) == e` for every AST, and
//! `display(parse(s))` must be stable for every expression the workspace
//! examples actually use.

use ode_events::ast::{Alphabet, EventExpr, TriggerEvent};
use ode_events::event::{EventId, MaskId};
use ode_events::parser::parse;
use proptest::prelude::*;

fn alphabet() -> Alphabet {
    let mut al = Alphabet::new();
    al.add_event(EventId(0), "BigBuy");
    al.add_event(EventId(1), "after PayBill");
    al.add_event(EventId(2), "after Buy");
    al.add_event(EventId(3), "before Withdraw");
    al.add_event(EventId(4), "timer month_end");
    al.add_mask("MoreCred");
    al.add_mask("OverLimit");
    al
}

/// Conjunction-free expressions: the parser only accepts `&&` at the top
/// level of a trigger expression, so `Both` cannot appear under any other
/// combinator.
fn arb_subexpr() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        (0..5u32).prop_map(|e| EventExpr::Basic(EventId(e))),
        Just(EventExpr::Any),
    ];
    leaf.prop_recursive(5, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::relative(a, b)),
            inner.clone().prop_map(EventExpr::star),
            (inner, 0..2u16).prop_map(|(a, m)| EventExpr::mask(a, MaskId(m))),
        ]
    })
}

/// Full trigger expressions: an optional top-level `&&` chain over
/// conjunction-free operands.
fn arb_expr() -> impl Strategy<Value = EventExpr> {
    prop_oneof![
        arb_subexpr(),
        (arb_subexpr(), arb_subexpr()).prop_map(|(a, b)| EventExpr::both(a, b)),
        (arb_subexpr(), arb_subexpr(), arb_subexpr())
            .prop_map(|(a, b, c)| EventExpr::both(EventExpr::both(a, b), c)),
    ]
}

proptest! {
    /// Any AST survives display → parse unchanged (anchored and not).
    #[test]
    fn display_then_parse_is_identity(expr in arb_expr(), anchored in any::<bool>()) {
        let al = alphabet();
        let te = if anchored {
            TriggerEvent::anchored(expr)
        } else {
            TriggerEvent::new(expr)
        };
        let text = te.display(&al);
        let reparsed = parse(&text, &al).expect("display output must parse");
        prop_assert_eq!(&reparsed, &te, "text was {}", text);
        // And the rendering itself is a fixed point.
        prop_assert_eq!(reparsed.display(&al), text);
    }
}

/// Every event expression the workspace's examples and tests use, drawn
/// from Figure 1, the §8 extensions, and the example programs.
const EXAMPLE_EXPRESSIONS: &[&str] = &[
    "relative((after Buy & MoreCred()), after PayBill)",
    "after Buy & OverLimit()",
    "after Buy",
    "before Withdraw",
    "BigBuy",
    "any",
    "timer month_end",
    "after Buy, timer month_end",
    "after Buy, after PayBill",
    "after Buy || BigBuy",
    "after Buy && after PayBill",
    "*after Buy, BigBuy",
    "^after Buy",
    "(after Buy & MoreCred()) || (BigBuy & OverLimit())",
    "relative(after Buy, relative(after PayBill, BigBuy))",
];

#[test]
fn example_expressions_round_trip_stably() {
    let al = alphabet();
    for src in EXAMPLE_EXPRESSIONS {
        let first = parse(src, &al).unwrap_or_else(|e| panic!("{src:?}: {e}"));
        let rendered = first.display(&al);
        let second = parse(&rendered, &al)
            .unwrap_or_else(|e| panic!("{src:?} rendered as {rendered:?}: {e}"));
        assert_eq!(first, second, "{src:?} vs {rendered:?}");
        assert_eq!(rendered, second.display(&al), "{src:?} not a fixed point");
    }
}
