//! The `&&` conjunction operator: latch-product semantics, §8's
//! "if AT&T goes below 60 and the price of gold stabilizes" shape.

use ode_events::ast::{Alphabet, EventExpr, TriggerEvent};
use ode_events::dfa::Dfa;
use ode_events::event::EventId;
use ode_events::parser::parse;
use proptest::prelude::*;

const N_EVENTS: u32 = 3;

fn alphabet() -> Alphabet {
    let mut al = Alphabet::new();
    al.add_event(EventId(0), "Drop");
    al.add_event(EventId(1), "Stable");
    al.add_event(EventId(2), "Tick");
    al.add_mask("M0");
    al
}

fn compile(src: &str) -> Dfa {
    let al = alphabet();
    Dfa::compile(&parse(src, &al).unwrap(), &al)
}

fn ids(stream: &[u32]) -> Vec<EventId> {
    stream.iter().map(|&e| EventId(e)).collect()
}

#[test]
fn parses_with_correct_precedence() {
    let al = alphabet();
    // ',' binds tighter than '&&' (and '||' within a conjunct binds via
    // parentheses): the conjunction is the outermost operator.
    let te = parse("Drop, Tick && Stable", &al).unwrap();
    assert_eq!(
        te.expr,
        EventExpr::both(
            EventExpr::seq(EventExpr::Basic(EventId(0)), EventExpr::Basic(EventId(2))),
            EventExpr::Basic(EventId(1)),
        )
    );
    // Parenthesised unions are fine inside a conjunct.
    let te2 = parse("(Drop || Tick) && Stable", &al).unwrap();
    assert!(matches!(te2.expr, EventExpr::Both(..)));
    // Display round-trips.
    let shown = te.display(&al);
    assert_eq!(parse(&shown, &al).unwrap(), te);
    let shown2 = te2.display(&al);
    assert_eq!(parse(&shown2, &al).unwrap(), te2);
}

#[test]
fn nested_conjunction_is_rejected() {
    let al = alphabet();
    let e = parse("(Drop && Stable), Tick", &al).unwrap_err();
    assert!(e.message.contains("top level"), "{e}");
    assert!(parse("*(Drop && Stable)", &al).is_err());
    assert!(parse("relative((Drop && Stable), Tick)", &al).is_err());
    // A conjunction under a union is also below the top level.
    assert!(parse("Drop && Stable || Tick", &al).is_err());
    // Chains are fine.
    assert!(parse("Drop && Stable && Tick", &al).is_ok());
}

#[test]
fn fires_when_both_occurred_regardless_of_order() {
    let dfa = compile("Drop && Stable");
    // Drop then Stable: fires at the Stable.
    assert_eq!(dfa.run_stream(&ids(&[0, 1]), &[]), 1);
    // Stable then Drop: fires at the Drop.
    assert_eq!(dfa.run_stream(&ids(&[1, 0]), &[]), 1);
    // Only one side: never.
    assert_eq!(dfa.run_stream(&ids(&[0, 0, 2]), &[]), 0);
    assert_eq!(dfa.run_stream(&ids(&[1, 2, 1]), &[]), 0);
    // Unrelated events in between are fine.
    assert_eq!(dfa.run_stream(&ids(&[0, 2, 2, 1]), &[]), 1);
}

#[test]
fn same_event_satisfies_both_sides_at_once() {
    let dfa = compile("Drop && Drop");
    assert_eq!(dfa.run_stream(&ids(&[0]), &[]), 1);
    assert_eq!(dfa.run_stream(&ids(&[2]), &[]), 0);
}

#[test]
fn perpetual_refiring_needs_a_new_occurrence() {
    let dfa = compile("Drop && Stable");
    // After both occurred, each *new* occurrence of either side fires
    // again; inert events do not.
    assert_eq!(dfa.run_stream(&ids(&[0, 1, 2, 2]), &[]), 1);
    assert_eq!(dfa.run_stream(&ids(&[0, 1, 0]), &[]), 2);
    assert_eq!(dfa.run_stream(&ids(&[0, 1, 1, 0]), &[]), 3);
}

#[test]
fn conjunction_of_composites() {
    // (Drop, Drop) && Stable — two consecutive drops and a stabilisation,
    // in any interleaving.
    let dfa = compile("(Drop, Drop) && Stable");
    assert_eq!(dfa.run_stream(&ids(&[0, 0, 1]), &[]), 1);
    assert_eq!(dfa.run_stream(&ids(&[1, 0, 0]), &[]), 1);
    // The Stable may even sit between the two Drops — then the Drop pair
    // completes later... but the pair must be *consecutive*, which Stable
    // breaks, so a fresh pair is needed.
    assert_eq!(dfa.run_stream(&ids(&[0, 1, 0]), &[]), 0);
    assert_eq!(dfa.run_stream(&ids(&[0, 1, 0, 0]), &[]), 1);
}

#[test]
fn conjunction_with_masks() {
    let al = alphabet();
    let te = parse("(Drop & M0()) && Stable", &al).unwrap();
    let dfa = Dfa::compile(&te, &al);
    // Mask false on the drop: left side never occurs.
    assert_eq!(dfa.run_stream_with(&ids(&[0, 1]), |_, _| false), 0);
    // Mask true: fires once both sides are in.
    assert_eq!(dfa.run_stream_with(&ids(&[0, 1]), |_, _| true), 1);
    assert_eq!(dfa.run_stream_with(&ids(&[1, 0]), |_, _| true), 1);
}

#[test]
fn chained_conjunction() {
    let dfa = compile("Drop && Stable && Tick");
    assert_eq!(dfa.run_stream(&ids(&[2, 0, 1]), &[]), 1);
    assert_eq!(dfa.run_stream(&ids(&[0, 1]), &[]), 0);
    assert_eq!(dfa.run_stream(&ids(&[1, 2, 0]), &[]), 1);
}

// ---------------------------------------------------------------------
// Property: the machine equals the latch oracle for mask-free conjuncts.
// ---------------------------------------------------------------------

fn leaf_expr() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        (0..N_EVENTS).prop_map(|e| EventExpr::Basic(EventId(e))),
        Just(EventExpr::Any),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::seq(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| EventExpr::or(a, b)),
            inner.clone().prop_map(EventExpr::star),
            (inner.clone(), inner).prop_map(|(a, b)| EventExpr::relative(a, b)),
        ]
    })
}

/// Does `expr` match `s` exactly?
fn matches_exact(expr: &EventExpr, s: &[EventId], declared: &[EventId]) -> bool {
    match expr {
        EventExpr::Basic(e) => s.len() == 1 && s[0] == *e,
        EventExpr::Any => s.len() == 1 && declared.contains(&s[0]),
        EventExpr::Seq(a, b) => (0..=s.len())
            .any(|i| matches_exact(a, &s[..i], declared) && matches_exact(b, &s[i..], declared)),
        EventExpr::Or(a, b) => matches_exact(a, s, declared) || matches_exact(b, s, declared),
        EventExpr::Star(a) => {
            s.is_empty()
                || (1..=s.len()).any(|i| {
                    matches_exact(a, &s[..i], declared)
                        && matches_exact(&EventExpr::Star(a.clone()), &s[i..], declared)
                })
        }
        EventExpr::Relative(a, b) => (0..=s.len()).any(|i| {
            matches_exact(a, &s[..i], declared)
                && (i..=s.len()).any(|j| matches_exact(b, &s[j..], declared))
        }),
        EventExpr::Both(..) | EventExpr::Mask(..) => unreachable!("leaves are simple"),
    }
}

/// occurs-now(t): some window ending exactly at prefix length t matches.
fn occurs_now(expr: &EventExpr, s: &[EventId], t: usize, declared: &[EventId]) -> bool {
    (0..=t).any(|i| matches_exact(expr, &s[i..t], declared))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn conjunction_matches_latch_oracle(
        a in leaf_expr(),
        b in leaf_expr(),
        s in prop::collection::vec((0..N_EVENTS).prop_map(EventId), 0..7),
    ) {
        let al = alphabet();
        let declared = al.event_ids();
        let te = TriggerEvent {
            anchored: false,
            expr: EventExpr::both(a.clone(), b.clone()),
        };
        let dfa = Dfa::compile(&te, &al);
        let got = dfa.run_stream(&s, &[]);

        // Latch oracle over prefixes 0..=len.
        let mut want = 0usize;
        let mut occurred_a = false;
        let mut occurred_b = false;
        for t in 0..=s.len() {
            let a_now = occurs_now(&a, &s, t, &declared);
            let b_now = occurs_now(&b, &s, t, &declared);
            occurred_a |= a_now;
            occurred_b |= b_now;
            if (a_now || b_now) && occurred_a && occurred_b {
                want += 1;
            }
        }
        prop_assert_eq!(got, want, "a: {} / b: {}", a.display(&al), b.display(&al));
    }
}
