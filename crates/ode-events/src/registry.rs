//! The run-time event registry — the paper's `eventRep` mechanism (§5.2).
//!
//! "Because of separate compilation, unique integers cannot be assigned at
//! compile time. […] As a result, the assignment of unique integers to
//! represent events is made at run-time. The eventRep constructor examines
//! a table to see if another eventRep with the same parameters has been
//! constructed. If not, it increments a counter and stores its pair of
//! parameters in the table along with the value of the counter."
//!
//! [`EventRegistry::intern`] is exactly that constructor: keyed by
//! *(defining class, basic event)*, idempotent, monotonic counter. Because
//! the key uses the **defining** class, a derived class that inherits
//! `after Buy` from `CredCard` sees the same integer as `CredCard` itself —
//! the fix the paper adopted after per-class small integers broke under
//! multiple inheritance (§6).
//!
//! For experiment E2, [`StringTripleEvent`] reproduces Sentinel's event
//! representation — "a triple of strings: the class name, the member
//! function prototype, and the string 'begin' (before) or 'end' (after)" —
//! which the paper argues has "significantly higher event posting overhead"
//! than integer comparison.

use crate::event::{BasicEvent, EventId};
use ode_obs::Metrics;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Run-time assignment of globally unique integers to basic events.
///
/// Also carries the database-wide [`Metrics`] registry so that trigger
/// compilation (which only sees the registry and an alphabet) can record
/// into the same instance as the storage layer below it.
#[derive(Debug, Default)]
pub struct EventRegistry {
    inner: Mutex<RegistryInner>,
    metrics: Arc<Metrics>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    map: HashMap<(String, String), EventId>,
    names: Vec<(String, BasicEvent)>,
}

impl EventRegistry {
    /// An empty registry with its own private metrics instance.
    pub fn new() -> EventRegistry {
        EventRegistry::default()
    }

    /// An empty registry recording into an existing metrics instance.
    pub fn with_metrics(metrics: Arc<Metrics>) -> EventRegistry {
        EventRegistry {
            inner: Mutex::default(),
            metrics,
        }
    }

    /// The metrics registry this event registry records into.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Get-or-assign the unique integer for `event` as declared by
    /// `defining_class`. Calling twice with the same parameters returns the
    /// same id; distinct parameters never collide.
    pub fn intern(&self, defining_class: &str, event: &BasicEvent) -> EventId {
        let mut inner = self.inner.lock().expect("registry poisoned");
        let key = (defining_class.to_string(), event.key());
        if let Some(&id) = inner.map.get(&key) {
            return id;
        }
        let id = EventId(inner.names.len() as u32);
        inner.map.insert(key, id);
        inner
            .names
            .push((defining_class.to_string(), event.clone()));
        id
    }

    /// Look up without assigning.
    pub fn lookup(&self, defining_class: &str, event: &BasicEvent) -> Option<EventId> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner
            .map
            .get(&(defining_class.to_string(), event.key()))
            .copied()
    }

    /// Reverse lookup: which (class, event) does an id denote?
    pub fn describe(&self, id: EventId) -> Option<(String, BasicEvent)> {
        let inner = self.inner.lock().expect("registry poisoned");
        inner.names.get(id.0 as usize).cloned()
    }

    /// Number of interned events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").names.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Sentinel's event representation (§7), used by the comparison benchmark:
/// equality requires three string comparisons instead of one integer
/// comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StringTripleEvent {
    /// Class name.
    pub class_name: String,
    /// Full member-function prototype.
    pub prototype: String,
    /// `"begin"` for before-events, `"end"` for after-events.
    pub position: String,
}

impl StringTripleEvent {
    /// Build the Sentinel-style triple for a member-function event.
    pub fn new(class_name: &str, prototype: &str, before: bool) -> StringTripleEvent {
        StringTripleEvent {
            class_name: class_name.to_string(),
            prototype: prototype.to_string(),
            position: if before { "begin" } else { "end" }.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventTime;

    #[test]
    fn intern_is_idempotent() {
        let reg = EventRegistry::new();
        let a = reg.intern("CredCard", &BasicEvent::after("Buy"));
        let b = reg.intern("CredCard", &BasicEvent::after("Buy"));
        assert_eq!(a, b);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_events_get_distinct_ids() {
        let reg = EventRegistry::new();
        let ids = [
            reg.intern("CredCard", &BasicEvent::user("BigBuy")),
            reg.intern("CredCard", &BasicEvent::after("PayBill")),
            reg.intern("CredCard", &BasicEvent::after("Buy")),
            reg.intern("CredCard", &BasicEvent::before("Buy")),
            reg.intern("Account", &BasicEvent::after("Buy")), // other class!
            reg.intern("CredCard", &BasicEvent::TxnComplete),
            reg.intern("CredCard", &BasicEvent::TxnAbort),
        ];
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn inherited_event_shares_the_base_id() {
        // The §6 multiple-inheritance lesson: the defining class is the key,
        // so a derived class never re-numbers an inherited event.
        let reg = EventRegistry::new();
        let base = reg.intern("CredCard", &BasicEvent::after("Buy"));
        // A derived GoldCard posting the inherited event interns with the
        // *defining* class name and must get the same integer.
        let seen_by_derived = reg.intern("CredCard", &BasicEvent::after("Buy"));
        assert_eq!(base, seen_by_derived);
        // Two base classes declaring same-named events stay distinct.
        let other = reg.intern("Account", &BasicEvent::after("Buy"));
        assert_ne!(base, other);
    }

    #[test]
    fn describe_reverses_intern() {
        let reg = EventRegistry::new();
        let id = reg.intern("CredCard", &BasicEvent::after("PayBill"));
        let (class, event) = reg.describe(id).unwrap();
        assert_eq!(class, "CredCard");
        assert_eq!(
            event,
            BasicEvent::Member {
                name: "PayBill".into(),
                time: EventTime::After
            }
        );
        assert!(reg.describe(EventId(999)).is_none());
    }

    #[test]
    fn string_triple_equality() {
        let a = StringTripleEvent::new("CredCard", "void PayBill(float)", false);
        let b = StringTripleEvent::new("CredCard", "void PayBill(float)", false);
        let c = StringTripleEvent::new("CredCard", "void PayBill(float)", true);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.position, "end");
        assert_eq!(c.position, "begin");
    }

    #[test]
    fn registry_is_thread_safe() {
        use std::sync::Arc;
        let reg = Arc::new(EventRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || reg.intern("C", &BasicEvent::after("f")))
            })
            .collect();
        let ids: Vec<EventId> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(reg.len(), 1);
    }
}
