//! Thompson construction of NFAs from event expressions.
//!
//! §5.1 of the paper: "Regular expressions can be recognized by FSMs using
//! the well known, regular expression to FSM construction". Masks extend
//! the construction (§5.1.2): recognising `a & m()` means recognising `a`,
//! then passing through a *mask state* that consumes the pseudo-event
//! `True(m)` (and dies on `False(m)`).
//!
//! Two non-textbook details make composite triggers behave correctly:
//!
//! 1. **Unanchored search** — unless the trigger is `^`-anchored, the
//!    expression is wrapped as `(*any), expr` so matching can start at any
//!    point of the event stream (§5.1.1).
//! 2. **Pseudo-event transparency** — mask pseudo-events are internal to
//!    one mask evaluation, so every NFA state self-loops on the pseudo
//!    events of *other* masks (and non-mask states on all of them). Without
//!    this, evaluating one trigger component's mask would kill concurrently
//!    active components (e.g. the `*any` survivor loop, or the "waiting for
//!    `b`" component of `relative(a & m(), b)`).

use crate::ast::{Alphabet, EventExpr, TriggerEvent};
use crate::event::{EventId, MaskId, Symbol};

/// A non-deterministic finite automaton over [`Symbol`]s with ε-moves.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// Per-state symbol transitions.
    trans: Vec<Vec<(Symbol, usize)>>,
    /// Per-state ε transitions.
    eps: Vec<Vec<usize>>,
    /// Mask states: `mask_of[s] = Some(m)` when `s` awaits mask `m`.
    mask_of: Vec<Option<MaskId>>,
    start: usize,
    accept: usize,
    /// Declared events (the `any` expansion set).
    alphabet_events: Vec<EventId>,
    /// All masks appearing in the expression.
    masks: Vec<MaskId>,
}

struct Builder {
    trans: Vec<Vec<(Symbol, usize)>>,
    eps: Vec<Vec<usize>>,
    mask_of: Vec<Option<MaskId>>,
    events: Vec<EventId>,
}

impl Builder {
    fn state(&mut self) -> usize {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        self.mask_of.push(None);
        self.trans.len() - 1
    }

    fn edge(&mut self, from: usize, on: Symbol, to: usize) {
        self.trans[from].push((on, to));
    }

    fn eps(&mut self, from: usize, to: usize) {
        self.eps[from].push(to);
    }

    /// Compile `expr`, returning (entry, exit).
    fn compile(&mut self, expr: &EventExpr) -> (usize, usize) {
        match expr {
            EventExpr::Basic(e) => {
                let s = self.state();
                let t = self.state();
                self.edge(s, Symbol::Event(*e), t);
                (s, t)
            }
            EventExpr::Any => {
                let s = self.state();
                let t = self.state();
                for e in self.events.clone() {
                    self.edge(s, Symbol::Event(e), t);
                }
                (s, t)
            }
            EventExpr::Seq(a, b) => {
                let (sa, ta) = self.compile(a);
                let (sb, tb) = self.compile(b);
                self.eps(ta, sb);
                (sa, tb)
            }
            EventExpr::Or(a, b) => {
                let s = self.state();
                let t = self.state();
                let (sa, ta) = self.compile(a);
                let (sb, tb) = self.compile(b);
                self.eps(s, sa);
                self.eps(s, sb);
                self.eps(ta, t);
                self.eps(tb, t);
                (s, t)
            }
            EventExpr::Star(a) => {
                let s = self.state();
                let t = self.state();
                let (sa, ta) = self.compile(a);
                self.eps(s, sa);
                self.eps(s, t);
                self.eps(ta, sa);
                self.eps(ta, t);
                (s, t)
            }
            EventExpr::Both(..) => {
                // Guarded by the parser / Dfa::compile; reaching here means
                // an AST was built by hand with && below the top level.
                panic!(
                    "conjunction (&&) is only supported at the top level of a \
                     trigger expression"
                );
            }
            EventExpr::Relative(a, b) => {
                // relative(a, b) ≡ a, (*any), b  (§4: "once the composite
                // event a has been satisfied, any future occurrence of b
                // will satisfy the trigger's composite event").
                let desugared = EventExpr::seq(
                    (**a).clone(),
                    EventExpr::seq(EventExpr::star(EventExpr::Any), (**b).clone()),
                );
                self.compile(&desugared)
            }
            EventExpr::Mask(a, m) => {
                let (sa, ta) = self.compile(a);
                let t = self.state();
                // Mark `a`'s exit itself as the mask state. It must NOT be
                // a fresh ε-successor: ε-closure would re-enter it after a
                // False, leaving the mask pending forever. Every compile
                // arm returns a fresh exit with no prior marking, so the
                // debug assertion documents the invariant.
                debug_assert!(self.mask_of[ta].is_none(), "exit already a mask state");
                self.mask_of[ta] = Some(*m);
                self.edge(ta, Symbol::True(*m), t);
                // False(m) has no edge: that branch of the match dies
                // (survivors, if any, come from other NFA components).
                (sa, t)
            }
        }
    }
}

impl Nfa {
    /// Build the NFA for a trigger event over a class alphabet.
    pub fn build(trigger: &TriggerEvent, alphabet: &Alphabet) -> Nfa {
        let mut b = Builder {
            trans: Vec::new(),
            eps: Vec::new(),
            mask_of: Vec::new(),
            events: alphabet.event_ids(),
        };
        let expr = if trigger.anchored {
            trigger.expr.clone()
        } else {
            // Prepend (*any) — §5.1.1.
            EventExpr::seq(EventExpr::star(EventExpr::Any), trigger.expr.clone())
        };
        let (start, accept) = b.compile(&expr);
        let masks = trigger.expr.masks();
        // Pseudo-event transparency pass (see module docs).
        for s in 0..b.trans.len() {
            for &m in &masks {
                let skip_own = b.mask_of[s] == Some(m);
                if !skip_own {
                    b.edge(s, Symbol::True(m), s);
                    b.edge(s, Symbol::False(m), s);
                }
            }
        }
        Nfa {
            trans: b.trans,
            eps: b.eps,
            mask_of: b.mask_of,
            start,
            accept,
            alphabet_events: alphabet.event_ids(),
            masks,
        }
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.trans.len()
    }

    /// True when the automaton has no states (never happens for built NFAs).
    pub fn is_empty(&self) -> bool {
        self.trans.is_empty()
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The accepting state.
    pub fn accept(&self) -> usize {
        self.accept
    }

    /// Masks used by the expression.
    pub fn masks(&self) -> &[MaskId] {
        &self.masks
    }

    /// Declared events of the class.
    pub fn alphabet_events(&self) -> &[EventId] {
        &self.alphabet_events
    }

    /// The mask a state is waiting on, if it is a mask state.
    pub fn mask_of(&self, state: usize) -> Option<MaskId> {
        self.mask_of[state]
    }

    /// ε-closure of a set of states (result sorted, deduplicated).
    pub fn closure(&self, states: &[usize]) -> Vec<usize> {
        let mut seen: Vec<bool> = vec![false; self.len()];
        let mut stack: Vec<usize> = Vec::new();
        for &s in states {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s] {
                if !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
        (0..self.len()).filter(|&s| seen[s]).collect()
    }

    /// States reachable from `states` on `symbol` (no closure applied).
    pub fn step(&self, states: &[usize], symbol: Symbol) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for &s in states {
            for &(on, to) in &self.trans[s] {
                if on == symbol {
                    out.push(to);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Reference simulation used by tests and property checks: posts the
    /// real-event stream, quiescing masks after every step with `eval`.
    /// Returns true when the accept state was visited at any point.
    pub fn simulate(&self, stream: &[EventId], mut eval: impl FnMut(MaskId) -> bool) -> bool {
        self.simulate_with(stream, |_, m| eval(m))
    }

    /// Like [`Nfa::simulate`], but the mask oracle is a pure function of
    /// the posting index (0 = activation, i+1 = stream element i) and the
    /// mask — matching how real masks are predicates over database state
    /// at the moment of posting.
    pub fn simulate_with(
        &self,
        stream: &[EventId],
        mut eval: impl FnMut(usize, MaskId) -> bool,
    ) -> bool {
        let mut current = self.closure(&[self.start]);
        let mut fired = current.contains(&self.accept);
        // Quiesce at activation (a mask may be pending immediately).
        fired |= self.quiesce(&mut current, &mut |m| eval(0, m));
        for (i, &event) in stream.iter().enumerate() {
            if !self.alphabet_events.contains(&event) {
                continue; // undeclared events are never posted
            }
            current = self.closure(&self.step(&current, Symbol::Event(event)));
            fired |= current.contains(&self.accept);
            fired |= self.quiesce(&mut current, &mut |m| eval(i + 1, m));
        }
        fired
    }

    /// Evaluate pending masks until none remain or a fixpoint is reached
    /// (nullable mask operands can loop `False` straight back into the
    /// pending state; the machine rests there and re-evaluates at the
    /// next posting). Returns whether accept was visited.
    fn quiesce(&self, current: &mut Vec<usize>, eval: &mut impl FnMut(MaskId) -> bool) -> bool {
        let mut fired = false;
        'rounds: for _ in 0..crate::machine::QUIESCE_LIMIT {
            let mut pending: Vec<MaskId> =
                current.iter().filter_map(|&s| self.mask_of[s]).collect();
            if pending.is_empty() {
                return fired;
            }
            pending.sort_unstable();
            pending.dedup();
            for m in pending {
                let sym = if eval(m) {
                    Symbol::True(m)
                } else {
                    Symbol::False(m)
                };
                let next = self.closure(&self.step(current, sym));
                if next != *current {
                    *current = next;
                    fired |= current.contains(&self.accept);
                    continue 'rounds;
                }
            }
            // Fixpoint: no pending mask makes progress — rest.
            return fired;
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn alphabet() -> Alphabet {
        let mut al = Alphabet::new();
        al.add_event(EventId(0), "BigBuy");
        al.add_event(EventId(1), "after PayBill");
        al.add_event(EventId(2), "after Buy");
        al.add_mask("MoreCred");
        al
    }

    fn simulate(src: &str, stream: &[u32], masks: &[bool]) -> bool {
        let al = alphabet();
        let te = parse(src, &al).unwrap();
        let nfa = Nfa::build(&te, &al);
        let mut answers = masks.iter().copied();
        let stream: Vec<EventId> = stream.iter().map(|&e| EventId(e)).collect();
        nfa.simulate(&stream, |_| answers.next().unwrap_or(false))
    }

    #[test]
    fn single_event_matches_anywhere() {
        assert!(simulate("after Buy", &[2], &[]));
        assert!(simulate("after Buy", &[0, 1, 2], &[]));
        assert!(!simulate("after Buy", &[0, 1], &[]));
        assert!(!simulate("after Buy", &[], &[]));
    }

    #[test]
    fn sequence_requires_adjacency() {
        assert!(simulate("after Buy, after PayBill", &[2, 1], &[]));
        assert!(simulate("after Buy, after PayBill", &[0, 2, 1], &[]));
        // Interleaved event breaks a bare sequence…
        assert!(!simulate("after Buy, after PayBill", &[2, 0, 1], &[]));
        // …unless bridged by *any.
        assert!(simulate("after Buy, *any, after PayBill", &[2, 0, 1], &[]));
    }

    #[test]
    fn relative_allows_gaps() {
        assert!(simulate(
            "relative(after Buy, after PayBill)",
            &[2, 0, 0, 1],
            &[]
        ));
        assert!(!simulate(
            "relative(after Buy, after PayBill)",
            &[1, 0],
            &[]
        ));
    }

    #[test]
    fn union_matches_either() {
        assert!(simulate("BigBuy || after PayBill", &[0], &[]));
        assert!(simulate("BigBuy || after PayBill", &[1], &[]));
        assert!(!simulate("BigBuy || after PayBill", &[2], &[]));
    }

    #[test]
    fn star_matches_repetitions() {
        // (BigBuy, *BigBuy, after PayBill): one or more BigBuys then PayBill.
        let src = "BigBuy, *BigBuy, after PayBill";
        assert!(simulate(src, &[0, 1], &[]));
        assert!(simulate(src, &[0, 0, 0, 1], &[]));
        assert!(!simulate(src, &[1], &[]));
    }

    #[test]
    fn anchored_matches_only_from_start() {
        assert!(simulate("^after Buy", &[2], &[]));
        assert!(!simulate("^after Buy", &[0, 2], &[]));
        assert!(simulate("^after Buy, after PayBill", &[2, 1], &[]));
        assert!(!simulate("^after Buy, after PayBill", &[2, 0, 1], &[]));
    }

    #[test]
    fn mask_gates_the_match() {
        let src = "after Buy & MoreCred()";
        assert!(simulate(src, &[2], &[true]));
        assert!(!simulate(src, &[2], &[false]));
        // Mask false once, true on a later occurrence.
        assert!(simulate(src, &[2, 2], &[false, true]));
    }

    #[test]
    fn auto_raise_limit_semantics() {
        let src = "relative((after Buy & MoreCred()), after PayBill)";
        // Buy (mask true) then later PayBill fires.
        assert!(simulate(src, &[2, 0, 1], &[true]));
        // Mask false: PayBill alone never fires.
        assert!(!simulate(src, &[2, 0, 1], &[false]));
        // Mask false on first Buy, true on second.
        assert!(simulate(src, &[2, 2, 1], &[false, true]));
        // PayBill before any Buy does not fire.
        assert!(!simulate(src, &[1, 2], &[true]));
        // A Buy with a false mask must not clobber an armed state.
        assert!(simulate(src, &[2, 2, 1], &[true, false]));
    }

    #[test]
    fn undeclared_events_are_invisible() {
        // Event 9 is not in the alphabet: it neither matches nor breaks
        // adjacency (it is simply never posted to this class).
        assert!(simulate("after Buy, after PayBill", &[2, 9, 1], &[]));
    }

    #[test]
    fn nfa_size_is_linear_in_expression() {
        let al = alphabet();
        let small = Nfa::build(&parse("after Buy", &al).unwrap(), &al);
        let large = Nfa::build(
            &parse(
                "relative((after Buy & MoreCred()), (after PayBill, BigBuy || after Buy))",
                &al,
            )
            .unwrap(),
            &al,
        );
        assert!(small.len() < large.len());
        assert!(large.len() < 64, "Thompson NFA should stay small");
    }
}
