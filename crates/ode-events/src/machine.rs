//! Run-time execution of compiled trigger FSMs (§5.4.5).
//!
//! Posting a basic event to a trigger instance is:
//!
//! 1. Follow the event's transition from the instance's current state (a
//!    plain integer, stored in its persistent `TriggerState`). Events
//!    without a transition are *ignored* when they are outside the
//!    machine's alphabet (a base-class trigger "should not see the events
//!    of a derived class", §5.4.3) and *kill* the instance otherwise
//!    (only reachable for `^`-anchored expressions).
//! 2. While the resulting state has pending masks, evaluate them and
//!    consume the `True`/`False` pseudo-events — "potentially, multiple
//!    mask events must be posted before the system quiesces".
//! 3. Report whether an accept state was visited anywhere along the way;
//!    "the trigger will fire at most once in response to the posting of a
//!    single basic event" (§5.4.5 footnote).
//!
//! The machine itself is immutable and shared; all per-instance state is
//! the `u32` the caller passes in and stores back.

use crate::dfa::Dfa;
use crate::event::{EventId, MaskId, Symbol};
use ode_obs::TraceEvent;

/// Safety bound on mask-evaluation cascades. Pathological expressions
/// (e.g. a starred nullable mask) could loop; hitting the bound kills the
/// instance instead of hanging.
pub const QUIESCE_LIMIT: usize = 1024;

/// How a posting affected the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// The machine consumed the event (state may or may not have changed).
    Moved,
    /// The event is outside this machine's alphabet; nothing happened.
    Ignored,
    /// The instance ran off the machine (anchored mismatch, failed anchored
    /// mask, or a runaway mask cascade). It can never fire again.
    Dead,
}

/// Result of posting an event (or of activating an instance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostOutcome {
    /// The instance's new state (meaningless when `status` is `Dead`).
    pub state: u32,
    /// Whether an accept state was visited — i.e. the trigger should fire.
    pub accepted: bool,
    /// What happened.
    pub status: Advance,
}

impl Dfa {
    /// Outcome of activating a fresh instance: quiesces any masks pending
    /// in the start state and reports an immediate accept (possible for
    /// expressions that match the empty stream).
    pub fn activate(&self, mut eval: impl FnMut(MaskId) -> bool) -> PostOutcome {
        let state = self.start();
        let accepted = self.states()[state as usize].accept;
        self.quiesce(state, accepted, &mut eval)
    }

    /// Post one basic event to an instance currently in `from`.
    pub fn post(
        &self,
        from: u32,
        event: EventId,
        mut eval: impl FnMut(MaskId) -> bool,
    ) -> PostOutcome {
        if !self.alphabet_events().contains(&event) {
            return PostOutcome {
                state: from,
                accepted: false,
                status: Advance::Ignored,
            };
        }
        let Some(next) = self.states()[from as usize].next(Symbol::Event(event)) else {
            return PostOutcome {
                state: from,
                accepted: false,
                status: Advance::Dead,
            };
        };
        if let Some(metrics) = &self.metrics {
            metrics.fsm_transitions.inc();
            metrics.emit(|| TraceEvent::FsmAdvanced {
                trigger: self.trace_name(),
                from_state: from,
                to_state: next,
                pseudo: None,
            });
        }
        let accepted = self.states()[next as usize].accept;
        self.quiesce(next, accepted, &mut eval)
    }

    /// Evaluate pending masks until the machine rests.
    ///
    /// Masks are pure predicates over database state at the moment of
    /// posting, so if evaluating every pending mask leaves the state
    /// unchanged (possible with *nullable* mask operands like
    /// `(*e) & m()`, whose `False` edge loops back into the pending
    /// state), the machine has reached a fixpoint and *rests* there; the
    /// masks will be re-evaluated at the next posting.
    fn quiesce(
        &self,
        mut state: u32,
        mut accepted: bool,
        eval: &mut impl FnMut(MaskId) -> bool,
    ) -> PostOutcome {
        let mut steps = 0;
        'rounds: loop {
            let s = &self.states()[state as usize];
            if s.masks.is_empty() {
                return PostOutcome {
                    state,
                    accepted,
                    status: Advance::Moved,
                };
            }
            steps += 1;
            if steps > QUIESCE_LIMIT {
                return PostOutcome {
                    state,
                    accepted,
                    status: Advance::Dead,
                };
            }
            for &mask in &s.masks {
                let truth = eval(mask);
                if let Some(metrics) = &self.metrics {
                    metrics.fsm_mask_evals.inc();
                    if truth {
                        metrics.fsm_true_events.inc();
                    } else {
                        metrics.fsm_false_events.inc();
                    }
                }
                let symbol = if truth {
                    Symbol::True(mask)
                } else {
                    Symbol::False(mask)
                };
                match s.next(symbol) {
                    Some(next) if next != state => {
                        if let Some(metrics) = &self.metrics {
                            metrics.emit(|| TraceEvent::FsmAdvanced {
                                trigger: self.trace_name(),
                                from_state: state,
                                to_state: next,
                                pseudo: Some(truth),
                            });
                        }
                        state = next;
                        accepted |= self.states()[state as usize].accept;
                        continue 'rounds;
                    }
                    // Self-loop: this mask makes no progress; try the next.
                    Some(_) => {}
                    None => {
                        return PostOutcome {
                            state,
                            accepted,
                            status: Advance::Dead,
                        };
                    }
                }
            }
            // Fixpoint: every pending mask self-loops — rest here.
            return PostOutcome {
                state,
                accepted,
                status: Advance::Moved,
            };
        }
    }

    /// Convenience for tests: run a whole stream from activation, with a
    /// scripted sequence of mask answers (missing answers default false).
    /// Returns the number of times the machine accepted. Note: because the
    /// answers are consumed in evaluation order, this is only meaningful
    /// when the caller controls exactly how many evaluations happen; for
    /// semantics comparisons use [`Dfa::run_stream_with`], whose oracle is
    /// a pure function of (posting index, mask) like real masks are pure
    /// predicates over database state.
    pub fn run_stream(&self, stream: &[EventId], mask_answers: &[bool]) -> usize {
        let mut answers = mask_answers.iter().copied();
        self.run_stream_with(stream, move |_i, _m| answers.next().unwrap_or(false))
    }

    /// Run a whole stream from activation with a mask oracle that is a
    /// pure function of the posting index (0 = activation, i+1 = stream
    /// element i) and the mask id. Returns the number of postings that
    /// accepted.
    pub fn run_stream_with(
        &self,
        stream: &[EventId],
        mut eval: impl FnMut(usize, MaskId) -> bool,
    ) -> usize {
        let mut fired = 0;
        let out = self.activate(|m| eval(0, m));
        if out.accepted {
            fired += 1;
        }
        let mut state = out.state;
        if out.status == Advance::Dead {
            return fired;
        }
        for (i, &e) in stream.iter().enumerate() {
            let out = self.post(state, e, |m| eval(i + 1, m));
            if out.accepted {
                fired += 1;
            }
            match out.status {
                Advance::Dead => return fired,
                _ => state = out.state,
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Alphabet;
    use crate::parser::parse;

    fn alphabet() -> Alphabet {
        let mut al = Alphabet::new();
        al.add_event(EventId(0), "BigBuy");
        al.add_event(EventId(1), "after PayBill");
        al.add_event(EventId(2), "after Buy");
        al.add_mask("MoreCred");
        al
    }

    fn compile(src: &str) -> Dfa {
        let al = alphabet();
        Dfa::compile(&parse(src, &al).unwrap(), &al)
    }

    fn ids(stream: &[u32]) -> Vec<EventId> {
        stream.iter().map(|&e| EventId(e)).collect()
    }

    #[test]
    fn simple_event_fires_once_per_occurrence() {
        let dfa = compile("after Buy");
        assert_eq!(dfa.run_stream(&ids(&[2]), &[]), 1);
        assert_eq!(dfa.run_stream(&ids(&[0, 2, 2]), &[]), 2);
        assert_eq!(dfa.run_stream(&ids(&[0, 1]), &[]), 0);
    }

    #[test]
    fn posting_undeclared_event_is_ignored() {
        let dfa = compile("after Buy");
        let out = dfa.post(dfa.start(), EventId(77), |_| true);
        assert_eq!(out.status, Advance::Ignored);
        assert_eq!(out.state, dfa.start());
        assert!(!out.accepted);
    }

    #[test]
    fn figure_1_machine_walkthrough() {
        let dfa = compile("relative((after Buy & MoreCred()), after PayBill)");
        // Buy with MoreCred()==false: back to start.
        let out = dfa.post(0, EventId(2), |_| false);
        assert_eq!((out.state, out.accepted), (0, false));
        // Buy with MoreCred()==true: armed in state 2.
        let out = dfa.post(0, EventId(2), |_| true);
        assert_eq!((out.state, out.accepted), (2, false));
        // BigBuy while armed: stays armed.
        let out = dfa.post(2, EventId(0), |_| panic!("no mask pending"));
        assert_eq!((out.state, out.accepted), (2, false));
        // PayBill while armed: fires.
        let out = dfa.post(2, EventId(1), |_| panic!("no mask pending"));
        assert!(out.accepted);
    }

    #[test]
    fn perpetual_style_reuse_keeps_firing() {
        // A perpetual trigger keeps its instance after firing; the machine
        // must keep producing accepts.
        let dfa = compile("after Buy");
        assert_eq!(dfa.run_stream(&ids(&[2, 2, 2]), &[]), 3);
    }

    #[test]
    fn anchored_mismatch_kills() {
        let dfa = compile("^after Buy, after PayBill");
        let out = dfa.post(dfa.start(), EventId(0), |_| true);
        assert_eq!(out.status, Advance::Dead);
        // And a dead-end anchored mask failure also kills.
        let dfa = compile("^after Buy & MoreCred()");
        let out = dfa.post(dfa.start(), EventId(2), |_| false);
        assert_eq!(out.status, Advance::Dead);
    }

    #[test]
    fn activation_can_accept_immediately() {
        // *any matches the empty stream: the trigger is satisfied at
        // activation time.
        let dfa = compile("*BigBuy");
        let out = dfa.activate(|_| false);
        assert!(out.accepted);
        assert_eq!(out.status, Advance::Moved);
    }

    #[test]
    fn at_most_one_fire_per_posting() {
        // (after Buy) || (after Buy & MoreCred()): one Buy may satisfy the
        // expression two ways but fires once.
        let dfa = compile("after Buy || (after Buy & MoreCred())");
        assert_eq!(dfa.run_stream(&ids(&[2]), &[true]), 1);
    }

    #[test]
    fn mask_cascade_evaluates_in_order() {
        let mut al = alphabet();
        al.add_mask("Second");
        let te = parse("(after Buy & MoreCred()) || (after Buy & Second())", &al).unwrap();
        let dfa = Dfa::compile(&te, &al);
        // Both masks pending after Buy; firing requires either to be true.
        let mut evaluated = Vec::new();
        let out = dfa.post(dfa.start(), EventId(2), |m| {
            evaluated.push(m);
            m == MaskId(1) // only Second() is true
        });
        assert!(out.accepted);
        assert_eq!(evaluated.len(), 2, "both masks evaluated: {evaluated:?}");
        assert_eq!(evaluated[0], MaskId(0), "evaluation order is by MaskId");
    }
}
