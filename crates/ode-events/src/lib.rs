//! # ode-events — composite events and their finite state machines
//!
//! The event side of the Ode trigger system (§5.1–§5.2 of *The Ode Active
//! Database: Trigger Semantics and Implementation*, ICDE 1996):
//!
//! * [`event`] — basic events (member-function, user-defined, transaction,
//!   timer) and the [`event::Symbol`]s automata run on.
//! * [`registry`] — the run-time `eventRep` table assigning globally
//!   unique integers to basic events, plus Sentinel's string-triple
//!   representation for the §7 comparison.
//! * [`ast`] / [`parser`] — the composite-event expression language:
//!   sequence `,`, union `||`, repetition `*`, `relative(a, b)`, masks
//!   `& pred()`, `any`, and the `^` anchor.
//! * [`nfa`] / [`dfa`] — Thompson construction and subset construction
//!   with mask states, pruning, redundant-mask elimination, and
//!   minimisation. Compiling the paper's `AutoRaiseLimit` expression
//!   reproduces Figure 1 exactly.
//! * [`machine`] — run-time posting: advance, mask quiescence, at-most-one
//!   fire per posting, ignore-vs-dead semantics.
//! * [`fsm`] — the rejected dense 2-D transition table (§6 ablation).
//!
//! ## Compiling the paper's Figure 1
//!
//! ```
//! use ode_events::ast::Alphabet;
//! use ode_events::event::EventId;
//! use ode_events::dfa::Dfa;
//! use ode_events::parser::parse;
//!
//! let mut al = Alphabet::new();
//! al.add_event(EventId(0), "BigBuy");
//! al.add_event(EventId(1), "after PayBill");
//! al.add_event(EventId(2), "after Buy");
//! al.add_mask("MoreCred");
//!
//! let te = parse("relative((after Buy & MoreCred()), after PayBill)", &al).unwrap();
//! let fsm = Dfa::compile(&te, &al);
//! assert_eq!(fsm.len(), 4); // states 0..3 of Figure 1
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod dfa;
pub mod event;
pub mod fsm;
pub mod machine;
pub mod nfa;
pub mod parser;
pub mod registry;

pub use ast::{Alphabet, EventExpr, TriggerEvent};
pub use dfa::Dfa;
pub use event::{BasicEvent, EventId, EventTime, MaskId, Symbol};
pub use machine::{Advance, PostOutcome};
pub use parser::{parse, ParseError};
pub use registry::EventRegistry;
