//! Basic events and the symbols trigger FSMs run on.
//!
//! Ode's basic events (§5.2, §5.5) are:
//! * *member function events* — `before f` / `after f`, posted automatically
//!   around invocations through persistent pointers;
//! * *user-defined events* — posted explicitly by the application;
//! * *transaction events* — `before tcomplete` and `before tabort`, posted
//!   by the system during commit/abort processing. (`after tcommit` and
//!   `after tabort` were dropped by the paper — §6 explains why — and are
//!   deliberately not representable here.)
//!
//! Every basic event is mapped to a globally unique integer, an
//! [`EventId`], by the [`crate::registry::EventRegistry`]. FSMs additionally
//! consume the mask pseudo-events `True`/`False` (§5.1.2); [`Symbol`] is
//! the union the automata actually transition on.

/// Whether a member-function event fires before or after the invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventTime {
    /// Posted just before the member function body runs.
    Before,
    /// Posted right after the member function body returns.
    After,
}

impl std::fmt::Display for EventTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventTime::Before => write!(f, "before"),
            EventTime::After => write!(f, "after"),
        }
    }
}

/// A basic event as declared in a class's `event` declaration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BasicEvent {
    /// `before f` / `after f` for member function `f`.
    Member {
        /// Member function name.
        name: String,
        /// Before or after the invocation.
        time: EventTime,
    },
    /// An application-defined event, posted explicitly.
    User {
        /// The event's declared name.
        name: String,
    },
    /// `before tcomplete` — posted just before the transaction enters its
    /// prepare-to-commit phase.
    TxnComplete,
    /// `before tabort` — posted just before the system rolls back in
    /// response to an abort request.
    TxnAbort,
    /// A timer tick event (the paper's "timed triggers" future work, §8).
    Timer {
        /// The named timer this event belongs to.
        name: String,
    },
}

impl BasicEvent {
    /// Convenience constructor for `after f`.
    pub fn after(name: &str) -> BasicEvent {
        BasicEvent::Member {
            name: name.to_string(),
            time: EventTime::After,
        }
    }

    /// Convenience constructor for `before f`.
    pub fn before(name: &str) -> BasicEvent {
        BasicEvent::Member {
            name: name.to_string(),
            time: EventTime::Before,
        }
    }

    /// Convenience constructor for a user-defined event.
    pub fn user(name: &str) -> BasicEvent {
        BasicEvent::User {
            name: name.to_string(),
        }
    }

    /// A stable textual key for registry lookups and display.
    pub fn key(&self) -> String {
        self.to_string()
    }
}

impl std::fmt::Display for BasicEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BasicEvent::Member { name, time } => write!(f, "{time} {name}"),
            BasicEvent::User { name } => write!(f, "{name}"),
            BasicEvent::TxnComplete => write!(f, "before tcomplete"),
            BasicEvent::TxnAbort => write!(f, "before tabort"),
            BasicEvent::Timer { name } => write!(f, "timer {name}"),
        }
    }
}

/// The globally unique integer representation of a basic event (§5.2:
/// "this assignment of unique integers ensures that each underlying event
/// is mapped to exactly one integer and no two distinct events map to the
/// same integer").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

impl std::fmt::Display for EventId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a mask predicate, local to the class that declared it
/// (index into the class's mask-function table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MaskId(pub u16);

impl std::fmt::Display for MaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// What an FSM transitions on: a real basic event, or a mask pseudo-event
/// (§5.1.2: mask states "evaluate predicates to produce the pseudo-events
/// True and False and make transitions on these events").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Symbol {
    /// A posted basic event.
    Event(EventId),
    /// Mask `m` evaluated to true.
    True(MaskId),
    /// Mask `m` evaluated to false.
    False(MaskId),
}

impl Symbol {
    /// Is this a mask pseudo-event rather than a real event?
    pub fn is_pseudo(&self) -> bool {
        !matches!(self, Symbol::Event(_))
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Symbol::Event(e) => write!(f, "{e}"),
            Symbol::True(m) => write!(f, "True({m})"),
            Symbol::False(m) => write!(f, "False({m})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(BasicEvent::after("Buy").to_string(), "after Buy");
        assert_eq!(BasicEvent::before("Buy").to_string(), "before Buy");
        assert_eq!(BasicEvent::user("BigBuy").to_string(), "BigBuy");
        assert_eq!(BasicEvent::TxnComplete.to_string(), "before tcomplete");
        assert_eq!(BasicEvent::TxnAbort.to_string(), "before tabort");
        assert_eq!(
            BasicEvent::Timer {
                name: "daily".into()
            }
            .to_string(),
            "timer daily"
        );
    }

    #[test]
    fn before_and_after_are_distinct_events() {
        assert_ne!(BasicEvent::after("Buy"), BasicEvent::before("Buy"));
        assert_ne!(BasicEvent::after("Buy"), BasicEvent::user("Buy"));
    }

    #[test]
    fn symbol_pseudo_classification() {
        assert!(!Symbol::Event(EventId(1)).is_pseudo());
        assert!(Symbol::True(MaskId(0)).is_pseudo());
        assert!(Symbol::False(MaskId(0)).is_pseudo());
    }

    #[test]
    fn symbol_ordering_is_stable() {
        // Events sort before pseudo symbols: the DFA builder relies on this
        // for deterministic state numbering.
        assert!(Symbol::Event(EventId(999)) < Symbol::True(MaskId(0)));
        assert!(Symbol::True(MaskId(0)) < Symbol::False(MaskId(0)));
    }
}
