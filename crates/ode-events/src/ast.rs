//! The composite-event expression language (abstract syntax).
//!
//! Ode's event language (§5.1) is a regular-expression algebra over the
//! basic events declared by a class:
//!
//! * sequence `a , b` (spelled `,` "to make event expressions as
//!   syntactically similar to C++ expressions as possible"),
//! * union `a || b`,
//! * repetition `*a`,
//! * `relative(a, b)` — "once `a` has been satisfied, any future
//!   occurrence of `b` satisfies the trigger's composite event",
//! * masks `a & pred()` — a predicate evaluated when `a` is recognised,
//! * `any` — any declared event,
//! * the `^` qualifier — anchor at the activation point; without it the
//!   system prepends `(*any)` so the expression matches anywhere in the
//!   event stream (§5.1.1).
//!
//! Expressions here are already *resolved*: event names have become
//! [`EventId`]s and mask names [`MaskId`]s via an [`Alphabet`] (see
//! [`crate::parser`] for the concrete syntax).

use crate::event::{EventId, MaskId};

/// A class's declared event alphabet plus its mask predicates; the
/// resolution context for parsing and the naming context for display.
///
/// "The basic events included in the event declaration for a class
/// constitute the alphabet for the regular expression language of that
/// class" (§5.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    events: Vec<(EventId, String)>,
    masks: Vec<String>,
}

impl Alphabet {
    /// Empty alphabet.
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Declare an event under its display name (e.g. `"after Buy"`).
    /// Duplicate names are rejected at the class-definition layer; here the
    /// first registration wins.
    pub fn add_event(&mut self, id: EventId, name: &str) {
        if self.event_id(name).is_none() {
            self.events.push((id, name.to_string()));
        }
    }

    /// Declare a mask predicate; returns its [`MaskId`].
    pub fn add_mask(&mut self, name: &str) -> MaskId {
        if let Some(id) = self.mask_id(name) {
            return id;
        }
        let id = MaskId(self.masks.len() as u16);
        self.masks.push(name.to_string());
        id
    }

    /// Resolve an event display name.
    pub fn event_id(&self, name: &str) -> Option<EventId> {
        self.events
            .iter()
            .find(|(_, n)| n == name)
            .map(|(id, _)| *id)
    }

    /// Resolve a mask name.
    pub fn mask_id(&self, name: &str) -> Option<MaskId> {
        self.masks
            .iter()
            .position(|n| n == name)
            .map(|i| MaskId(i as u16))
    }

    /// Declared events in declaration order.
    pub fn events(&self) -> &[(EventId, String)] {
        &self.events
    }

    /// Declared event ids in declaration order.
    pub fn event_ids(&self) -> Vec<EventId> {
        self.events.iter().map(|(id, _)| *id).collect()
    }

    /// Number of declared masks.
    pub fn mask_count(&self) -> usize {
        self.masks.len()
    }

    /// Display name for an event id (falls back to the raw id).
    pub fn event_name(&self, id: EventId) -> String {
        self.events
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| n.clone())
            .unwrap_or_else(|| id.to_string())
    }

    /// Display name for a mask id.
    pub fn mask_name(&self, id: MaskId) -> String {
        self.masks
            .get(id.0 as usize)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Does the alphabet contain this event?
    pub fn contains(&self, id: EventId) -> bool {
        self.events.iter().any(|(i, _)| *i == id)
    }
}

/// A resolved composite-event expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventExpr {
    /// A single declared basic event.
    Basic(EventId),
    /// Any declared event of the class.
    Any,
    /// `a , b` — `a` immediately followed by `b`.
    Seq(Box<EventExpr>, Box<EventExpr>),
    /// `a || b`.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// `a && b` — conjunction: fires when both composite events have
    /// occurred (in either order, windows may interleave or coincide).
    /// Only supported at the top level of a trigger expression (possibly
    /// chained); it compiles via a latch-product of the two machines.
    Both(Box<EventExpr>, Box<EventExpr>),
    /// `*a` — zero or more repetitions.
    Star(Box<EventExpr>),
    /// `relative(a, b)` — `a`, then `b` any time later. Equivalent to
    /// `a , *any , b`; kept as a node for faithful display.
    Relative(Box<EventExpr>, Box<EventExpr>),
    /// `a & m()` — recognise `a`, then require mask `m` to evaluate true.
    Mask(Box<EventExpr>, MaskId),
}

impl EventExpr {
    /// `a , b`
    pub fn seq(a: EventExpr, b: EventExpr) -> EventExpr {
        EventExpr::Seq(Box::new(a), Box::new(b))
    }

    /// `a || b`
    pub fn or(a: EventExpr, b: EventExpr) -> EventExpr {
        EventExpr::Or(Box::new(a), Box::new(b))
    }

    /// `a && b`
    pub fn both(a: EventExpr, b: EventExpr) -> EventExpr {
        EventExpr::Both(Box::new(a), Box::new(b))
    }

    /// `*a`
    pub fn star(a: EventExpr) -> EventExpr {
        EventExpr::Star(Box::new(a))
    }

    /// `relative(a, b)`
    pub fn relative(a: EventExpr, b: EventExpr) -> EventExpr {
        EventExpr::Relative(Box::new(a), Box::new(b))
    }

    /// `a & m()`
    pub fn mask(a: EventExpr, m: MaskId) -> EventExpr {
        EventExpr::Mask(Box::new(a), m)
    }

    /// All mask ids referenced by the expression.
    pub fn masks(&self) -> Vec<MaskId> {
        let mut out = Vec::new();
        self.collect_masks(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_masks(&self, out: &mut Vec<MaskId>) {
        match self {
            EventExpr::Basic(_) | EventExpr::Any => {}
            EventExpr::Seq(a, b)
            | EventExpr::Or(a, b)
            | EventExpr::Both(a, b)
            | EventExpr::Relative(a, b) => {
                a.collect_masks(out);
                b.collect_masks(out);
            }
            EventExpr::Star(a) => a.collect_masks(out),
            EventExpr::Mask(a, m) => {
                a.collect_masks(out);
                out.push(*m);
            }
        }
    }

    /// All event ids referenced by the expression (not counting `any`).
    pub fn events(&self) -> Vec<EventId> {
        let mut out = Vec::new();
        self.collect_events(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_events(&self, out: &mut Vec<EventId>) {
        match self {
            EventExpr::Basic(e) => out.push(*e),
            EventExpr::Any => {}
            EventExpr::Seq(a, b)
            | EventExpr::Or(a, b)
            | EventExpr::Both(a, b)
            | EventExpr::Relative(a, b) => {
                a.collect_events(out);
                b.collect_events(out);
            }
            EventExpr::Star(a) => a.collect_events(out),
            EventExpr::Mask(a, _) => a.collect_events(out),
        }
    }

    /// Render with names from `alphabet` (round-trips through the parser).
    pub fn display(&self, alphabet: &Alphabet) -> String {
        self.fmt_prec(alphabet, 0)
    }

    // Precedence levels: 0 = or, 1 = both (&&), 2 = seq, 3 = mask,
    // 4 = unary/primary.
    fn fmt_prec(&self, al: &Alphabet, prec: u8) -> String {
        let (s, my_prec) = match self {
            EventExpr::Basic(e) => (al.event_name(*e), 4),
            EventExpr::Any => ("any".to_string(), 4),
            EventExpr::Or(a, b) => (format!("{} || {}", a.fmt_prec(al, 0), b.fmt_prec(al, 1)), 0),
            EventExpr::Both(a, b) => (format!("{} && {}", a.fmt_prec(al, 1), b.fmt_prec(al, 2)), 1),
            EventExpr::Seq(a, b) => (format!("{}, {}", a.fmt_prec(al, 2), b.fmt_prec(al, 3)), 2),
            EventExpr::Mask(a, m) => (format!("{} & {}()", a.fmt_prec(al, 3), al.mask_name(*m)), 3),
            EventExpr::Star(a) => (format!("*{}", a.fmt_prec(al, 4)), 4),
            // Relative args print at mask precedence: a top-level ',' would
            // be read as the argument separator, so sequences (and, for
            // clarity, unions/conjunctions) get parenthesised.
            EventExpr::Relative(a, b) => (
                format!("relative({}, {})", a.fmt_prec(al, 3), b.fmt_prec(al, 3)),
                4,
            ),
        };
        if my_prec < prec {
            format!("({s})")
        } else {
            s
        }
    }
}

/// A trigger's full event specification: the expression plus whether it is
/// anchored (`^`) at the activation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerEvent {
    /// When true, `(*any)` is *not* prepended (§5.1.1).
    pub anchored: bool,
    /// The composite event expression.
    pub expr: EventExpr,
}

impl TriggerEvent {
    /// An unanchored trigger event (the default).
    pub fn new(expr: EventExpr) -> TriggerEvent {
        TriggerEvent {
            anchored: false,
            expr,
        }
    }

    /// An anchored (`^`) trigger event.
    pub fn anchored(expr: EventExpr) -> TriggerEvent {
        TriggerEvent {
            anchored: true,
            expr,
        }
    }

    /// Render with names from `alphabet`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let body = self.expr.display(alphabet);
        if self.anchored {
            format!("^{body}")
        } else {
            body
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet() -> Alphabet {
        let mut al = Alphabet::new();
        al.add_event(EventId(0), "BigBuy");
        al.add_event(EventId(1), "after PayBill");
        al.add_event(EventId(2), "after Buy");
        al.add_mask("MoreCred");
        al
    }

    #[test]
    fn alphabet_resolution() {
        let al = alphabet();
        assert_eq!(al.event_id("after Buy"), Some(EventId(2)));
        assert_eq!(al.event_id("nope"), None);
        assert_eq!(al.mask_id("MoreCred"), Some(MaskId(0)));
        assert_eq!(al.event_name(EventId(1)), "after PayBill");
        assert!(al.contains(EventId(0)));
        assert!(!al.contains(EventId(9)));
    }

    #[test]
    fn alphabet_dedupes() {
        let mut al = alphabet();
        al.add_event(EventId(7), "after Buy"); // ignored duplicate name
        assert_eq!(al.event_id("after Buy"), Some(EventId(2)));
        let m1 = al.add_mask("MoreCred");
        assert_eq!(m1, MaskId(0));
        assert_eq!(al.mask_count(), 1);
    }

    #[test]
    fn display_auto_raise_limit() {
        let al = alphabet();
        // relative((after Buy & MoreCred()), after PayBill)
        let expr = EventExpr::relative(
            EventExpr::mask(EventExpr::Basic(EventId(2)), MaskId(0)),
            EventExpr::Basic(EventId(1)),
        );
        assert_eq!(
            expr.display(&al),
            "relative(after Buy & MoreCred(), after PayBill)"
        );
    }

    #[test]
    fn display_respects_precedence() {
        let al = alphabet();
        let a = || EventExpr::Basic(EventId(0));
        let b = || EventExpr::Basic(EventId(1));
        // (a || b), a  needs parens around the union.
        let expr = EventExpr::seq(EventExpr::or(a(), b()), a());
        assert_eq!(expr.display(&al), "(BigBuy || after PayBill), BigBuy");
        // a || (b, a) keeps seq unparenthesised on the right of ||.
        let expr = EventExpr::or(a(), EventExpr::seq(b(), a()));
        assert_eq!(expr.display(&al), "BigBuy || after PayBill, BigBuy");
        // *(a, b) parenthesises the sequence under star.
        let expr = EventExpr::star(EventExpr::seq(a(), b()));
        assert_eq!(expr.display(&al), "*(BigBuy, after PayBill)");
        // Mask over a sequence.
        let expr = EventExpr::mask(EventExpr::seq(a(), b()), MaskId(0));
        assert_eq!(expr.display(&al), "(BigBuy, after PayBill) & MoreCred()");
    }

    #[test]
    fn anchored_display() {
        let al = alphabet();
        let te = TriggerEvent::anchored(EventExpr::Basic(EventId(0)));
        assert_eq!(te.display(&al), "^BigBuy");
    }

    #[test]
    fn masks_and_events_collection() {
        let expr = EventExpr::relative(
            EventExpr::mask(EventExpr::Basic(EventId(2)), MaskId(0)),
            EventExpr::mask(EventExpr::Basic(EventId(1)), MaskId(1)),
        );
        assert_eq!(expr.masks(), vec![MaskId(0), MaskId(1)]);
        assert_eq!(expr.events(), vec![EventId(1), EventId(2)]);
    }
}
