//! Subset construction and optimisation: NFA → the run-time FSM.
//!
//! The output matches §5.4.3's representation: an array of states, each
//! with an accept flag, the mask to evaluate in that state (generalised
//! here to a sorted list, evaluated in order), and a **sparse** transition
//! list — the representation the paper settled on after the dense 2-D
//! array proved "very space inefficient for sparse arrays" (§6; the dense
//! variant survives in [`crate::fsm::DenseFsm`] for the ablation).
//!
//! Pipeline: subset construction → prune → redundant-mask elimination →
//! minimisation → breadth-first renumbering.
//!
//! * **Prune** exploits the run-time contract that masks quiesce
//!   immediately: a state with pending masks is never *rested in*, so its
//!   real-event transitions are unreachable and dropped; conversely a
//!   state without pending masks never receives pseudo-events.
//! * **Redundant-mask elimination** removes mask states whose `True` and
//!   `False` edges lead to the same place (evaluating the mask cannot
//!   matter). This is what turns the raw subset machine for
//!   `relative((after Buy & MoreCred()), after PayBill)` into exactly the
//!   four-state machine of the paper's Figure 1.
//! * **Minimisation** is partition refinement seeded by `(accept, masks)`.

use crate::ast::{Alphabet, TriggerEvent};
use crate::event::{EventId, MaskId, Symbol};
use crate::nfa::Nfa;
use ode_obs::{Metrics, TraceEvent};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One sparse transition (§5.4.3's `struct Transition`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The symbol consumed.
    pub on: Symbol,
    /// Destination state index.
    pub to: u32,
}

/// One FSM state (§5.4.3's `class State`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct State {
    /// Does reaching this state satisfy the composite event?
    pub accept: bool,
    /// Masks pending evaluation in this state, in evaluation order. (The
    /// paper allows one mask per state; composing masks with `||` can
    /// require several, so this is a list.)
    pub masks: Vec<MaskId>,
    /// Sparse transition list, sorted by symbol for binary search.
    pub transitions: Vec<Transition>,
}

impl State {
    /// Follow a symbol from this state.
    pub fn next(&self, on: Symbol) -> Option<u32> {
        self.transitions
            .binary_search_by(|t| t.on.cmp(&on))
            .ok()
            .map(|i| self.transitions[i].to)
    }
}

/// A compiled trigger FSM. Shared by every object of the class; per-object
/// progress is just a state number kept in the trigger's persistent state
/// (§5.1.3: "the only FSM-related information that needs to be stored with
/// a trigger activation is … the state of the FSM").
#[derive(Debug, Clone)]
pub struct Dfa {
    start: u32,
    states: Vec<State>,
    /// Declared events, in declaration order (drives deterministic
    /// numbering and the ignore-vs-dead distinction).
    alphabet_events: Vec<EventId>,
    /// Masks referenced by the expression.
    masks: Vec<MaskId>,
    /// Whether the source expression was `^`-anchored.
    anchored: bool,
    /// Database-wide metrics registry counting run-time transitions and
    /// mask evaluations; `None` for machines compiled outside a database.
    pub(crate) metrics: Option<Arc<Metrics>>,
    /// Trigger name, set by [`Dfa::compile_observed`] so run-time
    /// advances can be attributed in the flight recorder; `None` for
    /// machines compiled outside a database.
    pub(crate) name: Option<Arc<str>>,
}

// Machine identity ignores the attached metrics registry and the
// observability-only trigger name.
impl PartialEq for Dfa {
    fn eq(&self, other: &Dfa) -> bool {
        self.start == other.start
            && self.states == other.states
            && self.alphabet_events == other.alphabet_events
            && self.masks == other.masks
            && self.anchored == other.anchored
    }
}

impl Eq for Dfa {}

impl Dfa {
    /// Compile a trigger event expression into an optimised FSM.
    ///
    /// Top-level conjunctions (`a && b`, [`crate::ast::EventExpr::Both`])
    /// compile each side independently and combine them with a
    /// latch-product: the result fires at every posting where one side
    /// occurs and the other has occurred before (or occurs simultaneously).
    pub fn compile(trigger: &TriggerEvent, alphabet: &Alphabet) -> Dfa {
        if let crate::ast::EventExpr::Both(a, b) = &trigger.expr {
            let left = Dfa::compile(
                &TriggerEvent {
                    anchored: trigger.anchored,
                    expr: (**a).clone(),
                },
                alphabet,
            );
            let right = Dfa::compile(
                &TriggerEvent {
                    anchored: trigger.anchored,
                    expr: (**b).clone(),
                },
                alphabet,
            );
            let mut dfa = Dfa::conjoin(&left, &right);
            dfa.optimize();
            return dfa;
        }
        let mut dfa = Dfa::compile_unoptimized(trigger, alphabet);
        dfa.optimize();
        dfa
    }

    /// Like [`Dfa::compile`], but instrumented: records compile time and
    /// NFA/DFA state counts in `metrics`, attaches the registry to the
    /// returned machine (so its run-time transitions and mask evaluations
    /// are counted too), and emits [`TraceEvent::FsmCompiled`] naming the
    /// trigger.
    pub fn compile_observed(
        trigger: &TriggerEvent,
        alphabet: &Alphabet,
        name: &str,
        metrics: &Arc<Metrics>,
    ) -> Dfa {
        let started = Instant::now();
        let mut dfa = Dfa::compile(trigger, alphabet);
        let nanos = started.elapsed().as_nanos() as u64;
        let nfa_states = Self::nfa_size(trigger, alphabet);
        metrics.fsm_compiles.inc();
        metrics.fsm_compile_nanos.add(nanos);
        metrics.nfa_states.add(nfa_states);
        metrics.fsm_states.add(dfa.len() as u64);
        metrics.emit(|| TraceEvent::FsmCompiled {
            trigger: name,
            nfa_states,
            dfa_states: dfa.len() as u64,
            nanos,
        });
        dfa.metrics = Some(Arc::clone(metrics));
        dfa.name = Some(Arc::from(name));
        dfa
    }

    /// Trigger name for trace attribution (`"?"` for machines compiled
    /// without [`Dfa::compile_observed`]).
    pub(crate) fn trace_name(&self) -> &str {
        self.name.as_deref().unwrap_or("?")
    }

    /// Total Thompson-construction NFA states for the expression.
    /// Top-level conjunctions never reach [`Nfa::build`] directly (each
    /// side compiles separately), so their sides are summed.
    fn nfa_size(trigger: &TriggerEvent, alphabet: &Alphabet) -> u64 {
        if let crate::ast::EventExpr::Both(a, b) = &trigger.expr {
            let side = |expr: &crate::ast::EventExpr| TriggerEvent {
                anchored: trigger.anchored,
                expr: expr.clone(),
            };
            return Self::nfa_size(&side(a), alphabet) + Self::nfa_size(&side(b), alphabet);
        }
        Nfa::build(trigger, alphabet).len() as u64
    }

    /// The shared optimisation pipeline: prune, then iterate minimisation
    /// and redundant-mask elimination to a fixpoint (they enable each
    /// other). State count is monotonically non-increasing.
    fn optimize(&mut self) {
        self.prune();
        let mut prev = usize::MAX;
        loop {
            self.minimize();
            self.eliminate_redundant_masks();
            self.renumber();
            if self.len() == prev {
                break;
            }
            prev = self.len();
        }
    }

    /// Latch-product of two machines over the same class alphabet. Each
    /// component runs on the shared event stream; a component that dies
    /// after having accepted is kept as "done" (`None` state, latch set).
    /// The product accepts exactly when a component accepts *now* and the
    /// other has accepted now or before.
    fn conjoin(left: &Dfa, right: &Dfa) -> Dfa {
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        struct Component {
            /// Current state; None = dead (only reachable with the latch
            /// set, otherwise the whole product dies).
            state: Option<u32>,
            latched: bool,
        }
        #[derive(Clone, Copy, PartialEq, Eq, Hash)]
        struct Product {
            a: Component,
            b: Component,
            /// Did a component accept on the move that produced this
            /// state? (Part of state identity so accept is per-occurrence,
            /// not sticky.)
            fired: bool,
        }

        /// One component's reaction to a symbol. `pending` says whether the
        /// symbol is a pseudo-event this component is actually waiting on.
        fn step(
            dfa: &Dfa,
            comp: Component,
            on: Symbol,
            pending: bool,
        ) -> Option<(Component, bool)> {
            let Some(state) = comp.state else {
                return Some((comp, false)); // done component ignores all
            };
            if on.is_pseudo() && !pending {
                // Another component's mask evaluation: invisible.
                return Some((comp, false));
            }
            match dfa.states()[state as usize].next(on) {
                Some(next) => {
                    let accept_now = dfa.states()[next as usize].accept;
                    Some((
                        Component {
                            state: Some(next),
                            latched: comp.latched || accept_now,
                        },
                        accept_now,
                    ))
                }
                // No transition (anchored mismatch or anchored mask
                // failure): the component dies; the product survives only
                // if the component had already occurred.
                None => comp.latched.then_some((
                    Component {
                        state: None,
                        latched: true,
                    },
                    false,
                )),
            }
        }

        fn pending_masks(dfa: &Dfa, comp: Component) -> Vec<MaskId> {
            comp.state
                .map(|s| dfa.states()[s as usize].masks.clone())
                .unwrap_or_default()
        }

        debug_assert_eq!(left.alphabet_events, right.alphabet_events);
        let mut all_masks: Vec<MaskId> = left
            .masks
            .iter()
            .chain(right.masks.iter())
            .copied()
            .collect();
        all_masks.sort_unstable();
        all_masks.dedup();
        let symbols = Self::symbol_order(&left.alphabet_events, &all_masks);

        let a0 = Component {
            state: Some(left.start()),
            latched: left.states()[left.start() as usize].accept,
        };
        let b0 = Component {
            state: Some(right.start()),
            latched: right.states()[right.start() as usize].accept,
        };
        let start = Product {
            a: a0,
            b: b0,
            fired: a0.latched && b0.latched,
        };

        let mut index: HashMap<Product, u32> = HashMap::new();
        let mut worklist: Vec<Product> = vec![start];
        let mut states: Vec<State> = Vec::new();
        index.insert(start, 0);
        let mut cursor = 0usize;
        while cursor < worklist.len() {
            let p = worklist[cursor];
            cursor += 1;
            let mut masks: Vec<MaskId> = pending_masks(left, p.a);
            masks.extend(pending_masks(right, p.b));
            masks.sort_unstable();
            masks.dedup();
            let mut transitions = Vec::new();
            for &sym in &symbols {
                let (a_pending, b_pending) = match sym {
                    Symbol::True(m) | Symbol::False(m) => (
                        pending_masks(left, p.a).contains(&m),
                        pending_masks(right, p.b).contains(&m),
                    ),
                    Symbol::Event(_) => (false, false),
                };
                if sym.is_pseudo() && !a_pending && !b_pending {
                    continue; // no one is waiting on this mask
                }
                let Some((a2, a_fired)) = step(left, p.a, sym, a_pending) else {
                    continue; // product dies on this symbol
                };
                let Some((b2, b_fired)) = step(right, p.b, sym, b_pending) else {
                    continue;
                };
                let next = Product {
                    a: a2,
                    b: b2,
                    fired: (a_fired && b2.latched) || (b_fired && a2.latched),
                };
                let to = *index.entry(next).or_insert_with(|| {
                    worklist.push(next);
                    (worklist.len() - 1) as u32
                });
                transitions.push(Transition { on: sym, to });
            }
            transitions.sort_by_key(|t| t.on);
            states.push(State {
                accept: p.fired,
                masks,
                transitions,
            });
        }
        Dfa {
            start: 0,
            states,
            alphabet_events: left.alphabet_events.clone(),
            masks: all_masks,
            anchored: left.anchored,
            metrics: None,
            name: None,
        }
    }

    /// Subset construction only — used by tests and the optimisation
    /// ablation; behaviourally equivalent to [`Dfa::compile`].
    pub fn compile_unoptimized(trigger: &TriggerEvent, alphabet: &Alphabet) -> Dfa {
        let nfa = Nfa::build(trigger, alphabet);
        let symbols = Self::symbol_order(nfa.alphabet_events(), nfa.masks());
        let start_set = nfa.closure(&[nfa.start()]);
        let mut index: HashMap<Vec<usize>, u32> = HashMap::new();
        let mut sets: Vec<Vec<usize>> = Vec::new();
        let mut states: Vec<State> = Vec::new();
        index.insert(start_set.clone(), 0);
        sets.push(start_set);
        let mut cursor = 0usize;
        while cursor < sets.len() {
            let set = sets[cursor].clone();
            let accept = set.contains(&nfa.accept());
            let mut masks: Vec<MaskId> = set.iter().filter_map(|&s| nfa.mask_of(s)).collect();
            masks.sort_unstable();
            masks.dedup();
            let mut transitions = Vec::new();
            for &sym in &symbols {
                let target = nfa.closure(&nfa.step(&set, sym));
                if target.is_empty() {
                    continue;
                }
                let to = *index.entry(target.clone()).or_insert_with(|| {
                    sets.push(target);
                    (sets.len() - 1) as u32
                });
                transitions.push(Transition { on: sym, to });
            }
            transitions.sort_by_key(|a| a.on);
            states.push(State {
                accept,
                masks,
                transitions,
            });
            cursor += 1;
        }
        Dfa {
            start: 0,
            states,
            alphabet_events: nfa.alphabet_events().to_vec(),
            masks: nfa.masks().to_vec(),
            anchored: trigger.anchored,
            metrics: None,
            name: None,
        }
    }

    fn symbol_order(events: &[EventId], masks: &[MaskId]) -> Vec<Symbol> {
        let mut symbols: Vec<Symbol> = events.iter().map(|&e| Symbol::Event(e)).collect();
        for &m in masks {
            symbols.push(Symbol::True(m));
            symbols.push(Symbol::False(m));
        }
        symbols
    }

    /// Drop unreachable-by-contract transitions (see module docs).
    ///
    /// Mask states normally cannot be *rested in* (quiescence moves on
    /// immediately), so their real-event transitions are unreachable —
    /// except when a pending mask's pseudo edge loops back to the state
    /// itself (nullable mask operands like `(*e) & m()`): the run-time
    /// then rests at the fixpoint with masks still pending, and the next
    /// real event must find its transition.
    fn prune(&mut self) {
        for i in 0..self.states.len() {
            let state = &self.states[i];
            if state.masks.is_empty() {
                self.states[i].transitions.retain(|t| !t.on.is_pseudo());
                continue;
            }
            let can_rest = state.masks.iter().any(|&m| {
                state.next(Symbol::True(m)) == Some(i as u32)
                    || state.next(Symbol::False(m)) == Some(i as u32)
            });
            if !can_rest {
                self.states[i].transitions.retain(|t| t.on.is_pseudo());
            }
        }
    }

    /// Remove non-accepting single-mask states whose True and False edges
    /// coincide: evaluating the mask there cannot change anything.
    fn eliminate_redundant_masks(&mut self) {
        // Compute a redirect target for each redundant state.
        let mut redirect: Vec<u32> = (0..self.states.len() as u32).collect();
        for (i, state) in self.states.iter().enumerate() {
            if state.accept || state.masks.len() != 1 {
                continue;
            }
            let m = state.masks[0];
            let (Some(t), Some(f)) = (state.next(Symbol::True(m)), state.next(Symbol::False(m)))
            else {
                continue;
            };
            if t == f && t != i as u32 {
                redirect[i] = t;
            }
        }
        // Resolve chains (a redundant state may point at another).
        let resolve = |mut s: u32, redirect: &[u32]| {
            let mut hops = 0;
            while redirect[s as usize] != s && hops <= redirect.len() {
                s = redirect[s as usize];
                hops += 1;
            }
            s
        };
        if redirect.iter().enumerate().all(|(i, &r)| r == i as u32) {
            return;
        }
        self.start = resolve(self.start, &redirect);
        for state in &mut self.states {
            for t in &mut state.transitions {
                t.to = resolve(t.to, &redirect);
            }
        }
        // Unreachable states are collected by renumber().
    }

    /// Hopcroft-style partition refinement (simple iterated version).
    fn minimize(&mut self) {
        let n = self.states.len();
        // Initial classes: (accept, masks).
        let mut class: Vec<u32> = vec![0; n];
        {
            let mut keys: HashMap<(bool, Vec<MaskId>), u32> = HashMap::new();
            for (i, s) in self.states.iter().enumerate() {
                let next = keys.len() as u32;
                let id = *keys.entry((s.accept, s.masks.clone())).or_insert(next);
                class[i] = id;
            }
        }
        loop {
            type Signature = (u32, Vec<(Symbol, Option<u32>)>);
            let mut keys: HashMap<Signature, u32> = HashMap::new();
            let mut next_class: Vec<u32> = vec![0; n];
            for (i, s) in self.states.iter().enumerate() {
                let sig: Vec<(Symbol, Option<u32>)> = s
                    .transitions
                    .iter()
                    .map(|t| (t.on, Some(class[t.to as usize])))
                    .collect();
                let next = keys.len() as u32;
                let id = *keys.entry((class[i], sig)).or_insert(next);
                next_class[i] = id;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        // Build the quotient automaton.
        let class_count = class.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut rep: Vec<Option<usize>> = vec![None; class_count];
        for (i, &c) in class.iter().enumerate() {
            if rep[c as usize].is_none() {
                rep[c as usize] = Some(i);
            }
        }
        let mut new_states = Vec::with_capacity(class_count);
        for rep_state in rep.iter().take(class_count) {
            let i = rep_state.expect("every class has a representative");
            let src = &self.states[i];
            let transitions = src
                .transitions
                .iter()
                .map(|t| Transition {
                    on: t.on,
                    to: class[t.to as usize],
                })
                .collect();
            new_states.push(State {
                accept: src.accept,
                masks: src.masks.clone(),
                transitions,
            });
        }
        self.start = class[self.start as usize];
        self.states = new_states;
    }

    /// Breadth-first renumbering from the start state, exploring symbols in
    /// declaration order; also garbage-collects unreachable states. Gives
    /// the stable 0,1,2,… numbering used in the paper's Figure 1.
    fn renumber(&mut self) {
        let symbols = Self::symbol_order(&self.alphabet_events, &self.masks);
        let mut order: Vec<u32> = Vec::new();
        let mut seen = vec![false; self.states.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        while let Some(s) = queue.pop_front() {
            order.push(s);
            for &sym in &symbols {
                if let Some(t) = self.states[s as usize].next(sym) {
                    if !seen[t as usize] {
                        seen[t as usize] = true;
                        queue.push_back(t);
                    }
                }
            }
        }
        let mut new_id = vec![u32::MAX; self.states.len()];
        for (fresh, &old) in order.iter().enumerate() {
            new_id[old as usize] = fresh as u32;
        }
        let mut new_states: Vec<State> = Vec::with_capacity(order.len());
        for &old in &order {
            let src = &self.states[old as usize];
            let mut transitions: Vec<Transition> = src
                .transitions
                .iter()
                .map(|t| Transition {
                    on: t.on,
                    to: new_id[t.to as usize],
                })
                .collect();
            transitions.sort_by_key(|a| a.on);
            new_states.push(State {
                accept: src.accept,
                masks: src.masks.clone(),
                transitions,
            });
        }
        self.start = 0;
        self.states = new_states;
    }

    /// The start state index (always 0 after compilation).
    pub fn start(&self) -> u32 {
        self.start
    }

    /// All states.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when the automaton is empty (never after compilation).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Declared events of the class, in declaration order.
    pub fn alphabet_events(&self) -> &[EventId] {
        &self.alphabet_events
    }

    /// Masks referenced by the expression.
    pub fn masks(&self) -> &[MaskId] {
        &self.masks
    }

    /// Whether the source expression was anchored.
    pub fn anchored(&self) -> bool {
        self.anchored
    }

    /// Total number of stored transitions (sparse size; experiment E3).
    pub fn transition_count(&self) -> usize {
        self.states.iter().map(|s| s.transitions.len()).sum()
    }

    /// Graphviz dot export (render the paper's Figure 1 with `dot -Tpng`).
    pub fn to_dot(&self, alphabet: &Alphabet, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name:?} {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle];");
        for (i, s) in self.states.iter().enumerate() {
            let shape = if s.accept { "doublecircle" } else { "circle" };
            let label = if s.masks.is_empty() {
                format!("{i}")
            } else {
                // The paper stars mask states in Figure 1.
                format!(
                    "{i}*\\n{}",
                    s.masks
                        .iter()
                        .map(|&m| alphabet.mask_name(m))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            };
            let _ = writeln!(out, "  s{i} [shape={shape}, label=\"{label}\"];");
        }
        let _ = writeln!(out, "  start [shape=point];");
        let _ = writeln!(out, "  start -> s{};", self.start);
        // Merge parallel edges into one label per (from, to).
        for (i, s) in self.states.iter().enumerate() {
            let mut by_target: std::collections::BTreeMap<u32, Vec<String>> =
                std::collections::BTreeMap::new();
            for t in &s.transitions {
                let label = match t.on {
                    Symbol::Event(e) => alphabet.event_name(e),
                    Symbol::True(m) => format!("True({})", alphabet.mask_name(m)),
                    Symbol::False(m) => format!("False({})", alphabet.mask_name(m)),
                };
                by_target.entry(t.to).or_default().push(label);
            }
            for (to, labels) in by_target {
                let _ = writeln!(out, "  s{i} -> s{to} [label=\"{}\"];", labels.join(" || "));
            }
        }
        let _ = writeln!(out, "}}");
        out
    }

    /// Render the machine as a table, naming symbols via `alphabet` —
    /// compare with the paper's Figure 1.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, s) in self.states.iter().enumerate() {
            let marks = match (s.accept, s.masks.is_empty()) {
                (true, true) => " (accept)".to_string(),
                (false, false) => format!(
                    " (mask: {})",
                    s.masks
                        .iter()
                        .map(|&m| alphabet.mask_name(m))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                (true, false) => format!(
                    " (accept; mask: {})",
                    s.masks
                        .iter()
                        .map(|&m| alphabet.mask_name(m))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                (false, true) => String::new(),
            };
            let _ = writeln!(out, "state {i}{marks}:");
            for t in &s.transitions {
                let label = match t.on {
                    Symbol::Event(e) => alphabet.event_name(e),
                    Symbol::True(m) => format!("True({})", alphabet.mask_name(m)),
                    Symbol::False(m) => format!("False({})", alphabet.mask_name(m)),
                };
                let _ = writeln!(out, "  {label} -> {}", t.to);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn alphabet() -> Alphabet {
        let mut al = Alphabet::new();
        al.add_event(EventId(0), "BigBuy");
        al.add_event(EventId(1), "after PayBill");
        al.add_event(EventId(2), "after Buy");
        al.add_mask("MoreCred");
        al
    }

    fn compile(src: &str) -> Dfa {
        let al = alphabet();
        Dfa::compile(&parse(src, &al).unwrap(), &al)
    }

    #[test]
    fn single_event_machine_shape() {
        let dfa = compile("after Buy");
        // Two states: watching, accepted (accept state keeps watching via
        // the *any wrapper so transitions exist, but only two states).
        assert_eq!(dfa.len(), 2);
        assert!(!dfa.states()[0].accept);
        assert!(dfa.states()[1].accept);
        // Declared events all have transitions from the start state.
        for e in [0u32, 1, 2] {
            assert!(dfa.states()[0].next(Symbol::Event(EventId(e))).is_some());
        }
    }

    #[test]
    fn figure_1_auto_raise_limit() {
        // The paper's Figure 1: relative((after Buy & MoreCred()),
        // after PayBill) compiles to a 4-state machine:
        //   0 start --after Buy--> 1 (mask MoreCred)
        //   1 --False--> 0, --True--> 2
        //   2 --after PayBill--> 3 (accept); BigBuy/after Buy self-loop
        //   0 self-loops on BigBuy/after PayBill
        let dfa = compile("relative((after Buy & MoreCred()), after PayBill)");
        let buy = Symbol::Event(EventId(2));
        let paybill = Symbol::Event(EventId(1));
        let bigbuy = Symbol::Event(EventId(0));
        let m = MaskId(0);

        assert_eq!(
            dfa.len(),
            4,
            "Figure 1 has exactly four states:\n{}",
            dfa.render(&alphabet())
        );
        let s0 = &dfa.states()[0];
        let s1 = &dfa.states()[1];
        let s2 = &dfa.states()[2];
        let s3 = &dfa.states()[3];

        // State 0: start, no mask, not accepting.
        assert!(!s0.accept && s0.masks.is_empty());
        assert_eq!(s0.next(buy), Some(1));
        assert_eq!(s0.next(bigbuy), Some(0));
        assert_eq!(s0.next(paybill), Some(0));

        // State 1: the mask state (starred in Figure 1).
        assert_eq!(s1.masks, vec![m]);
        assert!(!s1.accept);
        assert_eq!(s1.next(Symbol::False(m)), Some(0), "False returns to start");
        assert_eq!(s1.next(Symbol::True(m)), Some(2), "True arms the trigger");
        // Mask states carry no real-event transitions (§5.4.5 quiescence).
        assert_eq!(s1.next(buy), None);

        // State 2: armed, waiting for after PayBill.
        assert!(!s2.accept && s2.masks.is_empty());
        assert_eq!(s2.next(paybill), Some(3));
        assert_eq!(s2.next(bigbuy), Some(2));
        assert_eq!(
            s2.next(buy),
            Some(2),
            "redundant mask re-evaluation is eliminated"
        );

        // State 3: accept.
        assert!(s3.accept);
    }

    #[test]
    fn deny_credit_machine() {
        // after Buy & OverLimit-style mask: 3 states (start, mask, accept).
        let dfa = compile("after Buy & MoreCred()");
        assert_eq!(dfa.len(), 3, "{}", dfa.render(&alphabet()));
        let m = MaskId(0);
        assert_eq!(dfa.states()[0].next(Symbol::Event(EventId(2))), Some(1));
        assert_eq!(dfa.states()[1].masks, vec![m]);
        assert_eq!(dfa.states()[1].next(Symbol::False(m)), Some(0));
        assert!(dfa.states()[2].accept);
        assert_eq!(dfa.states()[1].next(Symbol::True(m)), Some(2));
    }

    #[test]
    fn optimized_is_no_larger_than_unoptimized() {
        let al = alphabet();
        for src in [
            "after Buy",
            "relative((after Buy & MoreCred()), after PayBill)",
            "*(BigBuy || after Buy), after PayBill",
            "^after Buy, after PayBill, BigBuy",
        ] {
            let te = parse(src, &al).unwrap();
            let opt = Dfa::compile(&te, &al);
            let raw = Dfa::compile_unoptimized(&te, &al);
            assert!(opt.len() <= raw.len(), "{src}");
            assert!(opt.transition_count() <= raw.transition_count(), "{src}");
        }
    }

    #[test]
    fn anchored_machine_has_dead_ends() {
        let dfa = compile("^after Buy, after PayBill");
        // From the start, BigBuy has no transition: the trigger dies.
        assert_eq!(dfa.states()[0].next(Symbol::Event(EventId(0))), None);
        assert_eq!(dfa.states()[0].next(Symbol::Event(EventId(2))), Some(1));
    }

    #[test]
    fn unanchored_machines_are_total_on_declared_events() {
        for src in [
            "after Buy",
            "relative((after Buy & MoreCred()), after PayBill)",
            "*(BigBuy || after Buy), after PayBill",
            "(after Buy & MoreCred()) || BigBuy",
        ] {
            let dfa = compile(src);
            for (i, s) in dfa.states().iter().enumerate() {
                if s.masks.is_empty() {
                    for e in dfa.alphabet_events() {
                        assert!(
                            s.next(Symbol::Event(*e)).is_some(),
                            "{src}: state {i} lacks a transition on {e}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn render_names_everything() {
        let dfa = compile("relative((after Buy & MoreCred()), after PayBill)");
        let shown = dfa.render(&alphabet());
        assert!(shown.contains("after Buy"));
        assert!(shown.contains("True(MoreCred)"));
        assert!(shown.contains("(accept)"));
        assert!(shown.contains("(mask: MoreCred)"));
    }

    #[test]
    fn dot_export_contains_the_machine() {
        let dfa = compile("relative((after Buy & MoreCred()), after PayBill)");
        let dot = dfa.to_dot(&alphabet(), "AutoRaiseLimit");
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("doublecircle"), "accept state rendered");
        assert!(dot.contains("1*"), "mask state starred like Figure 1");
        assert!(dot.contains("True(MoreCred)"));
        assert!(dot.contains("BigBuy || after Buy"), "parallel edges merged");
    }

    #[test]
    fn minimization_merges_equivalent_states() {
        // a || a must collapse to the same machine as a.
        let al = alphabet();
        let a = Dfa::compile(&parse("after Buy", &al).unwrap(), &al);
        let aa = Dfa::compile(&parse("after Buy || after Buy", &al).unwrap(), &al);
        assert_eq!(a.len(), aa.len());
    }
}
