//! Alternative FSM representations — the §6 transition-table ablation.
//!
//! "We originally planned to represent each FSM's transition function as a
//! normal two-dimensional array using the current state and an integer
//! representing the posted event to index into an array of (next) states.
//! However, this representation is very space inefficient for sparse
//! arrays […] It was found to be much cleaner to map each event to a
//! unique integer and use a sparse array representation of the transition
//! function."
//!
//! [`DenseFsm`] is the rejected design: a `states × symbols` matrix over
//! the **global** event-id space (the space that globally unique integers
//! force). It answers transitions with one array index — fast — but its
//! memory grows with the registry size rather than with the trigger.
//! Experiment E3 measures both sides of that trade-off against the sparse
//! [`Dfa`].

use crate::dfa::Dfa;
use crate::event::{EventId, MaskId, Symbol};

/// Sentinel for "no transition" in the dense table.
const NONE: u32 = u32::MAX;

/// Dense 2-D transition-table representation of a compiled trigger FSM.
#[derive(Debug, Clone)]
pub struct DenseFsm {
    n_states: usize,
    /// Size of the global event-id space (columns 0..event_space).
    event_space: u32,
    /// Number of mask ids provided for (two columns each, after events).
    mask_space: u16,
    table: Vec<u32>,
    accept: Vec<bool>,
    masks: Vec<Vec<MaskId>>,
    start: u32,
}

impl DenseFsm {
    /// Materialise a dense table from a sparse machine. `event_space` must
    /// cover every event id the registry has assigned (that is the point:
    /// with globally unique integers the table is as wide as the whole
    /// registry, not just this class's alphabet).
    pub fn from_dfa(dfa: &Dfa, event_space: u32, mask_space: u16) -> DenseFsm {
        let cols = event_space as usize + 2 * mask_space as usize;
        let n_states = dfa.len();
        let mut table = vec![NONE; n_states * cols];
        let mut accept = Vec::with_capacity(n_states);
        let mut masks = Vec::with_capacity(n_states);
        for (i, state) in dfa.states().iter().enumerate() {
            accept.push(state.accept);
            masks.push(state.masks.clone());
            for t in &state.transitions {
                let col = Self::column(event_space, t.on);
                table[i * cols + col] = t.to;
            }
        }
        DenseFsm {
            n_states,
            event_space,
            mask_space,
            table,
            accept,
            masks,
            start: dfa.start(),
        }
    }

    fn column(event_space: u32, symbol: Symbol) -> usize {
        match symbol {
            Symbol::Event(e) => e.0 as usize,
            Symbol::True(m) => event_space as usize + 2 * m.0 as usize,
            Symbol::False(m) => event_space as usize + 2 * m.0 as usize + 1,
        }
    }

    fn cols(&self) -> usize {
        self.event_space as usize + 2 * self.mask_space as usize
    }

    /// Follow a symbol by direct table indexing.
    pub fn next(&self, state: u32, symbol: Symbol) -> Option<u32> {
        let col = Self::column(self.event_space, symbol);
        debug_assert!(col < self.cols());
        let to = self.table[state as usize * self.cols() + col];
        (to != NONE).then_some(to)
    }

    /// Start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.n_states
    }

    /// True when the machine has no states.
    pub fn is_empty(&self) -> bool {
        self.n_states == 0
    }

    /// Accept flag of a state.
    pub fn accept(&self, state: u32) -> bool {
        self.accept[state as usize]
    }

    /// Pending masks of a state.
    pub fn masks(&self, state: u32) -> &[MaskId] {
        &self.masks[state as usize]
    }

    /// Bytes used by the transition table alone (the quantity §6 worries
    /// about).
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }
}

/// Bytes used by a sparse machine's transition lists (comparison value for
/// [`DenseFsm::table_bytes`]).
pub fn sparse_table_bytes(dfa: &Dfa) -> usize {
    dfa.transition_count() * std::mem::size_of::<crate::dfa::Transition>()
}

/// Walk a whole stream on a dense machine the way `Dfa::post`/`quiesce`
/// would, counting accepts. Used by equivalence tests and benches.
pub fn dense_run_stream(
    dense: &DenseFsm,
    stream: &[EventId],
    mask_answers: &[bool],
    declared: &[EventId],
) -> usize {
    let mut answers = mask_answers.iter().copied();
    dense_run_stream_with(
        dense,
        stream,
        |_, _| answers.next().unwrap_or(false),
        declared,
    )
}

/// Like [`dense_run_stream`], but with a (posting index, mask) oracle —
/// the form used for equivalence checks against `Dfa::run_stream_with`.
pub fn dense_run_stream_with(
    dense: &DenseFsm,
    stream: &[EventId],
    mut eval: impl FnMut(usize, MaskId) -> bool,
    declared: &[EventId],
) -> usize {
    let mut fired = 0;
    let mut state = dense.start();
    // Quiesce helper: evaluates pending masks, ORs accept visits into
    // `accepted`, returns false when the instance dies. Mirrors
    // `Dfa::quiesce`, including fixpoint-rest for nullable mask operands.
    let quiesce = |posting: usize,
                   state: &mut u32,
                   accepted: &mut bool,
                   eval: &mut dyn FnMut(usize, MaskId) -> bool| {
        'rounds: for _ in 0..crate::machine::QUIESCE_LIMIT {
            let pending = dense.masks(*state).to_vec();
            if pending.is_empty() {
                return true;
            }
            for m in pending {
                let symbol = if eval(posting, m) {
                    Symbol::True(m)
                } else {
                    Symbol::False(m)
                };
                match dense.next(*state, symbol) {
                    Some(next) if next != *state => {
                        *state = next;
                        *accepted |= dense.accept(*state);
                        continue 'rounds;
                    }
                    Some(_) => {}
                    None => return false,
                }
            }
            // Fixpoint: rest with masks pending.
            return true;
        }
        false
    };
    // Activation: a fresh instance may accept or have masks pending.
    let mut accepted = dense.accept(state);
    let alive = quiesce(0, &mut state, &mut accepted, &mut eval);
    if accepted {
        fired += 1;
    }
    if !alive {
        return fired;
    }
    for (i, &event) in stream.iter().enumerate() {
        if !declared.contains(&event) {
            continue;
        }
        let Some(next) = dense.next(state, Symbol::Event(event)) else {
            return fired;
        };
        state = next;
        // At most one fire per posting (§5.4.5 footnote), like Dfa::post.
        let mut accepted = dense.accept(state);
        let alive = quiesce(i + 1, &mut state, &mut accepted, &mut eval);
        if accepted {
            fired += 1;
        }
        if !alive {
            return fired;
        }
    }
    fired
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Alphabet;
    use crate::parser::parse;

    fn alphabet() -> Alphabet {
        let mut al = Alphabet::new();
        al.add_event(EventId(0), "BigBuy");
        al.add_event(EventId(1), "after PayBill");
        al.add_event(EventId(2), "after Buy");
        al.add_mask("MoreCred");
        al
    }

    fn compile(src: &str) -> Dfa {
        let al = alphabet();
        Dfa::compile(&parse(src, &al).unwrap(), &al)
    }

    #[test]
    fn dense_matches_sparse_transitions() {
        let dfa = compile("relative((after Buy & MoreCred()), after PayBill)");
        let dense = DenseFsm::from_dfa(&dfa, 3, 1);
        for (i, state) in dfa.states().iter().enumerate() {
            for e in 0..3u32 {
                assert_eq!(
                    dense.next(i as u32, Symbol::Event(EventId(e))),
                    state.next(Symbol::Event(EventId(e)))
                );
            }
            let m = MaskId(0);
            assert_eq!(
                dense.next(i as u32, Symbol::True(m)),
                state.next(Symbol::True(m))
            );
            assert_eq!(
                dense.next(i as u32, Symbol::False(m)),
                state.next(Symbol::False(m))
            );
            assert_eq!(dense.accept(i as u32), state.accept);
            assert_eq!(dense.masks(i as u32), &state.masks[..]);
        }
    }

    #[test]
    fn dense_table_grows_with_event_space() {
        // The §6 lesson in numbers: the same 4-state machine needs a table
        // proportional to the global registry size.
        let dfa = compile("relative((after Buy & MoreCred()), after PayBill)");
        let small = DenseFsm::from_dfa(&dfa, 3, 1);
        let large = DenseFsm::from_dfa(&dfa, 10_000, 1);
        assert!(large.table_bytes() > 1000 * small.table_bytes() / 2);
        // Sparse size is independent of the registry.
        assert!(sparse_table_bytes(&dfa) < small.table_bytes() * 4);
        assert!(sparse_table_bytes(&dfa) < large.table_bytes() / 100);
    }

    #[test]
    fn dense_run_matches_sparse_run() {
        let dfa = compile("relative((after Buy & MoreCred()), after PayBill)");
        let dense = DenseFsm::from_dfa(&dfa, 3, 1);
        let declared: Vec<EventId> = dfa.alphabet_events().to_vec();
        let streams: &[(&[u32], &[bool])] = &[
            (&[2, 0, 1], &[true]),
            (&[2, 0, 1], &[false]),
            (&[2, 2, 1, 1], &[false, true]),
            (&[0, 1, 0, 1], &[]),
            (&[2, 1, 2, 1], &[true, true]),
        ];
        for (stream, masks) in streams {
            let ids: Vec<EventId> = stream.iter().map(|&e| EventId(e)).collect();
            assert_eq!(
                dense_run_stream(&dense, &ids, masks, &declared),
                dfa.run_stream(&ids, masks),
                "stream {stream:?} masks {masks:?}"
            );
        }
    }
}
