//! Concrete syntax for composite-event expressions.
//!
//! The grammar follows §4/§5.1 of the paper:
//!
//! ```text
//! trigger  := '^'? or
//! or       := both ('||' both)*
//! both     := seq ('&&' seq)*        -- top level only (see below)
//! seq      := mask (',' mask)*
//! mask     := unary ('&' ident '(' ')'? )*
//! unary    := '*' unary | primary
//! primary  := '(' or ')'
//!           | 'relative' '(' arg ',' arg ')'
//!           | 'any'
//!           | ('before' | 'after') ident        -- member/txn events
//!           | ident                             -- user-defined events
//! ```
//!
//! Inside `relative(...)` the argument expressions must parenthesise any
//! top-level sequence, because `,` separates the two arguments — the
//! paper's own example writes `relative((after Buy & MoreCred()), after
//! PayBill)` for exactly this reason.
//!
//! Conjunction (`&&`) is only accepted as the outermost operator (possibly
//! chained): it compiles via a machine product rather than the Thompson
//! construction, so it cannot nest under other operators.
//!
//! Event and mask names are resolved against an [`Alphabet`]; unknown names
//! are errors, mirroring Ode's rule that "only these \[declared\] events will
//! be posted" (§4).

use crate::ast::{Alphabet, EventExpr, TriggerEvent};

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where the problem was noticed.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Comma,
    OrOr,
    AmpAmp,
    Amp,
    Star,
    Caret,
    LParen,
    RParen,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                out.push((i, Tok::Comma));
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    out.push((i, Tok::AmpAmp));
                    i += 2;
                } else {
                    out.push((i, Tok::Amp));
                    i += 1;
                }
            }
            '*' => {
                out.push((i, Tok::Star));
                i += 1;
            }
            '^' => {
                out.push((i, Tok::Caret));
                i += 1;
            }
            '(' => {
                out.push((i, Tok::LParen));
                i += 1;
            }
            ')' => {
                out.push((i, Tok::RParen));
                i += 1;
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push((i, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(ParseError {
                        at: i,
                        message: "single '|' (union is spelled '||')".into(),
                    });
                }
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    // '.' continues an identifier: anchor-qualified events
                    // of inter-object triggers are written `att.SetPrice`.
                    if c.is_alphanumeric() || c == '_' || c == '.' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((start, Tok::Ident(input[start..i].to_string())));
            }
            other => {
                return Err(ParseError {
                    at: i,
                    message: format!("unexpected character {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    alphabet: &'a Alphabet,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|(at, _)| *at)
            .unwrap_or(self.input_len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(&tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn error(&self, message: String) -> ParseError {
        ParseError {
            at: self.at(),
            message,
        }
    }

    fn parse_or(&mut self, allow_seq: bool) -> Result<EventExpr, ParseError> {
        let mut left = self.parse_both(allow_seq)?;
        while self.peek() == Some(&Tok::OrOr) {
            self.pos += 1;
            let right = self.parse_both(allow_seq)?;
            left = EventExpr::or(left, right);
        }
        Ok(left)
    }

    fn parse_both(&mut self, allow_seq: bool) -> Result<EventExpr, ParseError> {
        let mut left = self.parse_seq(allow_seq)?;
        while self.peek() == Some(&Tok::AmpAmp) {
            self.pos += 1;
            let right = self.parse_seq(allow_seq)?;
            left = EventExpr::both(left, right);
        }
        Ok(left)
    }

    fn parse_seq(&mut self, allow_seq: bool) -> Result<EventExpr, ParseError> {
        let mut left = self.parse_mask()?;
        while allow_seq && self.peek() == Some(&Tok::Comma) {
            self.pos += 1;
            let right = self.parse_mask()?;
            left = EventExpr::seq(left, right);
        }
        Ok(left)
    }

    fn parse_mask(&mut self) -> Result<EventExpr, ParseError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(&Tok::Amp) {
            self.pos += 1;
            let name_at = self.at();
            let name = match self.bump() {
                Some(Tok::Ident(n)) => n,
                _ => return Err(self.error("expected mask name after '&'".into())),
            };
            // Optional call parentheses: `MoreCred()` or `MoreCred`.
            if self.peek() == Some(&Tok::LParen) {
                self.pos += 1;
                self.expect(Tok::RParen, "')' after mask name".to_string().as_str())?;
            }
            let mask = self.alphabet.mask_id(&name).ok_or(ParseError {
                at: name_at,
                message: format!("unknown mask {name:?}"),
            })?;
            left = EventExpr::mask(left, mask);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<EventExpr, ParseError> {
        if self.peek() == Some(&Tok::Star) {
            self.pos += 1;
            let inner = self.parse_unary()?;
            return Ok(EventExpr::star(inner));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<EventExpr, ParseError> {
        // Name-resolution errors anchor at the offending token itself, not
        // the position after it — callers (e.g. the DDL layer) rebase
        // these offsets into larger statements.
        let start = self.at();
        match self.bump() {
            Some(Tok::LParen) => {
                let inner = self.parse_or(true)?;
                self.expect(Tok::RParen, "')'")?;
                Ok(inner)
            }
            Some(Tok::Ident(name)) => match name.as_str() {
                "any" => Ok(EventExpr::Any),
                "relative" => {
                    self.expect(Tok::LParen, "'(' after relative")?;
                    let a = self.parse_or(false)?;
                    self.expect(Tok::Comma, "',' between relative arguments")?;
                    let b = self.parse_or(false)?;
                    self.expect(Tok::RParen, "')' closing relative")?;
                    Ok(EventExpr::relative(a, b))
                }
                "before" | "after" | "timer" => {
                    let member = match self.bump() {
                        Some(Tok::Ident(m)) => m,
                        _ => {
                            return Err(self.error(format!("expected an event name after {name:?}")))
                        }
                    };
                    let full = format!("{name} {member}");
                    self.alphabet
                        .event_id(&full)
                        .map(EventExpr::Basic)
                        .ok_or(ParseError {
                            at: start,
                            message: format!("undeclared event {full:?}"),
                        })
                }
                _ => self
                    .alphabet
                    .event_id(&name)
                    .map(EventExpr::Basic)
                    .ok_or(ParseError {
                        at: start,
                        message: format!("undeclared event {name:?}"),
                    }),
            },
            _ => Err(self.error("expected an event expression".into())),
        }
    }
}

/// Parse a trigger event expression against a class alphabet.
pub fn parse(input: &str, alphabet: &Alphabet) -> Result<TriggerEvent, ParseError> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        alphabet,
        input_len: input.len(),
    };
    let anchored = if p.peek() == Some(&Tok::Caret) {
        p.pos += 1;
        true
    } else {
        false
    };
    let expr = p.parse_or(true)?;
    if p.peek().is_some() {
        return Err(p.error("trailing input after expression".into()));
    }
    validate_both_placement(&expr, true).map_err(|msg| ParseError {
        at: 0,
        message: msg,
    })?;
    Ok(TriggerEvent { anchored, expr })
}

/// `&&` compiles via a machine product, which only composes at the top
/// level of the expression (a chain of `&&` is fine). Reject anything
/// deeper with a clear message.
fn validate_both_placement(expr: &EventExpr, top_spine: bool) -> Result<(), String> {
    match expr {
        EventExpr::Both(a, b) => {
            if !top_spine {
                return Err(
                    "conjunction (&&) is only supported at the top level of a trigger \
                     expression"
                        .into(),
                );
            }
            validate_both_placement(a, true)?;
            validate_both_placement(b, true)
        }
        EventExpr::Seq(a, b) | EventExpr::Or(a, b) | EventExpr::Relative(a, b) => {
            validate_both_placement(a, false)?;
            validate_both_placement(b, false)
        }
        EventExpr::Star(a) | EventExpr::Mask(a, _) => validate_both_placement(a, false),
        EventExpr::Basic(_) | EventExpr::Any => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventId, MaskId};

    fn alphabet() -> Alphabet {
        let mut al = Alphabet::new();
        al.add_event(EventId(0), "BigBuy");
        al.add_event(EventId(1), "after PayBill");
        al.add_event(EventId(2), "after Buy");
        al.add_event(EventId(3), "before tcomplete");
        al.add_mask("MoreCred");
        al.add_mask("OverLimit");
        al
    }

    fn p(s: &str) -> TriggerEvent {
        parse(s, &alphabet()).unwrap()
    }

    #[test]
    fn parses_basic_events() {
        assert_eq!(p("BigBuy").expr, EventExpr::Basic(EventId(0)));
        assert_eq!(p("after Buy").expr, EventExpr::Basic(EventId(2)));
        assert_eq!(p("before tcomplete").expr, EventExpr::Basic(EventId(3)));
        assert_eq!(p("any").expr, EventExpr::Any);
    }

    #[test]
    fn parses_deny_credit_expression() {
        // after Buy & (currBal > credLim) becomes a named mask here.
        let te = p("after Buy & OverLimit()");
        assert_eq!(
            te.expr,
            EventExpr::mask(EventExpr::Basic(EventId(2)), MaskId(1))
        );
        assert!(!te.anchored);
    }

    #[test]
    fn parses_auto_raise_limit_expression() {
        let te = p("relative((after Buy & MoreCred()), after PayBill)");
        assert_eq!(
            te.expr,
            EventExpr::relative(
                EventExpr::mask(EventExpr::Basic(EventId(2)), MaskId(0)),
                EventExpr::Basic(EventId(1)),
            )
        );
    }

    #[test]
    fn parses_operators_with_precedence() {
        // '&' > ',' > '||'
        let te = p("after Buy & MoreCred, BigBuy || after PayBill");
        assert_eq!(
            te.expr,
            EventExpr::or(
                EventExpr::seq(
                    EventExpr::mask(EventExpr::Basic(EventId(2)), MaskId(0)),
                    EventExpr::Basic(EventId(0)),
                ),
                EventExpr::Basic(EventId(1)),
            )
        );
    }

    #[test]
    fn parses_star_and_parens() {
        let te = p("*(BigBuy, after Buy)");
        assert_eq!(
            te.expr,
            EventExpr::star(EventExpr::seq(
                EventExpr::Basic(EventId(0)),
                EventExpr::Basic(EventId(2))
            ))
        );
        let te = p("*any, after Buy");
        assert_eq!(
            te.expr,
            EventExpr::seq(
                EventExpr::star(EventExpr::Any),
                EventExpr::Basic(EventId(2))
            )
        );
    }

    #[test]
    fn parses_anchor() {
        let te = p("^after Buy, after PayBill");
        assert!(te.anchored);
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let al = alphabet();
        for src in [
            "after Buy & OverLimit()",
            "relative(after Buy & MoreCred(), after PayBill)",
            "(BigBuy || after PayBill), BigBuy",
            "*(BigBuy, after PayBill)",
            "^after Buy, *BigBuy",
            "after Buy & MoreCred() & OverLimit()",
        ] {
            let te = parse(src, &al).unwrap();
            let shown = te.display(&al);
            let reparsed = parse(&shown, &al).unwrap();
            assert_eq!(reparsed, te, "{src} -> {shown}");
        }
    }

    #[test]
    fn rejects_unknown_names() {
        let e = parse("after Steal", &alphabet()).unwrap_err();
        assert!(e.message.contains("after Steal"));
        let e = parse("after Buy & NotAMask()", &alphabet()).unwrap_err();
        assert!(e.message.contains("NotAMask"));
        let e = parse("Unknown", &alphabet()).unwrap_err();
        assert!(e.message.contains("Unknown"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "after",
            "after Buy,",
            "after Buy ||",
            "(after Buy",
            "after Buy)",
            "relative(after Buy)",
            "after Buy & ",
            "after Buy | BigBuy",
            "after Buy $",
            "relative(after Buy, BigBuy, BigBuy)",
        ] {
            assert!(parse(bad, &alphabet()).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn relative_args_reject_bare_sequences() {
        // Top-level ',' inside relative() separates the arguments, so a
        // sequence must be parenthesised (as in the paper's own example).
        assert!(parse("relative(after Buy, BigBuy, after PayBill)", &alphabet()).is_err());
        assert!(parse("relative((after Buy, BigBuy), after PayBill)", &alphabet()).is_ok());
    }

    #[test]
    fn error_positions_are_byte_offsets() {
        let e = parse("after Buy & !", &alphabet()).unwrap_err();
        assert_eq!(e.at, 12);
    }
}
